"""Authoritative response assembly.

The :class:`AuthoritativeEngine` owns a set of zones and turns a DNS query
message into a response message with correct sections: answers (following
in-zone CNAME chains), referrals with glue at zone cuts, SOA-in-authority
for NXDOMAIN/NODATA, and REFUSED outside its bailiwick. Names under a
registered *dynamic domain* are answered through a mapping provider hook,
which is how the platform layer plugs in GTM/CDN load-balanced answers
(paper section 3.2, "Mapping Intelligence").
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..dnscore.message import Message, ResponseTemplate, make_response
from ..dnscore.name import Name
from ..dnscore.records import ResourceRecord, RRset
from ..dnscore.rrtypes import Opcode, RClass, RCode, RType
from ..dnscore.zone import LookupResult, LookupStatus, Zone
from ..dnssec.denial import (
    DenialMode,
    NsecChainIndex,
    chain_denial,
    compact_denial,
)
from ..dnssec.keys import KeyRing
from ..dnssec.sign import SigningPolicy, covering_rrsigs, zone_is_signed


class MappingProvider(Protocol):
    """Resolves dynamic (load-balanced) names to address RRsets."""

    def answer(self, qname: Name, qtype: RType,
               client_key: str | None) -> RRset | None:
        """Return the tailored RRset, or None to fall through to zone data."""


class DelegationProvider(Protocol):
    """Tailors a zone cut's NS set per client (Two-Tier lowlevels).

    Paper section 5.2: the mapping system tailors the set of lowlevel
    delegations for "w10.akamai.net" to be near the resolver issuing the
    query.
    """

    def delegation(self, cut: Name, client_key: str | None
                   ) -> tuple[RRset, list[RRset]] | None:
        """Return (NS rrset, glue rrsets), or None for the static set."""


class ZoneStore:
    """Holds zones indexed by origin with longest-match lookup."""

    #: Bound on the qname -> zone memo (attack names are unbounded).
    _FIND_CACHE_MAX = 4096

    def __init__(self) -> None:
        self._zones: dict[Name, Zone] = {}
        #: Bumped whenever the zone *set* changes (add/remove/replace).
        #: Memos validated as "zone.version unchanged AND store
        #: generation unchanged" never need a per-hit ``find`` call:
        #: an unchanged generation means the qname still maps to the
        #: same Zone object.
        self.generation = 0
        self._find_cache: dict[Name, Zone | None] = {}
        #: Same zones keyed by origin label tuple, so the hot
        #: longest-match walk in :meth:`find` slices label tuples
        #: instead of constructing a Name per ancestor.
        self._by_labels: dict[tuple[bytes, ...], Zone] = {}
        self._origins_sorted: tuple[Name, ...] | None = None

    def add(self, zone: Zone) -> None:
        zone.validate()
        self._zones[zone.origin] = zone
        self._by_labels[zone.origin.labels] = zone
        self._origins_sorted = None
        self.generation += 1
        self._find_cache.clear()

    def remove(self, origin: Name) -> bool:
        zone = self._zones.pop(origin, None)
        if zone is None:
            return False
        del self._by_labels[origin.labels]
        self._origins_sorted = None
        self.generation += 1
        self._find_cache.clear()
        return True

    def get(self, origin: Name) -> Zone | None:
        return self._zones.get(origin)

    def find(self, qname: Name) -> Zone | None:
        """The zone with the longest origin that encloses ``qname``."""
        cache = self._find_cache
        try:
            return cache[qname]
        except KeyError:
            pass
        labels = qname.labels
        by_labels = self._by_labels
        zone = None
        for i in range(len(labels) + 1):
            zone = by_labels.get(labels[i:])
            if zone is not None:
                break
        if len(cache) >= self._FIND_CACHE_MAX:
            cache.clear()
        cache[qname] = zone
        return zone

    def origins(self) -> list[Name]:
        return list(self.origins_view())

    def origins_view(self) -> tuple[Name, ...]:
        """Sorted origins as a shared immutable tuple (no per-call copy).

        The monitoring agent walks every origin each probe cycle; this
        view lets it iterate without allocating a fresh list per cycle.
        """
        view = self._origins_sorted
        if view is None:
            view = self._origins_sorted = tuple(
                sorted(self._zones, key=Name.canonical_key))
        return view

    def zones(self) -> list[Zone]:
        return [self._zones[o] for o in self.origins()]

    def __len__(self) -> int:
        return len(self._zones)

    def __contains__(self, origin: Name) -> bool:
        return origin in self._zones


class _NegativePlan:
    """Exact NXDOMAIN predicate plus denial template for one zone version.

    Unlike the NXDOMAIN *filter*'s heuristic tree, this predicate must
    agree with :meth:`Zone.lookup` on every input, so it mirrors the
    lookup order exactly: existing name (including empty non-terminals)
    -> covering cut anywhere on the ancestor chain (glue below a cut
    exists in the name set but still gets a referral) -> wildcard at the
    closest encloser. A hit answers from a precomputed SOA/authority
    skeleton instead of walking the zone, which is what keeps
    random-subdomain floods (every qname unique, so per-qname plans
    never hit) cheap to serve.
    """

    __slots__ = ("zone", "version", "template", "_names", "_cuts",
                 "_wildcard_parents", "_origin_len")

    def __init__(self, zone: Zone, template: ResponseTemplate) -> None:
        self.zone = zone
        self.version = zone.version
        self.template = template
        names = zone.names()
        self._names: set[tuple[bytes, ...]] = {n.labels for n in names}
        self._wildcard_parents: set[tuple[bytes, ...]] = {
            n.labels[1:] for n in names if n.is_wildcard
        }
        self._cuts: set[tuple[bytes, ...]] = {
            rrset.name.labels for rrset in zone.iter_rrsets()
            if rrset.rtype == RType.NS and rrset.name != zone.origin
        }
        self._origin_len = len(zone.origin.labels)

    def is_nxdomain(self, labels: tuple[bytes, ...]) -> bool:
        """Whether ``Zone.lookup`` would return NXDOMAIN for ``labels``.

        ``labels`` must belong to a name at or below the zone origin
        (guaranteed when the ZoneStore resolved the qname to this zone).
        """
        names = self._names
        if labels in names:
            return False
        n_strip = len(labels) - self._origin_len
        cuts = self._cuts
        if cuts:
            for i in range(1, n_strip + 1):
                if labels[i:] in cuts:
                    return False
        for i in range(1, n_strip + 1):
            ancestor = labels[i:]
            if ancestor in names:
                # First existing ancestor = the closest encloser; the
                # name is synthesizable iff *.<encloser> exists.
                return ancestor not in self._wildcard_parents
        return True


class DnssecServing:
    """How one engine serves signed zones.

    The zones themselves carry all signed data (DNSKEY, RRSIG, NSEC —
    written by :class:`repro.dnssec.sign.ZoneSigner`); this object
    holds only the *serving* choices: which denial mode answers
    negatives, the key rings compact denial signs with, and the clock
    stamping per-query signatures. Signedness itself is discovered
    from zone content, so an engine serves a mix of signed and
    unsigned zones with no registration step — compact denial alone
    needs :meth:`register_keyring`, because it signs at query time.
    """

    __slots__ = ("denial_mode", "policy", "keyrings", "clock",
                 "_chain_indexes")

    def __init__(self) -> None:
        self.denial_mode = DenialMode.NSEC_CHAIN
        self.policy = SigningPolicy()
        self.keyrings: dict[Name, KeyRing] = {}
        #: Sim-time source for compact denial's per-query RRSIGs; left
        #: None the inception is pinned at 0.0 (pure unit-test use).
        self.clock: Callable[[], float] | None = None
        self._chain_indexes: dict[Name, NsecChainIndex] = {}

    def register_keyring(self, keys: KeyRing,
                         policy: SigningPolicy | None = None) -> None:
        self.keyrings[keys.origin] = keys
        if policy is not None:
            self.policy = policy

    def chain_index(self, zone: Zone) -> NsecChainIndex:
        """The zone's NSEC chain index, rebuilt when the version moves."""
        index = self._chain_indexes.get(zone.origin)
        if index is None or index.version != zone.version:
            index = NsecChainIndex(zone)
            self._chain_indexes[zone.origin] = index
        return index

    def now(self) -> float:
        clock = self.clock
        return clock() if clock is not None else 0.0


def _reowned(rrset: RRset, owner: Name) -> RRset:
    """A copy of ``rrset`` re-owned at ``owner`` (wildcard expansion)."""
    clone = RRset(owner, rrset.rtype, rrset.rclass, rrset.ttl)
    clone.records = [ResourceRecord(owner, r.rtype, r.rclass, r.ttl, r.rdata)
                     for r in rrset.records]
    return clone


class AuthoritativeEngine:
    """Pure query-to-response logic, independent of transport and timing."""

    #: Bound on the probe-response memo (one entry per probed qname).
    _PROBE_CACHE_MAX = 1024
    #: Bound on the network response plan cache.
    _PLAN_CACHE_MAX = 4096
    #: NXDOMAINs (per zone version) before the negative plan is built;
    #: amortizes the O(zone size) predicate build against flood traffic
    #: without paying it for one-off typos.
    _NEG_BUILD_AFTER = 8

    #: Class-level default for the response plan cache, so the
    #: equivalence tests can flip the whole fast lane off process-wide
    #: (mirrors ``Network.route_cache_default``).
    response_plan_cache_default = True

    def __init__(self, store: ZoneStore,
                 mapping: MappingProvider | None = None,
                 dynamic_domains: list[Name] | None = None,
                 dynamic_delegations: dict[Name, DelegationProvider]
                 | None = None,
                 plan_cache: bool | None = None) -> None:
        self.store = store
        self.mapping = mapping
        self.dynamic_domains = list(dynamic_domains or [])
        self.dynamic_delegations = dict(dynamic_delegations or {})
        self.queries_answered = 0
        self.nxdomain_count = 0
        #: Memoized responses for the monitoring agent's probes, keyed
        #: by (qname, qtype) and validated against the answering zone's
        #: version. Only :meth:`respond_probe` uses this; probes are
        #: consumed synchronously and discarded, so reusing one Message
        #: object across cycles is safe where it would not be for
        #: responses that travel the network.
        self._probe_responses: dict[tuple[Name, RType],
                                    tuple[Message, Zone, int, int]] = {}
        #: The network-response fast lane: (qname, qtype) -> immutable
        #: plan, validated per hit against the answering zone's version
        #: counter and the store generation (which together guarantee
        #: the qname still resolves to the same, unchanged zone object
        #: without a per-hit find). Entries are stamped into fresh Messages
        #: by ``ResponseTemplate.finalize``, so cached answers are
        #: byte-identical to slow-path assembly. Client-dependent
        #: answers (mapping names, tailored delegations) are never
        #: planned; NXDOMAIN floods are served by ``_neg_plans`` instead
        #: of per-qname entries so unique attack names cannot churn this
        #: cache. The caches assume ``mapping`` / ``dynamic_domains`` /
        #: ``dynamic_delegations`` are fixed after init — callers that
        #: reconfigure them must call :meth:`flush_plans`.
        self.plan_cache_enabled = (self.response_plan_cache_default
                                   if plan_cache is None else plan_cache)
        self._plan_cache: dict[tuple[Name, RType, bool],
                               tuple[ResponseTemplate, Zone, int, int]] = {}
        self._neg_plans: dict[Name, _NegativePlan] = {}
        #: Compact-mode analogue of ``_neg_plans``: one NOERROR
        #: skeleton (SOA + its RRSIG) per signed zone; the synthesized
        #: NSEC is appended per query, so a unique-qname flood with
        #: DO=1 still needs exactly one plan per zone.
        self._signed_neg_plans: dict[Name, _NegativePlan] = {}
        self._neg_seen: dict[Name, list] = {}
        #: DNSSEC serving configuration; inert until a zone in the
        #: store actually carries an apex DNSKEY.
        self.dnssec = DnssecServing()
        self.signed_responses = 0
        #: Times the plan cache hit its bound and was wiped — the
        #: fig10-signed observable separating the denial modes (chain
        #: mode plans signed NXDOMAINs per qname; compact does not).
        self.plan_cache_wipes = 0
        #: Observers called with (query, response) after assembly; the
        #: NXDOMAIN filter taps this to count negative answers per zone.
        self.response_observers: list[Callable[[Message, Message], None]] = []

    def is_dynamic(self, qname: Name) -> bool:
        domains = self.dynamic_domains
        if not domains:
            return False
        return any(qname.is_subdomain_of(d) for d in domains)

    def flush_plans(self) -> None:
        """Drop every cached response plan and probe memo.

        Zone *content* changes invalidate plans automatically through
        the version counter and zone identity checks; this exists for
        engine-level reconfiguration (mapping provider, dynamic domains,
        delegation providers) that the validators cannot see.
        """
        self._plan_cache.clear()
        self._neg_plans.clear()
        self._signed_neg_plans.clear()
        self._neg_seen.clear()
        self._probe_responses.clear()
        self.dnssec._chain_indexes.clear()

    def respond(self, query: Message,
                client_key: str | None = None) -> Message:
        """Assemble the authoritative response to ``query``.

        ``client_key`` identifies the client for mapping purposes — the
        ECS subnet when present, else the resolver source address.
        """
        # Fast lane: answer from a validated plan without touching the
        # zone. Gated on the exact preconditions the slow path's early
        # branches establish (QUERY opcode, one IN-class question);
        # client_key is irrelevant here because client-dependent names
        # are never planned.
        if self.plan_cache_enabled:
            questions = query.questions
            if len(questions) == 1 and query.flags.opcode is Opcode.QUERY:
                question = questions[0]
                if question.qclass is RClass.IN:
                    edns = query.edns
                    do_bit = edns is not None and edns.dnssec_ok
                    key = (question.qname, question.qtype, do_bit)
                    hit = self._plan_cache.get(key)
                    if hit is not None:
                        template, zone, version, generation = hit
                        # An unchanged store generation means find(qname)
                        # still returns this same zone object, so the
                        # per-hit longest-match walk can be skipped.
                        if (zone.version == version
                                and self.store.generation == generation):
                            return self._finish(query,
                                                template.finalize(query))
                        del self._plan_cache[key]
                    elif self._neg_plans or (do_bit
                                             and self._signed_neg_plans):
                        zone = self.store.find(question.qname)
                        if zone is not None:
                            response = self._neg_fast_lane(
                                query, question, zone, do_bit)
                            if response is not None:
                                return self._finish(query, response)
        return self._respond_full(query, client_key)

    def _neg_fast_lane(self, query: Message, question, zone: Zone,
                       do_bit: bool) -> Message | None:
        """Serve an NXDOMAIN from a per-zone negative plan, if one
        matches the query's DNSSEC expectations."""
        if (self.mapping is not None
                and question.qtype in (RType.A, RType.AAAA)
                and self.is_dynamic(question.qname)):
            return None
        if do_bit:
            neg = self._signed_neg_plans.get(zone.origin)
            if (neg is not None and neg.zone is zone
                    and neg.version == zone.version
                    and neg.is_nxdomain(question.qname.labels)):
                response = neg.template.finalize(query)
                self._attach_compact_denial(zone, question.qname, response)
                self.signed_responses += 1
                return response
            # An unsigned zone owes DO=1 queries nothing extra, so the
            # plain negative plan still applies to it.
            neg = self._neg_plans.get(zone.origin)
            if (neg is not None and neg.zone is zone
                    and neg.version == zone.version
                    and not zone_is_signed(zone)
                    and neg.is_nxdomain(question.qname.labels)):
                return neg.template.finalize(query)
            return None
        neg = self._neg_plans.get(zone.origin)
        if (neg is not None and neg.zone is zone
                and neg.version == zone.version
                and neg.is_nxdomain(question.qname.labels)):
            return neg.template.finalize(query)
        return None

    def _attach_compact_denial(self, zone: Zone, qname: Name,
                               response: Message,
                               types: tuple[int, ...] = ()) -> None:
        serving = self.dnssec
        keys = serving.keyrings[zone.origin]
        for nsec, sigs in compact_denial(zone, keys, serving.policy, qname,
                                         serving.now(), types):
            response.add_rrset("authority", nsec)
            if sigs is not None:
                response.add_rrset("authority", sigs)

    def _respond_full(self, query: Message,
                      client_key: str | None = None) -> Message:
        """The slow path: full zone walk, populating the plan caches."""
        if query.flags.opcode != Opcode.QUERY:
            # reprolint: disable-next=PERF001 - error paths are cold
            return self._finish(query, make_response(
                query, RCode.NOTIMP, aa=False))
        try:
            question = query.question
        except Exception:
            # reprolint: disable-next=PERF001 - error paths are cold
            return self._finish(query, make_response(
                query, RCode.FORMERR, aa=False))
        if question.qclass != RClass.IN:
            # reprolint: disable-next=PERF001 - error paths are cold
            return self._finish(query, make_response(
                query, RCode.REFUSED, aa=False))
        if query.edns is not None and query.edns.client_subnet is not None:
            client_key = str(query.edns.client_subnet.network())

        zone = self.store.find(question.qname)
        if zone is None:
            # reprolint: disable-next=PERF001 - error paths are cold
            return self._finish(query, make_response(
                query, RCode.REFUSED, aa=False))

        do_bit = query.edns is not None and query.edns.dnssec_ok
        signed = do_bit and zone_is_signed(zone)
        compact = (signed
                   and self.dnssec.denial_mode is DenialMode.COMPACT
                   and zone.origin in self.dnssec.keyrings)

        # The slow path's job is assembly; its product populates the
        # plan cache below.
        # reprolint: disable-next=PERF001
        response = make_response(query, RCode.NOERROR, aa=True)
        cacheable = self.plan_cache_enabled

        # Mapping hook: tailored answers for GTM/CDN names. (qtype is
        # checked before the is_dynamic subdomain walk — the predicates
        # are pure, and most probe traffic short-circuits on qtype.)
        if (self.mapping is not None
                and question.qtype in (RType.A, RType.AAAA)
                and self.is_dynamic(question.qname)):
            cacheable = False
            mapped = self.mapping.answer(question.qname, question.qtype,
                                         client_key)
            if mapped is not None:
                response.add_rrset("answers", mapped)
                return self._finish(query, response)

        chain, result = zone.cname_chain(question.qname, question.qtype)
        for alias in chain:
            response.add_rrset("answers", alias)

        if result.status == LookupStatus.SUCCESS:
            assert result.rrset is not None
            response.add_rrset("answers", result.rrset)
        elif result.status == LookupStatus.DELEGATION:
            assert result.delegation is not None
            response.flags.aa = False
            delegation, glue_sets = result.delegation, result.glue
            provider = self.dynamic_delegations.get(delegation.name)
            if provider is not None:
                cacheable = False
                tailored = provider.delegation(delegation.name, client_key)
                if tailored is not None:
                    delegation, glue_sets = tailored
            response.add_rrset("authority", delegation)
            for glue in glue_sets:
                response.add_rrset("additional", glue)
        elif result.status == LookupStatus.NODATA:
            if result.soa is not None:
                response.add_rrset("authority", result.soa)
        elif result.status == LookupStatus.NXDOMAIN:
            if not chain:
                response.flags.rcode = RCode.NXDOMAIN
            # After a CNAME chain, RFC 6604: rcode reflects the last name,
            # but many servers answer NOERROR; we follow the RFC.
            else:
                response.flags.rcode = RCode.NXDOMAIN
            if result.soa is not None:
                response.add_rrset("authority", result.soa)
        elif result.status == LookupStatus.CNAME:
            # Chain depth exceeded; return what we have.
            pass
        elif result.status == LookupStatus.NOT_IN_ZONE:
            # CNAME led out of this zone: the chase becomes the
            # resolver's job; answer with the chain collected so far.
            pass
        plan_cacheable = True
        if signed:
            plan_cacheable = self._augment_signed(zone, question, chain,
                                                  result, response, compact)
        if cacheable:
            if (result.status == LookupStatus.NXDOMAIN and not chain
                    and (not signed or compact)):
                # Unique attack qnames would churn the per-qname cache;
                # feed the per-zone negative plan instead. Signed chain
                # mode cannot do this (the NSEC proof depends on the
                # qname) and falls through to per-qname planning — the
                # churn compact denial exists to avoid.
                self._note_negative(zone, signed_compact=compact)
            elif plan_cacheable:
                cache = self._plan_cache
                if len(cache) >= self._PLAN_CACHE_MAX:
                    cache.clear()
                    self.plan_cache_wipes += 1
                cache[(question.qname, question.qtype, do_bit)] = (
                    ResponseTemplate.from_message(response),
                    zone, zone.version, self.store.generation)
        return self._finish(query, response)

    def _augment_signed(self, zone: Zone, question, chain: list[RRset],
                        result: LookupResult, response: Message,
                        compact: bool) -> bool:
        """Add RRSIGs and denial proofs to an assembled response.

        Returns whether the result may still be planned per-qname:
        compact proofs are signed at query time (their RRSIG validity
        windows track the clock, not the zone version), so responses
        carrying one must be reassembled per query.
        """
        self.signed_responses += 1
        serving = self.dnssec
        status = result.status
        for alias in chain:
            sigs = covering_rrsigs(zone, alias.name, RType.CNAME)
            if sigs is not None:
                response.add_rrset("answers", sigs)
        if status == LookupStatus.SUCCESS and result.rrset is not None:
            rrset = result.rrset
            source = result.source
            if (source is not None and source.is_wildcard
                    and source != rrset.name):
                sigs = covering_rrsigs(zone, source, rrset.rtype)
                if sigs is not None:
                    response.add_rrset("answers",
                                       _reowned(sigs, rrset.name))
                # RFC 4035 3.1.3.3: a wildcard expansion must prove the
                # qname itself does not exist.
                self._attach_chain_denial(zone, question.qname, response,
                                          nxdomain=False)
            else:
                sigs = covering_rrsigs(zone, rrset.name, rrset.rtype)
                if sigs is not None:
                    response.add_rrset("answers", sigs)
            return True
        if status == LookupStatus.DELEGATION and result.delegation is not None:
            # The NSEC at the cut proves the delegation has no DS — the
            # simulation's children are islands of security.
            cut = result.delegation.name
            nsec = zone.get_rrset(cut, RType.NSEC)
            if nsec is not None:
                response.add_rrset("authority", nsec)
                sigs = covering_rrsigs(zone, cut, RType.NSEC)
                if sigs is not None:
                    response.add_rrset("authority", sigs)
            return True
        if status == LookupStatus.NODATA:
            self._sign_soa(zone, result, response)
            if compact:
                types = tuple(int(t) for t in
                              sorted(zone.types_at(question.qname)))
                self._attach_compact_denial(zone, question.qname, response,
                                            types)
                return False
            self._attach_chain_denial(zone, question.qname, response,
                                      nxdomain=False)
            return True
        if status == LookupStatus.NXDOMAIN and not chain:
            self._sign_soa(zone, result, response)
            if compact:
                # Black lies: the synthesized proof says the name
                # exists with no data, so the rcode follows suit.
                response.flags.rcode = RCode.NOERROR
                self._attach_compact_denial(zone, question.qname, response)
                return False
            self._attach_chain_denial(zone, question.qname, response,
                                      nxdomain=True)
            return True
        if status == LookupStatus.NXDOMAIN:
            # Post-CNAME NXDOMAIN: prove the last chain target's absence.
            self._sign_soa(zone, result, response)
            rdata = chain[-1].records[0].rdata
            target = getattr(rdata, "target", question.qname)
            self._attach_chain_denial(zone, target, response, nxdomain=True)
            return True
        return True

    def _sign_soa(self, zone: Zone, result: LookupResult,
                  response: Message) -> None:
        if result.soa is None:
            return
        sigs = covering_rrsigs(zone, zone.origin, RType.SOA)
        if sigs is not None:
            response.add_rrset("authority", sigs)

    def _attach_chain_denial(self, zone: Zone, qname: Name,
                             response: Message, *, nxdomain: bool) -> None:
        index = self.dnssec.chain_index(zone)
        for nsec, sigs in chain_denial(zone, index, qname,
                                       nxdomain=nxdomain):
            response.add_rrset("authority", nsec)
            if sigs is not None:
                response.add_rrset("authority", sigs)

    def _note_negative(self, zone: Zone, *,
                       signed_compact: bool = False) -> None:
        """Count an NXDOMAIN against ``zone``; build its negative plan
        once the flood threshold for the current zone version passes.

        Signed (DO=1, compact mode) and plain floods share the counter
        but build separate plans: the signed skeleton carries the SOA's
        RRSIG and answers NOERROR, black-lies style."""
        origin = zone.origin
        entry = self._neg_seen.get(origin)
        if entry is None or entry[0] != zone.version:
            self._neg_seen[origin] = [zone.version, 1]
            return
        entry[1] += 1
        if entry[1] < self._NEG_BUILD_AFTER:
            return
        plans = self._signed_neg_plans if signed_compact else self._neg_plans
        plan = plans.get(origin)
        if (plan is not None and plan.zone is zone
                and plan.version == zone.version):
            return
        soa = zone.soa
        authority: tuple = tuple(soa.records) if soa is not None else ()
        if signed_compact and soa is not None:
            sigs = covering_rrsigs(zone, origin, RType.SOA)
            if sigs is not None:
                authority = authority + tuple(sigs.records)
        rcode = RCode.NOERROR if signed_compact else RCode.NXDOMAIN
        plans[origin] = _NegativePlan(
            zone, ResponseTemplate(True, rcode, (), authority, ()))

    def respond_probe(self, query: Message) -> Message:
        """`respond`, memoized for the monitoring agent's probe loop.

        Agents re-ask the same (qname, qtype) every cycle against zone
        data that rarely changes, so the assembled response is cached
        and revalidated against the zone's version counter. Counters
        and response observers still run on every call (via
        :meth:`_finish`), so reporting is identical to the uncached
        path. The returned Message is shared across cycles — callers
        must treat it as read-only (see ``health_probe``).
        """
        questions = query.questions
        if len(questions) != 1:
            return self.respond(query)
        question = questions[0]
        key = (question.qname, question.qtype)
        cached = self._probe_responses.get(key)
        if cached is not None:
            response, zone, version, generation = cached
            if (zone.version == version
                    and self.store.generation == generation):
                response.msg_id = query.msg_id
                return self._finish(query, response)
            del self._probe_responses[key]
        response = self.respond(query)
        # Cache only answers that are pure functions of zone content:
        # no EDNS echo, no per-client mapping tailoring, and no
        # authority section (delegations and negative answers can be
        # tailored per client or carry tailored glue).
        if (query.edns is None and not response.authority
                and response.flags.rcode == RCode.NOERROR
                and (self.mapping is None
                     or question.qtype not in (RType.A, RType.AAAA)
                     or not self.is_dynamic(question.qname))):
            zone = self.store.find(question.qname)
            if zone is not None:
                if len(self._probe_responses) >= self._PROBE_CACHE_MAX:
                    self._probe_responses.clear()
                self._probe_responses[key] = (
                    response, zone, zone.version, self.store.generation)
        return response

    def _finish(self, query: Message, response: Message) -> Message:
        self.queries_answered += 1
        if response.flags.rcode is RCode.NXDOMAIN:
            self.nxdomain_count += 1
        observers = self.response_observers
        if observers:
            for observer in observers:
                observer(query, response)
        return response
