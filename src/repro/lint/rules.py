"""The reprolint rule set.

Three families, mirroring the determinism contract in
``docs/ARCHITECTURE.md``:

* ``DET0xx`` — determinism: no wall-clock reads, no global-RNG calls,
  no ambient entropy, no randomized-hash ordering, no bare set
  iteration feeding orderings.
* ``LOOP0xx`` — event-loop discipline: no blocking sleeps, no
  threading/async/socket machinery that bypasses the shared simulated
  :class:`~repro.netsim.clock.EventLoop`.
* ``API0xx`` — API discipline: experiment entry points must accept an
  explicit seed and thread explicit ``Random`` instances.
* ``OBS0xx`` — observability discipline: library code reports through
  ``repro.telemetry`` (or returns data to its caller); only CLI entry
  points talk to stdout/stderr directly.
* ``ROB0xx`` — robustness discipline: zone updates go through the
  guarded install seam (validator + last-known-good retention), never
  straight into a ``ZoneStore``; mitigations engage through the
  alert-driven paths (``telemetry.mitigation.arm``, the
  ``control.defense`` ladder), never by direct ``engage()`` calls;
  machine suspend/resume verdicts route through the quorum
  suspension lease (``control.consensus``), never by direct
  ``suspend()``/``resume()`` calls.
"""

from __future__ import annotations

import ast

from .core import Rule, Severity

#: Wall-clock reads. ``time`` on the simulator side must come from
#: ``EventLoop.now``; real time is only legitimate for operator-facing
#: progress reporting, which carries a scoped suppression.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level functions of the stdlib ``random`` module share one
#: hidden global Mersenne Twister; any call makes reproducibility
#: depend on global call order across the whole process.
_GLOBAL_RANDOM = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate",
    "normalvariate", "paretovariate", "randbytes", "randint", "random",
    "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: numpy.random attributes that are fine to reference: explicit
#: generator construction and types, not the hidden legacy global.
_NUMPY_RANDOM_OK = frozenset({
    "Generator", "default_rng", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Ambient entropy: different on every call by design.
_ENTROPY = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: Constructors that fall back to OS entropy when called with no seed.
_NEEDS_SEED = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})

#: Modules whose presence in simulator code means callbacks or I/O are
#: escaping the shared event loop (threads, OS sockets, subprocesses,
#: alternative schedulers).
_LOOP_BYPASS = frozenset({
    "threading", "_thread", "asyncio", "sched", "multiprocessing",
    "concurrent", "concurrent.futures", "socket", "socketserver",
    "subprocess", "selectors", "signal", "queue",
})

#: Simulator packages held to event-loop discipline. Analysis/report
#: and tools are offline post-processing and may do real I/O.
_SIM_SCOPES = (
    "src/repro/netsim/", "src/repro/server/", "src/repro/chaos/",
    "src/repro/control/", "src/repro/platform/", "src/repro/resolver/",
    "src/repro/filters/", "src/repro/workload/", "src/repro/dnscore/",
)


class WallClockRule(Rule):
    code = "DET001"
    name = "wall-clock-read"
    severity = Severity.ERROR
    description = ("Wall-clock reads (time.time, datetime.now, "
                   "perf_counter, ...) make runs irreproducible; use "
                   "EventLoop.now for simulated time. Operator-facing "
                   "progress timing needs an inline suppression.")
    scopes = ("src/repro/",)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved in _WALL_CLOCK:
            self.report(node, f"wall-clock read `{resolved}()`; simulated "
                              f"components must use EventLoop.now")
        self.generic_visit(node)


class GlobalRandomRule(Rule):
    code = "DET002"
    name = "global-random"
    severity = Severity.ERROR
    description = ("Calls on the module-level `random` API or the "
                   "legacy `numpy.random` global state; thread an "
                   "explicit seeded Random/Generator instance instead.")
    scopes = ("src/repro/", "tests/", "benchmarks/")

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved:
            if resolved.startswith("random."):
                leaf = resolved.split(".", 1)[1]
                if leaf in _GLOBAL_RANDOM:
                    self.report(node, f"global-RNG call `{resolved}()`; "
                                      f"thread a seeded random.Random "
                                      f"instance instead")
            elif resolved.startswith("numpy.random."):
                leaf = resolved.split("numpy.random.", 1)[1]
                if leaf not in _NUMPY_RANDOM_OK:
                    self.report(node, f"legacy numpy global-RNG call "
                                      f"`{resolved}()`; use a seeded "
                                      f"numpy.random.default_rng(seed)")
        self.generic_visit(node)


class EntropyRule(Rule):
    code = "DET003"
    name = "ambient-entropy"
    severity = Severity.ERROR
    description = ("os.urandom / uuid.uuid1 / uuid.uuid4 / secrets.* / "
                   "random.SystemRandom draw OS entropy and can never "
                   "be reproduced from a seed.")
    scopes = ("src/repro/", "tests/", "benchmarks/")

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved and (resolved in _ENTROPY
                         or resolved.startswith("secrets.")):
            self.report(node, f"ambient entropy source `{resolved}()`; "
                              f"derive values from the experiment seed")
        self.generic_visit(node)


class HashOrderingRule(Rule):
    code = "DET004"
    name = "randomized-hash"
    severity = Severity.ERROR
    description = ("Builtin hash() of str/bytes is randomized per "
                   "process (PYTHONHASHSEED); using it for ordering or "
                   "partitioning breaks cross-run determinism. Allowed "
                   "only inside classes defining __hash__ (cache "
                   "idiom).")
    scopes = ("src/repro/",)

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._hash_class_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        defines_hash = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__hash__"
            for stmt in node.body)
        self._hash_class_depth += defines_hash
        self.generic_visit(node)
        self._hash_class_depth -= defines_hash

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "hash"
                and not self.ctx.imports.is_imported("hash")
                and self._hash_class_depth == 0):
            self.report(node, "builtin hash() is salted per process; do "
                              "not use it for ordering or partitioning "
                              "(sort on an explicit key instead)")
        self.generic_visit(node)


class SetIterationRule(Rule):
    code = "DET005"
    name = "unordered-iteration"
    severity = Severity.WARNING
    description = ("Iterating a set literal / set()/frozenset() call "
                   "yields hash order, which varies across processes "
                   "for str keys; wrap in sorted() when the order can "
                   "reach results, tie-breaks, or RNG draws.")
    scopes = ("src/repro/",)

    def _check_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self.report(iter_node, "iteration over a set expression has "
                                   "salted hash order; use sorted(...) "
                                   "or a tuple/list")
        elif (isinstance(iter_node, ast.Call)
              and isinstance(iter_node.func, ast.Name)
              and iter_node.func.id in ("set", "frozenset")
              and not self.ctx.imports.is_imported(iter_node.func.id)):
            self.report(iter_node, f"iteration over bare "
                                   f"`{iter_node.func.id}(...)` has "
                                   f"salted hash order; wrap in "
                                   f"sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


class UnseededRngRule(Rule):
    code = "DET006"
    name = "unseeded-rng"
    severity = Severity.ERROR
    description = ("random.Random() / numpy.random.default_rng() "
                   "without a seed argument fall back to OS entropy; "
                   "always construct RNGs from an explicit seed.")
    scopes = ("src/repro/", "tests/", "benchmarks/")

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if (resolved in _NEEDS_SEED and not node.args
                and not node.keywords):
            self.report(node, f"unseeded `{resolved}()`; pass an "
                              f"explicit seed derived from the "
                              f"experiment seed")
        self.generic_visit(node)


class SleepRule(Rule):
    code = "LOOP001"
    name = "blocking-sleep"
    severity = Severity.ERROR
    description = ("time.sleep() blocks the real thread; simulated "
                   "delays must be scheduled on the shared EventLoop "
                   "via call_later/call_at.")
    scopes = ("src/repro/",)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved in ("time.sleep", "asyncio.sleep"):
            self.report(node, f"blocking `{resolved}()`; schedule on "
                              f"the shared EventLoop "
                              f"(call_later/call_at) instead")
        self.generic_visit(node)


class LoopBypassRule(Rule):
    code = "LOOP002"
    name = "event-loop-bypass"
    severity = Severity.ERROR
    description = ("Importing threading/asyncio/sched/socket/subprocess "
                   "etc. inside simulator packages means callbacks or "
                   "I/O escape the deterministic EventLoop.")
    scopes = _SIM_SCOPES

    def _check(self, node: ast.AST, module: str) -> None:
        root = module.split(".")[0]
        if root in _LOOP_BYPASS or module in _LOOP_BYPASS:
            self.report(node, f"import of `{module}` bypasses the "
                              f"shared deterministic EventLoop; "
                              f"simulator code must schedule through "
                              f"netsim.clock")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            self._check(node, node.module)


class SeedParamRule(Rule):
    code = "API001"
    name = "seedless-entry-point"
    severity = Severity.ERROR
    description = ("Experiment entry points (module-level `run(...)` in "
                   "experiments/) must accept an explicit `seed` "
                   "parameter or a `params` object carrying one, and "
                   "thread it into every RNG they construct.")
    scopes = ("src/repro/experiments/",)

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "run":
                args = stmt.args
                names = {a.arg for a in (args.posonlyargs + args.args
                                         + args.kwonlyargs)}
                if not names & {"seed", "params"}:
                    self.report(stmt, "experiment entry point run() "
                                      "takes neither `seed` nor "
                                      "`params`; reproducibility "
                                      "requires an explicit seed")
        # no generic_visit: only module-level `run` is an entry point


#: CLI entry points: the only places in ``src/repro`` allowed to call
#: bare ``print()``. Everything else reports through the telemetry
#: pipeline or returns data for the caller to render.
_PRINT_ENTRY_POINTS = (
    "src/repro/tools/",
    "src/repro/lint/cli.py",
    "src/repro/experiments/runner.py",
    "src/repro/experiments/resilience_scorecard.py",
)


class BarePrintRule(Rule):
    code = "OBS001"
    name = "bare-print"
    severity = Severity.ERROR
    description = ("print() in library code bypasses the telemetry "
                   "pipeline and pollutes experiment stdout; record "
                   "through repro.telemetry or return data to the CLI "
                   "layer. Entry-point modules (tools/, lint/cli.py, "
                   "experiments/runner.py, resilience_scorecard.py) are "
                   "exempt.")
    scopes = ("src/repro/",)

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not super().applies_to(path):
            return False
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return not any(f"/{entry}" in norm
                       for entry in _PRINT_ENTRY_POINTS)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "print"
                and not self.ctx.imports.is_imported("print")):
            self.report(node, "bare print() outside a CLI entry point; "
                              "emit through repro.telemetry (metrics, "
                              "spans, exporters) or return the data to "
                              "the caller")
        self.generic_visit(node)


#: The one module allowed to drive zone installs directly: the
#: safe-rollout release train (validation lives inside
#: ``NameserverMachine.install_zone``, which rollout deliveries use).
_ZONE_INSTALL_EXEMPT = (
    "src/repro/control/rollout.py",
)

#: Receiver names that identify a zone-store ``add`` call site.
_ZONE_STORE_NAMES = frozenset({"store", "zone_store"})


class ZoneInstallRule(Rule):
    code = "ROB001"
    name = "unguarded-zone-install"
    severity = Severity.ERROR
    description = ("Direct ZoneStore.add() calls skip the safe-rollout "
                   "validator (dnscore.validate) and the last-known-good "
                   "retention that makes rollback possible; route zone "
                   "updates through NameserverMachine.install_zone or "
                   "the rollout train. Build-time bootstrap sites carry "
                   "an inline suppression.")
    scopes = ("src/repro/",)

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not super().applies_to(path):
            return False
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return not any(f"/{entry}" in norm
                       for entry in _ZONE_INSTALL_EXEMPT)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "add":
            receiver = func.value
            is_store = (
                (isinstance(receiver, ast.Name)
                 and receiver.id in _ZONE_STORE_NAMES)
                or (isinstance(receiver, ast.Attribute)
                    and receiver.attr in _ZONE_STORE_NAMES))
            if is_store:
                self.report(node, "direct zone-store add() bypasses the "
                                  "rollout validator and last-known-good "
                                  "retention; install through "
                                  "NameserverMachine.install_zone")
        self.generic_visit(node)


#: The modules allowed to drive mitigations directly: the alert-bound
#: mitigator arms themselves, and the defense ladder's controller
#: (which owns hysteresis, soak, ordering, and the collateral-damage
#: guardrail).
_ENGAGE_EXEMPT = (
    "src/repro/control/defense.py",
    "src/repro/telemetry/mitigation.py",
)

#: Receiver names that identify a mitigation-engage call site.
_MITIGATOR_NAMES = frozenset({"mitigator", "arm", "rung"})


def _is_mitigator_name(identifier: str) -> bool:
    return (identifier in _MITIGATOR_NAMES
            or identifier.endswith("_mitigator")
            or identifier.endswith("_arm")
            or identifier.endswith("_rung"))


class MitigatorEngageRule(Rule):
    code = "ROB002"
    name = "unguarded-mitigation-engage"
    severity = Severity.ERROR
    description = ("Direct Mitigator/DefenseRung engage() calls skip the "
                   "hysteresis, soak ordering, symmetric unwind and "
                   "collateral-damage guardrail that keep mitigations "
                   "from flapping or getting stuck; drive them through "
                   "telemetry.mitigation.arm or control.defense."
                   "DefenseController. Legitimate test/bootstrap sites "
                   "carry an inline suppression.")
    scopes = ("src/repro/", "tests/", "benchmarks/")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not super().applies_to(path):
            return False
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return not any(f"/{entry}" in norm
                       for entry in _ENGAGE_EXEMPT)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("engage", "stand_down")):
            receiver = func.value
            is_mitigator = (
                (isinstance(receiver, ast.Name)
                 and _is_mitigator_name(receiver.id))
                or (isinstance(receiver, ast.Attribute)
                    and _is_mitigator_name(receiver.attr)))
            if is_mitigator:
                self.report(node, f"direct mitigation `{func.attr}()` "
                                  f"bypasses the alert-driven engage "
                                  f"path (hysteresis, soak, guardrail); "
                                  f"arm it via telemetry.mitigation.arm "
                                  f"or control.defense.DefenseController")
        self.generic_visit(node)


#: Modules allowed to drive machine suspend/resume directly: the
#: gray-failure verdict controller (every transition it makes is
#: already gated on a quorum lease) and the restart/recovery flows.
_SUSPEND_EXEMPT = (
    "src/repro/control/grayfail.py",
    "src/repro/control/recovery.py",
)

#: Receiver names that identify a nameserver-machine call site.
def _is_machine_name(identifier: str) -> bool:
    return identifier == "machine" or identifier.endswith("_machine")


class SuspensionPathRule(Rule):
    code = "ROB003"
    name = "unguarded-suspension"
    severity = Severity.ERROR
    description = ("Direct NameserverMachine.suspend()/resume() calls "
                   "skip the quorum lease that bounds how much capacity "
                   "may be down at once (section 4.2.2); route verdicts "
                   "through control.consensus.SuspensionCoordinator "
                   "(request/release) and suspend only on a grant. "
                   "Grant-guarded sites carry an inline suppression.")
    scopes = ("src/repro/",)

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not super().applies_to(path):
            return False
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return not any(f"/{entry}" in norm
                       for entry in _SUSPEND_EXEMPT)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("suspend", "resume")):
            receiver = func.value
            is_machine = (
                (isinstance(receiver, ast.Name)
                 and _is_machine_name(receiver.id))
                or (isinstance(receiver, ast.Attribute)
                    and _is_machine_name(receiver.attr)))
            if is_machine:
                self.report(node, f"direct machine `{func.attr}()` "
                                  f"bypasses the quorum suspension lease "
                                  f"(capacity bound); request a lease "
                                  f"from the SuspensionCoordinator and "
                                  f"act only on a grant")
        self.generic_visit(node)


ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    GlobalRandomRule,
    EntropyRule,
    HashOrderingRule,
    SetIterationRule,
    UnseededRngRule,
    SleepRule,
    LoopBypassRule,
    SeedParamRule,
    BarePrintRule,
    ZoneInstallRule,
    MitigatorEngageRule,
    SuspensionPathRule,
)


def rule_by_code(code: str) -> type[Rule]:
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown rule code {code!r}")
