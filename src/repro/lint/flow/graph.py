"""Project model and call graph for whole-program analysis.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
the flow analyses need to know *who calls whom* across the whole tree.
This module builds that picture from the same ASTs the engine already
parses:

* a **symbol table** per module — top-level functions, classes (with
  methods and resolvable base classes), module-level globals, and
  imports absolutized against the module's package (so relative
  imports and ``__init__`` re-exports resolve to real definitions);
* a **call graph** — for every function, the statically certain call
  edges (direct calls, imported callables, ``self`` method dispatch,
  class instantiation to ``__init__``, attribute access through
  inferred instance types) plus **ref edges** for function references
  passed as arguments (the event-loop ``call_later(delay, self._fire)``
  idiom: the callback will run, so reachability must flow into it);
* **primitive records** — calls that resolve to something outside the
  project (``time.time``, ``open``, ``os.urandom``) keep their dotted
  name so the purity analysis can classify them;
* **write events** — mutations of module-level state (``global``
  rebinding, subscript/attribute stores, mutator-method calls on
  module globals, including cross-module ``state.ACTIVE = ...``).

Resolution is deliberately conservative: an edge exists only when the
target is statically certain. Dynamic dispatch through unknown object
types produces no edge — analyses over-approximate via ref edges and
entry-point roots instead of guessing receiver types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..core import ModuleContext

#: Methods that mutate their receiver in place; a call on a
#: module-level global is a write event.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "add", "update", "setdefault", "pop", "popitem", "clear",
    "sort", "reverse", "rotate",
})

#: Builtins whose calls the analyses care about even though they are
#: not imported names.
_BUILTIN_PRIMITIVES = frozenset({
    "open", "input", "print", "eval", "exec", "breakpoint",
    "__import__",
})

#: Constructor calls producing module-level mutable containers.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.Counter", "collections.defaultdict",
    "collections.deque", "collections.OrderedDict",
})


def module_name_for(path: str) -> str | None:
    """Dotted module name for a repo path (``src/`` layout).

    ``src/repro/netsim/clock.py`` -> ``repro.netsim.clock``;
    ``src/repro/netsim/__init__.py`` -> ``repro.netsim``. Returns
    ``None`` for paths that cannot name an importable module.
    """
    norm = path.replace("\\", "/").lstrip("/")
    if norm.startswith("src/"):
        norm = norm[4:]
    if not norm.endswith(".py"):
        return None
    parts = norm[:-3].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(p.isidentifier() for p in parts):
        return None
    return ".".join(parts)


@dataclass(slots=True)
class CallSite:
    """One outgoing edge (or external primitive call) from a function."""

    caller: str
    #: Project function id when resolved (``module:qualname``).
    callee: str | None
    #: Dotted external name when the call leaves the project
    #: (``time.time``, ``os.urandom``, ``open``).
    primitive: str | None
    lineno: int
    col: int
    #: ``call`` for a direct invocation, ``ref`` for a function
    #: reference passed as an argument (scheduled callbacks).
    kind: str
    #: The AST call node for ``call`` sites (argument taint analysis).
    node: ast.Call | None = None


@dataclass(slots=True)
class WriteEvent:
    """A mutation of module-level state performed inside a function."""

    #: Module owning the written global and the global's name.
    target_module: str
    target_name: str
    lineno: int
    col: int
    #: ``rebind`` | ``item`` | ``attr`` | ``mutate``
    kind: str


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the project."""

    fid: str
    module: str
    qualname: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_fid: str | None = None
    sites: list[CallSite] = field(default_factory=list)
    writes: list[WriteEvent] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def is_method(self) -> bool:
        return self.class_fid is not None

    def param_names(self) -> list[str]:
        """Positional parameter names, ``self`` stripped for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names:
            names = names[1:]
        return names

    def kwonly_names(self) -> list[str]:
        return [a.arg for a in self.node.args.kwonlyargs]

    def default_for(self, name: str) -> ast.expr | None:
        """Default expression for a parameter, if it has one."""
        args = self.node.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        if name in positional:
            offset = len(positional) - len(args.defaults)
            index = positional.index(name) - offset
            if 0 <= index < len(args.defaults):
                return args.defaults[index]
            return None
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == name:
                return default
        return None


@dataclass(slots=True)
class ClassInfo:
    """A class definition with resolved bases and inferred attr types."""

    cid: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    #: method name -> function id
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class id inferred from constructor-style
    #: assignments and annotated parameters.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class GlobalVar:
    """A module-level binding."""

    module: str
    name: str
    lineno: int
    mutable: bool


@dataclass(slots=True)
class ModuleInfo:
    """Symbol table for one project module."""

    name: str
    ctx: ModuleContext
    is_package: bool
    #: local alias -> absolute dotted target
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)


class ProjectModel:
    """Whole-program symbol tables plus the call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: callee fid -> call sites targeting it (reverse edges).
        self.callers: dict[str, list[CallSite]] = {}

    # -- symbol resolution -------------------------------------------------

    def resolve_dotted(self, dotted: str,
                       _depth: int = 0) -> tuple[str, str] | None:
        """Resolve an absolute dotted path to a project symbol.

        Returns ``(kind, id)`` with kind in ``module`` / ``func`` /
        ``class`` / ``global``, chasing re-exports through package
        ``__init__`` import tables; ``None`` means the name lives
        outside the project (an external primitive).
        """
        if _depth > 24:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            info = self.modules.get(mod)
            if info is None:
                continue
            rest = parts[i:]
            if not rest:
                return ("module", mod)
            head = rest[0]
            if len(rest) == 1:
                if head in info.functions:
                    return ("func", info.functions[head])
                if head in info.classes:
                    return ("class", info.classes[head])
                if head in info.globals:
                    return ("global", f"{mod}:{head}")
                if head in info.imports:
                    return self.resolve_dotted(info.imports[head],
                                               _depth + 1)
                return None
            if head in info.classes:
                method = self.lookup_method(info.classes[head], rest[1])
                return ("func", method) if method else None
            if head in info.imports:
                tail = ".".join(rest[1:])
                return self.resolve_dotted(f"{info.imports[head]}.{tail}",
                                           _depth + 1)
            return None
        return None

    def lookup_method(self, cid: str, name: str,
                      _seen: frozenset = frozenset()) -> str | None:
        """Resolve a method on a class, walking project-visible bases."""
        if cid in _seen:
            return None
        cls = self.classes.get(cid)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            found = self.lookup_method(base, name, _seen | {cid})
            if found:
                return found
        return None

    def attr_type(self, cid: str, attr: str,
                  _seen: frozenset = frozenset()) -> str | None:
        """Inferred class of ``self.<attr>``, walking bases."""
        if cid in _seen:
            return None
        cls = self.classes.get(cid)
        if cls is None:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.bases:
            found = self.attr_type(base, attr, _seen | {cid})
            if found:
                return found
        return None

    def match_functions(self, patterns: tuple[str, ...]) -> list[str]:
        """Function ids matching any ``module:qualname`` fnmatch pattern."""
        matched = []
        for fid in sorted(self.functions):
            if any(fnmatchcase(fid, pat) for pat in patterns):
                matched.append(fid)
        return matched

    # -- reachability ------------------------------------------------------

    def reachable_from(self, roots: list[str]
                       ) -> dict[str, tuple[str, ...]]:
        """BFS over call+ref edges; fid -> witness chain from its root.

        The chain starts at the root and ends at the function itself;
        roots map to a single-element chain. Deterministic: roots and
        adjacency are processed in sorted order, so every function
        keeps its first (shortest, lexicographically stable) witness.
        """
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for fid in sorted(roots):
            if fid in self.functions and fid not in chains:
                chains[fid] = (fid,)
                frontier.append(fid)
        while frontier:
            next_frontier: list[str] = []
            for fid in frontier:
                info = self.functions[fid]
                targets = sorted({site.callee for site in info.sites
                                  if site.callee is not None})
                for callee in targets:
                    if callee in self.functions and callee not in chains:
                        chains[callee] = chains[fid] + (callee,)
                        next_frontier.append(callee)
            frontier = next_frontier
        return chains


def _absolute_imports(tree: ast.Module, module: str,
                      is_package: bool) -> dict[str, str]:
    """Alias -> absolute dotted target, relative imports resolved."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                pkg = module.split(".")
                if not is_package:
                    pkg = pkg[:-1]
                drop = node.level - 1
                if drop >= len(pkg) + 1:
                    continue
                if drop:
                    pkg = pkg[:len(pkg) - drop]
                prefix = ".".join(pkg)
                base = f"{prefix}.{base}" if base else prefix
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}"
    return aliases


def _is_mutable_binding(value: ast.expr | None,
                        imports: dict[str, str]) -> bool:
    """Does a module-level assignment bind a mutable container?"""
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            dotted = imports.get(func.id, func.id)
            return dotted in _MUTABLE_FACTORIES
        if isinstance(func, ast.Attribute):
            parts = []
            inner: ast.expr = func
            while isinstance(inner, ast.Attribute):
                parts.append(inner.attr)
                inner = inner.value
            if isinstance(inner, ast.Name):
                base = imports.get(inner.id, inner.id)
                parts.append(base)
                return ".".join(reversed(parts)) in _MUTABLE_FACTORIES
    return False


def _annotation_name(node: ast.expr | None) -> str | None:
    """Extract a usable class name from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = []
        inner: ast.expr = node
        while isinstance(inner, ast.Attribute):
            parts.append(inner.attr)
            inner = inner.value
        if isinstance(inner, ast.Name):
            parts.append(inner.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` and friends: prefer the side that names a class.
        left = _annotation_name(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        # Optional[X] / list[X]: look at the container name only when
        # it is Optional; element types are not receiver types.
        outer = _annotation_name(node.value)
        if outer in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return None
    return None


class _FunctionWalker(ast.NodeVisitor):
    """Extracts call sites, ref edges, and write events for a function."""

    def __init__(self, model: ProjectModel, minfo: ModuleInfo,
                 finfo: FunctionInfo,
                 inherited_types: dict[str, str] | None = None) -> None:
        self.model = model
        self.minfo = minfo
        self.finfo = finfo
        #: local name -> class id
        self.local_types: dict[str, str] = dict(inherited_types or {})
        #: names typed by visit-time inference (``x = ClassName(...)``)
        #: — trusted even though they are assignment targets, because
        #: the inference runs in program order and is invalidated on
        #: any later assignment it cannot type.
        self.inferred_locals: set[str] = set()
        #: local name -> function id (nested defs)
        self.local_funcs: dict[str, str] = {}
        self.declared_globals: set[str] = set()
        self.assigned_locals: set[str] = set()
        args = finfo.node.args
        self.params: set[str] = {
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
        for star in (args.vararg, args.kwarg):
            if star is not None:
                self.params.add(star.arg)
        if finfo.is_method:
            self.local_types["self"] = finfo.class_fid
        self._seed_param_types()
        self._collect_scope()

    # -- scope setup -------------------------------------------------------

    def _seed_param_types(self) -> None:
        args = self.finfo.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == "self":
                continue
            name = _annotation_name(arg.annotation)
            if name is None:
                continue
            resolved = self._resolve_name_or_dotted(name)
            if resolved and resolved[0] == "class":
                self.local_types[arg.arg] = resolved[1]

    def _collect_scope(self) -> None:
        """Pre-pass: local assignment targets and nested defs."""
        for node in ast.walk(self.finfo.node):
            if isinstance(node, ast.Global):
                self.declared_globals.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.assigned_locals.add(target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.assigned_locals.add(leaf.id)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                for leaf in ast.walk(node.optional_vars):
                    if isinstance(leaf, ast.Name):
                        self.assigned_locals.add(leaf.id)

    # -- resolution helpers ------------------------------------------------

    def _resolve_name_or_dotted(self, name: str
                                ) -> tuple[str, str] | None:
        """Resolve a (possibly dotted) source-level name in this module."""
        head, _, tail = name.partition(".")
        if head in self.minfo.classes and not tail:
            return ("class", self.minfo.classes[head])
        if head in self.minfo.functions and not tail:
            return ("func", self.minfo.functions[head])
        if head in self.minfo.imports:
            dotted = self.minfo.imports[head] + (f".{tail}" if tail else "")
            return self.model.resolve_dotted(dotted)
        return None

    def _attr_chain(self, node: ast.expr) -> tuple[ast.expr, list[str]]:
        """Split ``a.b.c`` into (root expr, [``b``, ``c``])."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        parts.reverse()
        return node, parts

    def _class_of_expr(self, node: ast.expr) -> str | None:
        """Inferred class id for an expression, when certain."""
        if isinstance(node, ast.Name):
            if (node.id in self.local_types
                    and node.id not in self.local_funcs):
                return self.local_types[node.id]
            return None
        if isinstance(node, ast.Attribute):
            root, attrs = self._attr_chain(node)
            cid = self._class_of_expr(root)
            if cid is None:
                return None
            for attr in attrs:
                cid = self.model.attr_type(cid, attr)
                if cid is None:
                    return None
            return cid
        if isinstance(node, ast.Call):
            resolved = self._resolve_callable(node.func)
            if resolved and resolved[0] == "class":
                return resolved[1]
            return None
        return None

    def _resolve_callable(self, func: ast.expr
                          ) -> tuple[str, str] | None:
        """Resolve a call target to (kind, id); kind func/class/prim."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_funcs:
                return ("func", self.local_funcs[name])
            if name in self.assigned_locals or name in self.params \
                    or name in self.local_types:
                return None
            if name in self.minfo.functions:
                return ("func", self.minfo.functions[name])
            if name in self.minfo.classes:
                return ("class", self.minfo.classes[name])
            if name in self.minfo.imports:
                dotted = self.minfo.imports[name]
                resolved = self.model.resolve_dotted(dotted)
                if resolved and resolved[0] in ("func", "class"):
                    return resolved
                if resolved is None:
                    return ("prim", dotted)
                return None
            if name in _BUILTIN_PRIMITIVES:
                return ("prim", name)
            return None
        if isinstance(func, ast.Attribute):
            root, attrs = self._attr_chain(func)
            if isinstance(root, ast.Name):
                rid = root.id
                # Instance receiver with a known class.
                if (rid in self.local_types
                        and (rid not in self.assigned_locals
                             or rid in self.inferred_locals)) \
                        or rid == "self":
                    cid = self.local_types.get(rid)
                    if cid is not None:
                        return self._resolve_on_class(cid, attrs)
                    return None
                # Module alias or class named in this module.
                if rid in self.minfo.imports:
                    dotted = self.minfo.imports[rid] + "." + ".".join(attrs)
                    resolved = self.model.resolve_dotted(dotted)
                    if resolved and resolved[0] in ("func", "class"):
                        return resolved
                    if resolved is None:
                        return ("prim", dotted)
                    return None
                if rid in self.minfo.classes and len(attrs) == 1:
                    method = self.model.lookup_method(
                        self.minfo.classes[rid], attrs[0])
                    return ("func", method) if method else None
                return None
            cid = self._class_of_expr(root)
            if cid is not None:
                return self._resolve_on_class(cid, attrs)
            return None
        return None

    def _resolve_on_class(self, cid: str,
                          attrs: list[str]) -> tuple[str, str] | None:
        for attr in attrs[:-1]:
            cid = self.model.attr_type(cid, attr)
            if cid is None:
                return None
        method = self.model.lookup_method(cid, attrs[-1])
        return ("func", method) if method else None

    def _class_init(self, cid: str) -> str | None:
        return self.model.lookup_method(cid, "__init__")

    def _func_ref(self, node: ast.expr) -> str | None:
        """Function id for a bare function reference (no call)."""
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.local_funcs:
                return self.local_funcs[name]
            if name in self.assigned_locals or name in self.params \
                    or name in self.local_types:
                return None
            if name in self.minfo.functions:
                return self.minfo.functions[name]
            if name in self.minfo.imports:
                resolved = self.model.resolve_dotted(
                    self.minfo.imports[name])
                if resolved and resolved[0] == "func":
                    return resolved[1]
            return None
        if isinstance(node, ast.Attribute):
            resolved = self._resolve_callable(node)
            if resolved and resolved[0] == "func":
                return resolved[1]
        return None

    def _global_ref(self, node: ast.expr) -> tuple[str, str] | None:
        """(module, name) when an expression reads a module global."""
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.declared_globals:
                return (self.minfo.name, name)
            if (name in self.minfo.globals
                    and name not in self.assigned_locals
                    and name not in self.params):
                return (self.minfo.name, name)
            return None
        if isinstance(node, ast.Attribute):
            root, attrs = self._attr_chain(node)
            if isinstance(root, ast.Name) and root.id in self.minfo.imports:
                dotted = self.minfo.imports[root.id] + "." + ".".join(attrs)
                resolved = self.model.resolve_dotted(dotted)
                if resolved and resolved[0] == "global":
                    mod, _, name = resolved[1].partition(":")
                    return (mod, name)
        return None

    def _record_write(self, target: tuple[str, str], node: ast.AST,
                      kind: str) -> None:
        self.finfo.writes.append(WriteEvent(
            target_module=target[0], target_name=target[1],
            lineno=getattr(node, "lineno", self.finfo.lineno),
            col=getattr(node, "col_offset", 0) + 1, kind=kind))

    # -- visitors ----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested def: ref edge (closures are invoked eventually), no
        # descent — the nested function is walked with its own scope.
        fid = f"{self.finfo.fid}.{node.name}"
        if fid in self.model.functions:
            self.local_funcs[node.name] = fid
            self.finfo.sites.append(CallSite(
                caller=self.finfo.fid, callee=fid, primitive=None,
                lineno=node.lineno, col=node.col_offset + 1, kind="ref"))

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # classes local to a function are out of model scope

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        # Forward type inference: ``x = ClassName(...)``; any later
        # assignment the inference cannot type invalidates the entry.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            tid = node.targets[0].id
            cid = self._class_of_expr(node.value)
            if cid is not None:
                self.local_types[tid] = cid
                self.inferred_locals.add(tid)
            elif tid in self.inferred_locals:
                self.local_types.pop(tid, None)
                self.inferred_locals.discard(tid)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target, node)
        if isinstance(node.target, ast.Name):
            cid = None
            if node.value is not None:
                cid = self._class_of_expr(node.value)
            if cid is None:
                name = _annotation_name(node.annotation)
                if name:
                    resolved = self._resolve_name_or_dotted(name)
                    if resolved and resolved[0] == "class":
                        cid = resolved[1]
            if cid is not None:
                self.local_types[node.target.id] = cid
                self.inferred_locals.add(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def _check_store(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                self._record_write((self.minfo.name, target.id),
                                   node, "rebind")
        elif isinstance(target, ast.Subscript):
            ref = self._global_ref(target.value)
            if ref is not None:
                self._record_write(ref, node, "item")
        elif isinstance(target, ast.Attribute):
            # ``state.ACTIVE = ...`` (import alias) or ``GLOBAL.x = ...``.
            root, attrs = self._attr_chain(target)
            if isinstance(root, ast.Name):
                if root.id in self.minfo.imports:
                    dotted = (self.minfo.imports[root.id] + "."
                              + ".".join(attrs))
                    resolved = self.model.resolve_dotted(dotted)
                    if resolved and resolved[0] == "global":
                        mod, _, name = resolved[1].partition(":")
                        self._record_write((mod, name), node, "attr")
                    elif resolved and resolved[0] == "module" \
                            and len(attrs) >= 1:
                        self._record_write((resolved[1], attrs[-1]),
                                           node, "attr")
                else:
                    ref = self._global_ref(root)
                    if ref is not None:
                        self._record_write(ref, node, "attr")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, node)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve_callable(node.func)
        callee = primitive = None
        if resolved is not None:
            kind, ident = resolved
            if kind == "func":
                callee = ident
            elif kind == "class":
                callee = self._class_init(ident)
            else:
                primitive = ident
        if callee is not None or primitive is not None:
            self.finfo.sites.append(CallSite(
                caller=self.finfo.fid, callee=callee, primitive=primitive,
                lineno=node.lineno, col=node.col_offset + 1,
                kind="call", node=node))
        # Mutator-method write detection: ``GLOBAL.append(...)``.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS:
            ref = self._global_ref(node.func.value)
            if ref is not None:
                self._record_write(ref, node, "mutate")
        # Ref edges for function references passed as arguments.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            fid = self._func_ref(arg)
            if fid is not None:
                self.finfo.sites.append(CallSite(
                    caller=self.finfo.fid, callee=fid, primitive=None,
                    lineno=node.lineno, col=node.col_offset + 1,
                    kind="ref"))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        # ``return self._helper`` — a method handed out as a callback.
        if node.value is not None:
            fid = self._func_ref(node.value)
            if fid is not None:
                self.finfo.sites.append(CallSite(
                    caller=self.finfo.fid, callee=fid, primitive=None,
                    lineno=node.lineno, col=node.col_offset + 1,
                    kind="ref"))
        self.generic_visit(node)


def _child_functions(node: ast.AST):
    """Function defs directly inside ``node``'s statement tree.

    Descends through compound statements (if/for/try/with) but stops
    at nested function boundaries, so each def is yielded exactly once
    by its immediate enclosing function.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif isinstance(child, (ast.ClassDef, ast.Lambda)):
            continue
        else:
            yield from _child_functions(child)


def _register_function(model: ProjectModel, minfo: ModuleInfo,
                       node: ast.FunctionDef | ast.AsyncFunctionDef,
                       qualname: str, class_fid: str | None) -> FunctionInfo:
    fid = f"{minfo.name}:{qualname}"
    finfo = FunctionInfo(fid=fid, module=minfo.name, qualname=qualname,
                         path=minfo.ctx.path, node=node,
                         class_fid=class_fid)
    model.functions[fid] = finfo
    # Nested defs get their own entries (recursively, so a def inside
    # a def keeps the full dotted qualname) so ref edges have targets.
    for child in _child_functions(node):
        _register_function(model, minfo, child,
                           f"{qualname}.{child.name}", class_fid)
    return finfo


def _register_module(model: ProjectModel, ctx: ModuleContext,
                     module: str) -> None:
    is_package = ctx.path.replace("\\", "/").endswith("/__init__.py")
    minfo = ModuleInfo(name=module, ctx=ctx, is_package=is_package)
    minfo.imports = _absolute_imports(ctx.tree, module, is_package)
    model.modules[module] = minfo
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            finfo = _register_function(model, minfo, stmt,
                                       stmt.name, None)
            minfo.functions[stmt.name] = finfo.fid
        elif isinstance(stmt, ast.ClassDef):
            cid = f"{module}:{stmt.name}"
            cls = ClassInfo(cid=cid, module=module, name=stmt.name,
                            node=stmt)
            model.classes[cid] = cls
            minfo.classes[stmt.name] = cid
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    method = _register_function(
                        model, minfo, inner,
                        f"{stmt.name}.{inner.name}", cid)
                    cls.methods[inner.name] = method.fid
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    minfo.globals[target.id] = GlobalVar(
                        module=module, name=target.id,
                        lineno=stmt.lineno,
                        mutable=_is_mutable_binding(value, minfo.imports))


def _resolve_bases_and_attrs(model: ProjectModel) -> None:
    for cid in sorted(model.classes):
        cls = model.classes[cid]
        minfo = model.modules[cls.module]
        for base in cls.node.bases:
            name = _annotation_name(base)
            if name is None:
                continue
            head, _, tail = name.partition(".")
            resolved = None
            if head in minfo.classes and not tail:
                resolved = ("class", minfo.classes[head])
            elif head in minfo.imports:
                dotted = minfo.imports[head] + (f".{tail}" if tail else "")
                resolved = model.resolve_dotted(dotted)
            if resolved and resolved[0] == "class":
                cls.bases.append(resolved[1])
    # Attr types: ``self.x = ClassName(...)`` and annotated params
    # assigned straight through (``self.loop = loop``).
    for cid in sorted(model.classes):
        cls = model.classes[cid]
        minfo = model.modules[cls.module]
        for method_fid in cls.methods.values():
            finfo = model.functions[method_fid]
            param_types: dict[str, str] = {}
            args = finfo.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                name = _annotation_name(arg.annotation)
                if name is None:
                    continue
                head, _, tail = name.partition(".")
                resolved = None
                if head in minfo.classes and not tail:
                    resolved = ("class", minfo.classes[head])
                elif head in minfo.imports:
                    dotted = (minfo.imports[head]
                              + (f".{tail}" if tail else ""))
                    resolved = model.resolve_dotted(dotted)
                if resolved and resolved[0] == "class":
                    param_types[arg.arg] = resolved[1]
            for node in ast.walk(finfo.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    inferred: str | None = None
                    value = node.value
                    if isinstance(value, ast.Call):
                        func = value.func
                        fname = None
                        if isinstance(func, ast.Name):
                            fname = func.id
                        if fname and fname in minfo.classes:
                            inferred = minfo.classes[fname]
                        elif fname and fname in minfo.imports:
                            resolved = model.resolve_dotted(
                                minfo.imports[fname])
                            if resolved and resolved[0] == "class":
                                inferred = resolved[1]
                    elif isinstance(value, ast.Name):
                        inferred = param_types.get(value.id)
                    if inferred is not None \
                            and attr not in cls.attr_types:
                        cls.attr_types[attr] = inferred


def build_model(contexts: list[ModuleContext],
                packages: tuple[str, ...]) -> ProjectModel:
    """Build the whole-program model from parsed module contexts.

    ``packages`` filters which dotted module roots participate (the
    default configuration analyzes ``repro``); everything else —
    tests, benchmarks, tools passed on the command line — is ignored.
    """
    model = ProjectModel()
    in_scope = []
    for ctx in sorted(contexts, key=lambda c: c.path):
        module = module_name_for(ctx.path)
        if module is None:
            continue
        if not any(module == pkg or module.startswith(pkg + ".")
                   for pkg in packages):
            continue
        in_scope.append((module, ctx))
    for module, ctx in in_scope:
        _register_module(model, ctx, module)
    _resolve_bases_and_attrs(model)
    for module, _ctx in in_scope:
        minfo = model.modules[module]
        for fid in sorted(model.functions):
            finfo = model.functions[fid]
            if finfo.module != module:
                continue
            inherited = None
            if finfo.class_fid is not None:
                inherited = {"self": finfo.class_fid}
            walker = _FunctionWalker(model, minfo, finfo, inherited)
            for stmt in finfo.node.body:
                walker.visit(stmt)
    for fid in sorted(model.functions):
        for site in model.functions[fid].sites:
            if site.callee is not None:
                model.callers.setdefault(site.callee, []).append(site)
    return model
