"""PERF001 — advisory: protocol-object construction on hot paths.

The query-serving fast lane exists because building ``Message`` /
``Name`` objects per packet is what made the slow path slow; the plan
cache and the Name flyweight table amortize those constructions away.
This analysis keeps them away: it reuses the FLOW002 hot-root
reachability (event-loop tick, ``respond``, probe paths) and flags
every reachable construction of a configured costly protocol object,
with the call-chain witness showing how the hot root reaches it.

Findings are :data:`~repro.lint.core.Severity.ADVICE`: construction on
a hot path is sometimes the right call (the slow path itself assembles
responses — that is its job), so a finding asks for a judgment —
route through the cache, hoist the construction, or acknowledge the
site with an inline ``# reprolint: disable=PERF001`` — rather than
breaking the build.
"""

from __future__ import annotations

import ast

from ..core import Finding, Severity
from .graph import ModuleInfo, ProjectModel

CODE = "PERF001"


class _CallCollector(ast.NodeVisitor):
    """Call nodes in one function body, stopping at nested defs.

    Nested functions are separate :class:`FunctionInfo` entries and are
    always ref-edge-reachable from their parent, so descending here
    would double-report their sites.
    """

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _resolve_target(model: ProjectModel, minfo: ModuleInfo,
                    func: ast.expr) -> str | None:
    """Project id (``module:qualname``) a call expression constructs,
    resolved through the module's own symbol table, its import table,
    and package re-exports; ``None`` when dynamic or external."""
    if isinstance(func, ast.Name):
        local = minfo.classes.get(func.id) or minfo.functions.get(func.id)
        if local is not None:
            return local
        dotted = minfo.imports.get(func.id)
        if dotted is None:
            return None
    elif isinstance(func, ast.Attribute):
        parts: list[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = minfo.imports.get(node.id)
        if base is None:
            return None
        dotted = base + "." + ".".join(reversed(parts))
    else:
        return None
    resolved = model.resolve_dotted(dotted)
    if resolved is None or resolved[0] not in ("class", "func"):
        return None
    return resolved[1]


def _module_exempt(module: str, exempt: tuple[str, ...]) -> bool:
    return any(module == prefix.rstrip(".") or module.startswith(prefix)
               for prefix in exempt)


def check_hot_construction(model: ProjectModel,
                           hot_roots: tuple[str, ...],
                           costly: tuple[str, ...],
                           exempt: tuple[str, ...]) -> list[Finding]:
    """Run PERF001: no costly construction reachable from a hot root."""
    targets = set(costly)
    roots = model.match_functions(hot_roots)
    chains = model.reachable_from(roots)
    findings: list[Finding] = []
    for fid in sorted(chains):
        finfo = model.functions[fid]
        if _module_exempt(finfo.module, exempt):
            continue
        minfo = model.modules[finfo.module]
        collector = _CallCollector()
        for stmt in finfo.node.body:
            collector.visit(stmt)
        for call in collector.calls:
            ident = _resolve_target(model, minfo, call.func)
            if ident is None or ident not in targets:
                continue
            label = ident.split(":", 1)[1]
            findings.append(Finding(
                path=finfo.path, line=call.lineno,
                col=call.col_offset + 1, code=CODE,
                severity=Severity.ADVICE,
                message=(f"hot path constructs `{label}` per call — "
                         f"serve from the response plan cache / Name "
                         f"flyweights, hoist the construction, or "
                         f"acknowledge the site with an inline "
                         f"disable comment"),
                source=minfo.ctx.line_text(call.lineno),
                witness=chains[fid]))
    return findings
