"""FLOW003 — parallel safety of experiment work units.

``--jobs 1`` vs ``--jobs N`` byte-identity rests on one structural
property: a work unit builds its whole world from its params and never
communicates through process-global state. A module-level dict that a
unit mutates works fine serially (units run in order, state leaks
forward) and silently diverges under a pool (each worker has its own
copy, the merge sees none of it) — the exact class of bug no per-file
rule can see, because the write site and the work-unit entry point live
in different modules.

This analysis finds every mutation of module-level state (``global``
rebinding, subscript/attribute stores, mutator-method calls — including
cross-module writes like ``state.ACTIVE = ...``) inside functions
reachable from the experiment work-unit roots, and flags all of them
except the explicit allowlist: ``repro.telemetry.state`` implements the
guarded push/pop ``ACTIVE`` session pattern (LIFO-restored, observed
behind ``ACTIVE is None`` guards, proven byte-identical on/off by the
telemetry equivalence tests), which is the sanctioned way to hold
process scope.
"""

from __future__ import annotations

from ..core import Finding, Severity
from .graph import ProjectModel

CODE = "FLOW003"

_KIND_VERB = {
    "rebind": "rebinds",
    "item": "stores into",
    "attr": "sets an attribute on",
    "mutate": "mutates",
}


def check_parallel_safety(model: ProjectModel,
                          workunit_roots: tuple[str, ...],
                          allowlist: tuple[str, ...]) -> list[Finding]:
    """Run FLOW003 over every function reachable from a work unit."""
    roots = model.match_functions(workunit_roots)
    chains = model.reachable_from(roots)
    findings: list[Finding] = []
    for fid in sorted(chains):
        finfo = model.functions[fid]
        ctx = model.modules[finfo.module].ctx
        for write in finfo.writes:
            if write.target_module in allowlist:
                continue
            if finfo.module in allowlist:
                continue
            verb = _KIND_VERB.get(write.kind, "writes")
            findings.append(Finding(
                path=finfo.path, line=write.lineno, col=write.col,
                code=CODE, severity=Severity.ERROR,
                message=(f"work-unit-reachable code {verb} module-"
                         f"level state `{write.target_module}."
                         f"{write.target_name}` — worker processes do "
                         f"not share it, so --jobs 1 and --jobs N "
                         f"diverge; keep unit state on the objects the "
                         f"unit builds (or allowlist a guarded "
                         f"session pattern like telemetry.state)"),
                source=ctx.line_text(write.lineno),
                witness=chains[fid]))
    return findings
