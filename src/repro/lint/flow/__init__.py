"""Whole-program flow analysis on top of reprolint.

Where :mod:`repro.lint.rules` checks one file at a time, this package
proves cross-module properties of the simulator — the invariants that
hold *between* components, which is where distributed-DNS bugs live:

* **FLOW001** (:mod:`.rng`) — every ``random.Random(...)`` (and numpy
  generator) is seeded by a value that provably derives from the
  deployment/experiment seed, traced through assignments and call
  edges (a helper is judged by what its callers pass it).
* **FLOW002** (:mod:`.purity`) — nothing reachable from the event-loop
  tick / ``respond`` / probe hot paths calls into the real world
  (wall clock, sleeps, entropy, file/OS/socket/console I/O).
* **FLOW003** (:mod:`.parallel`) — no code reachable from an
  experiment work unit mutates module-level state, the property that
  keeps ``--jobs 1`` and ``--jobs N`` byte-identical (allowlisting the
  guarded ``telemetry.state`` session pattern).
* **PERF001** (:mod:`.perf`, advisory) — no ``Message``/``Name``
  construction reachable from the FLOW002 hot roots outside the
  protocol substrate itself, so future changes don't silently re-fatten
  the query fast lane. Advisory findings print but never fail the run.

All three emit standard :class:`~repro.lint.core.Finding` objects
carrying a **call-chain witness** (entry point -> ... -> offending
function), so inline suppressions, the fingerprint baseline,
``--select``, and JSON output work unchanged; witnesses participate in
fingerprints so baselines survive moving unrelated code but notice a
rewired call chain. Run via ``python -m repro.lint --flow src`` or
``lint_paths(..., flow=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Finding, ModuleContext, Severity
from ..suppress import parse_suppressions
from .graph import ProjectModel, build_model, module_name_for
from .parallel import check_parallel_safety
from .perf import check_hot_construction
from .purity import check_hot_path_purity
from .rng import check_rng_provenance


@dataclass(frozen=True)
class FlowConfig:
    """Project-specific knobs for the whole-program analyses.

    The defaults describe the ``repro`` tree; tests point the same
    analyses at fixture packages by overriding roots and packages.
    """

    #: Dotted package roots that participate in the project model.
    packages: tuple[str, ...] = ("repro",)
    #: Module prefixes exempt from FLOW001 (offline CLI tooling whose
    #: fixed bench seeds are deliberate).
    rng_exempt: tuple[str, ...] = ("repro.tools.",)
    #: Project-internal ``module:qualname`` ids FLOW001 treats as
    #: seed-provenance roots: their first argument must derive from
    #: the deployment seed, exactly like an RNG constructor's. The
    #: DNSSEC key-derivation root is registered because a constant key
    #: seed would pin the zone's key hierarchy across reseeded runs.
    seed_roots: tuple[str, ...] = ("repro.dnssec.keys:derive_keypair",)
    #: ``module:qualname`` fnmatch patterns rooting the FLOW002
    #: hot-path reachability: the event-loop tick, the authoritative
    #: respond/probe path, the machine ingress path, the resolver.
    hot_roots: tuple[str, ...] = (
        "repro.netsim.clock:EventLoop.run",
        "repro.netsim.clock:EventLoop.run_until",
        "repro.netsim.clock:PeriodicTask._fire",
        "repro.server.engine:AuthoritativeEngine.respond",
        "repro.server.engine:AuthoritativeEngine.respond_probe",
        "repro.server.machine:NameserverMachine.receive_query",
        "repro.server.machine:NameserverMachine.health_probe",
        "repro.resolver.resolver:RecursiveResolver.resolve",
        "repro.resolver.resolver:RecursiveResolver.handle_datagram",
        "repro.resolver.service:ResolverService.handle_datagram",
    )
    #: Patterns rooting the FLOW003 work-unit reachability: experiment
    #: entry points and the parallel runner's unit pipeline.
    workunit_roots: tuple[str, ...] = (
        "repro.experiments.*:run",
        "repro.experiments.parallel:run_unit",
        "repro.experiments.fig8_failover:run_case",
        "repro.experiments.resilience_scorecard:run_unit",
    )
    #: Modules whose module-level state is a sanctioned, guarded
    #: session pattern (writes to or inside them are FLOW003-exempt).
    state_allowlist: tuple[str, ...] = ("repro.telemetry.state",)
    #: ``module:qualname`` ids whose construction PERF001 flags when
    #: reachable from a hot root — the protocol objects the response
    #: fast lane exists to avoid building per query.
    perf_costly: tuple[str, ...] = (
        "repro.dnscore.message:Message",
        "repro.dnscore.message:Flags",
        "repro.dnscore.message:make_query",
        "repro.dnscore.message:make_response",
        "repro.dnscore.name:Name",
        "repro.dnscore.name:name",
    )
    #: Module prefixes exempt from PERF001: the protocol substrate
    #: itself (whose job is constructing these objects).
    perf_exempt: tuple[str, ...] = ("repro.dnscore.",)


DEFAULT_CONFIG = FlowConfig()


class FlowRule:
    """Metadata stub so flow analyses appear in the rule catalogue."""

    code = ""
    name = ""
    severity = Severity.ERROR
    description = ""
    scopes: tuple[str, ...] = ("src/repro/",)


class RngProvenanceRule(FlowRule):
    code = "FLOW001"
    name = "rng-seed-provenance"
    description = ("Whole-program: every random.Random(...) / numpy "
                   "generator seed must derive from the deployment "
                   "seed, traced through assignments and call edges; "
                   "registered seed-provenance roots (the DNSSEC "
                   "key-derivation entry point) carry the same "
                   "contract. Fixed-constant seeds flag too: they "
                   "silently ignore experiment reseeding.")


class HotPathPurityRule(FlowRule):
    code = "FLOW002"
    name = "hot-path-purity"
    description = ("Whole-program: no wall-clock, sleep, entropy, or "
                   "file/OS/socket/console I/O reachable from the "
                   "event-loop tick / respond / probe hot paths; "
                   "findings carry the call-chain witness.")


class ParallelSafetyRule(FlowRule):
    code = "FLOW003"
    name = "parallel-unit-safety"
    description = ("Whole-program: code reachable from experiment work "
                   "units must not mutate module-level state, or "
                   "--jobs 1 and --jobs N diverge (the guarded "
                   "telemetry.state session pattern is allowlisted).")


class PerfHotConstructionRule(FlowRule):
    code = "PERF001"
    name = "hot-path-construction"
    severity = Severity.ADVICE
    description = ("Whole-program advisory: Message/Name construction "
                   "reachable from the FLOW002 hot roots re-fattens "
                   "the query fast lane — serve from the plan cache / "
                   "flyweights or acknowledge the site inline. "
                   "Advisory findings never fail the run.")


FLOW_RULES: tuple[type[FlowRule], ...] = (
    RngProvenanceRule,
    HotPathPurityRule,
    ParallelSafetyRule,
    PerfHotConstructionRule,
)

FLOW_CODES: tuple[str, ...] = tuple(r.code for r in FLOW_RULES)


def analyze(contexts: list[ModuleContext],
            config: FlowConfig = DEFAULT_CONFIG,
            codes: set[str] | None = None) -> list[Finding]:
    """Run the whole-program analyses over parsed module contexts.

    ``codes`` restricts which FLOW rules run (``None`` = all). Inline
    ``# reprolint: disable=FLOW00x`` suppressions at the offending
    line apply exactly as they do for per-file rules.
    """
    wanted = set(FLOW_CODES) if codes is None else set(codes)
    if not wanted:
        return []
    model = build_model(contexts, config.packages)
    findings: list[Finding] = []
    if RngProvenanceRule.code in wanted:
        findings.extend(check_rng_provenance(model, config.rng_exempt,
                                             config.seed_roots))
    if HotPathPurityRule.code in wanted:
        findings.extend(check_hot_path_purity(model, config.hot_roots))
    if ParallelSafetyRule.code in wanted:
        findings.extend(check_parallel_safety(
            model, config.workunit_roots, config.state_allowlist))
    if PerfHotConstructionRule.code in wanted:
        findings.extend(check_hot_construction(
            model, config.hot_roots, config.perf_costly,
            config.perf_exempt))
    # Inline suppressions, by offending file and line.
    suppression_maps = {}
    kept: list[Finding] = []
    for finding in findings:
        smap = suppression_maps.get(finding.path)
        if smap is None:
            ctx = next((c for c in contexts if c.path == finding.path),
                       None)
            smap = parse_suppressions(ctx.source_lines if ctx else [])
            suppression_maps[finding.path] = smap
        if not smap.is_suppressed(finding.code, finding.line):
            kept.append(finding)
    return sorted(kept, key=Finding.sort_key)


__all__ = [
    "DEFAULT_CONFIG",
    "FLOW_CODES",
    "FLOW_RULES",
    "FlowConfig",
    "FlowRule",
    "HotPathPurityRule",
    "ParallelSafetyRule",
    "PerfHotConstructionRule",
    "ProjectModel",
    "RngProvenanceRule",
    "analyze",
    "build_model",
    "module_name_for",
]
