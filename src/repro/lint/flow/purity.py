"""FLOW002 — transitive purity of the simulator hot paths.

LOOP001/DET001 flag a blocking sleep or wall-clock read wherever it
appears; they cannot tell whether it can actually *run* during a
simulation. This analysis can: it computes the set of functions
reachable from the event-loop tick / ``respond`` / probe entry points
(call edges plus ref edges for scheduled callbacks) and flags every
reachable call into the real world — wall clock, blocking sleep,
ambient entropy, file/OS/socket I/O, console writes. Each finding
carries the call-chain witness from the entry point down to the
offending call, turning the import-level heuristics into a
reachability proof: *this* impure primitive is on *this* hot path.

The analysis is an over-approximation (ref edges assume a scheduled
callback eventually fires) but never guesses receiver types, so a
finding's witness chain is always a real chain of resolved calls.
"""

from __future__ import annotations

from ..core import Finding, Severity
from ..rules import _ENTROPY, _WALL_CLOCK
from .graph import ProjectModel

CODE = "FLOW002"

#: Prefix-classified impure primitives beyond the exact sets.
_PREFIX_CATEGORIES = (
    ("secrets.", "ambient entropy"),
    ("os.path.", None),             # pure path arithmetic: allowed
    ("os.environ", "ambient environment"),
    ("os.", "OS call"),
    ("shutil.", "file I/O"),
    ("subprocess.", "process I/O"),
    ("socket.", "network I/O"),
    ("http.", "network I/O"),
    ("urllib.", "network I/O"),
    ("sys.stdout", "console I/O"),
    ("sys.stderr", "console I/O"),
    ("pathlib.Path.", "file I/O"),
    ("io.open", "file I/O"),
    ("builtins.open", "file I/O"),
    ("logging.", "log I/O"),
)

_EXACT_CATEGORIES = {
    "time.sleep": "blocking sleep",
    "asyncio.sleep": "blocking sleep",
    "open": "file I/O",
    "input": "console I/O",
    "print": "console I/O",
    "breakpoint": "debugger I/O",
}


def classify_impure(primitive: str) -> str | None:
    """Category name when a primitive call is impure, else ``None``."""
    if primitive in _WALL_CLOCK:
        return "wall-clock read"
    if primitive in _ENTROPY:
        return "ambient entropy"
    if primitive in _EXACT_CATEGORIES:
        return _EXACT_CATEGORIES[primitive]
    for prefix, category in _PREFIX_CATEGORIES:
        if primitive.startswith(prefix):
            return category
    return None


def check_hot_path_purity(model: ProjectModel,
                          hot_roots: tuple[str, ...]) -> list[Finding]:
    """Run FLOW002: no impure primitive reachable from a hot root."""
    roots = model.match_functions(hot_roots)
    chains = model.reachable_from(roots)
    findings: list[Finding] = []
    for fid in sorted(chains):
        finfo = model.functions[fid]
        ctx = model.modules[finfo.module].ctx
        for site in finfo.sites:
            if site.kind != "call" or site.primitive is None:
                continue
            category = classify_impure(site.primitive)
            if category is None:
                continue
            findings.append(Finding(
                path=finfo.path, line=site.lineno, col=site.col,
                code=CODE, severity=Severity.ERROR,
                message=(f"hot path reaches {category} "
                         f"`{site.primitive}()` — the simulator tick/"
                         f"respond/probe paths must stay side-effect-"
                         f"free (schedule on the EventLoop, thread "
                         f"seeded RNGs, report through telemetry)"),
                source=ctx.line_text(site.lineno),
                witness=chains[fid]))
    return findings
