"""FLOW001 — interprocedural RNG seed provenance.

DET006 catches ``random.Random()`` with *no* argument; it cannot tell
whether the seed that *is* passed actually derives from the deployment
or experiment seed. This analysis can: it evaluates the taint of every
seed expression at every RNG construction site, following local
dataflow (assignments, arithmetic, tuple packing, derivation helpers)
and — the part no per-file rule can do — **parameter taint across call
edges**: a bare parameter is seed-derived only when every statically
known call site passes a seed-derived argument, so a helper two hops
from the entry point is judged by what its callers actually feed it.

Seed-derived values (the allowed lattice top):

* names/attributes spelled like a seed (``seed``, ``*_seed``,
  ``params.seed``, ``self.seed``);
* draws from an existing RNG (``self.rng.randrange(2**31)``) — the
  parent RNG's own provenance is checked at *its* construction site;
* any expression (arithmetic, calls, tuples, f-strings) with at least
  one seed-derived operand.

Everything else flags: a bare constant (deterministic, but silently
independent of the deployment seed — the whole run ignores reseeding)
or an opaque value (possibly OS entropy). Intentional fixed-seed sites
carry a scoped inline suppression with a justification.
"""

from __future__ import annotations

import ast

from ..core import Finding, Severity
from .graph import FunctionInfo, ProjectModel

CODE = "FLOW001"

#: Constructors whose first argument is an RNG seed.
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})

#: Project-internal functions (``module:qualname`` ids) registered as
#: seed-provenance roots carry the same contract as RNG constructors:
#: their first argument must derive from the deployment seed. The
#: project registers them via ``FlowConfig.seed_roots`` (the DNSSEC
#: key-derivation root ``repro.dnssec.keys:derive_keypair`` being the
#: canonical example — a fixed-constant key seed would pin the zone's
#: whole key hierarchy across reseeded experiments).

#: Keyword spellings of the seed argument per constructor family.
_SEED_KEYWORDS = frozenset({"x", "seed", "entropy"})

#: RNG methods whose return value is legitimate child-seed material.
_DRAW_METHODS = frozenset({
    "randrange", "randint", "getrandbits", "random", "randbytes",
    "choice", "uniform",
})

#: Taint lattice values.
SEED = "seed"
CONST = "const"
OPAQUE = "opaque"

_MAX_DEPTH = 12


def _is_seed_name(name: str) -> bool:
    return name == "seed" or name.endswith("_seed")


def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


def _combine(parts: list[str]) -> str:
    """Join taints of sub-expressions: any seed wins, all-const stays
    const, otherwise opaque."""
    if any(p == SEED for p in parts):
        return SEED
    if parts and all(p == CONST for p in parts):
        return CONST
    return OPAQUE


class _Tainter:
    """Evaluates seed taint of expressions, interprocedurally."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: (fid, param) -> (taint, witness-prefix) memo; cycle guard.
        self._param_memo: dict[tuple[str, str], tuple[str, tuple[str, ...]]] = {}
        self._param_stack: set[tuple[str, str]] = set()
        #: fid -> {local name: last assigned expr}
        self._env_cache: dict[str, dict[str, ast.expr]] = {}

    def _env(self, finfo: FunctionInfo) -> dict[str, ast.expr]:
        env = self._env_cache.get(finfo.fid)
        if env is None:
            env = {}
            for node in ast.walk(finfo.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env.setdefault(target.id, node.value)
                elif isinstance(node, ast.AnnAssign) \
                        and node.value is not None \
                        and isinstance(node.target, ast.Name):
                    env.setdefault(node.target.id, node.value)
            self._env_cache[finfo.fid] = env
        return env

    def taint(self, expr: ast.expr | None, finfo: FunctionInfo,
              depth: int = 0) -> tuple[str, tuple[str, ...]]:
        """(taint, witness) — witness is the caller chain that decided
        a parameter's taint, ending nearest the construction site."""
        if expr is None or depth > _MAX_DEPTH:
            return OPAQUE, ()
        if isinstance(expr, ast.Constant):
            return CONST, ()
        if isinstance(expr, ast.Name):
            return self._taint_name(expr.id, finfo, depth)
        if isinstance(expr, ast.Attribute):
            if _is_seed_name(expr.attr):
                return SEED, ()
            return OPAQUE, ()
        if isinstance(expr, ast.BinOp):
            left, wl = self.taint(expr.left, finfo, depth + 1)
            right, wr = self.taint(expr.right, finfo, depth + 1)
            return _combine([left, right]), (wl or wr)
        if isinstance(expr, ast.UnaryOp):
            return self.taint(expr.operand, finfo, depth + 1)
        if isinstance(expr, ast.Call):
            return self._taint_call(expr, finfo, depth)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            parts, witness = [], ()
            for elt in expr.elts:
                taint, chain = self.taint(elt, finfo, depth + 1)
                parts.append(taint)
                witness = witness or chain
            return _combine(parts), witness
        if isinstance(expr, ast.IfExp):
            body, wb = self.taint(expr.body, finfo, depth + 1)
            orelse, wo = self.taint(expr.orelse, finfo, depth + 1)
            return _combine([body, orelse]), (wb or wo)
        if isinstance(expr, ast.BoolOp):
            parts = [self.taint(v, finfo, depth + 1)[0]
                     for v in expr.values]
            return _combine(parts), ()
        if isinstance(expr, ast.JoinedStr):
            parts = []
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    parts.append(self.taint(value.value, finfo,
                                            depth + 1)[0])
            return (SEED, ()) if SEED in parts else (OPAQUE, ())
        if isinstance(expr, ast.Starred):
            return self.taint(expr.value, finfo, depth + 1)
        return OPAQUE, ()

    def _taint_name(self, name: str, finfo: FunctionInfo,
                    depth: int) -> tuple[str, tuple[str, ...]]:
        if _is_seed_name(name):
            return SEED, ()
        env = self._env(finfo)
        if name in env:
            return self.taint(env[name], finfo, depth + 1)
        if name in finfo.param_names() or name in finfo.kwonly_names():
            return self._param_taint(finfo, name)
        # Module-level constant?
        minfo = self.model.modules.get(finfo.module)
        if minfo is not None and name in minfo.globals:
            return (OPAQUE if minfo.globals[name].mutable
                    else CONST), ()
        return OPAQUE, ()

    def _taint_call(self, expr: ast.Call, finfo: FunctionInfo,
                    depth: int) -> tuple[str, tuple[str, ...]]:
        func = expr.func
        # A draw from an existing RNG is seed material by definition.
        if isinstance(func, ast.Attribute) and func.attr in _DRAW_METHODS:
            receiver = func.value
            if (isinstance(receiver, ast.Name)
                    and _is_rng_name(receiver.id)) \
                    or (isinstance(receiver, ast.Attribute)
                        and _is_rng_name(receiver.attr)):
                return SEED, ()
        parts, witness = [], ()
        for arg in list(expr.args) + [kw.value for kw in expr.keywords]:
            taint, chain = self.taint(arg, finfo, depth + 1)
            parts.append(taint)
            witness = witness or chain
        if SEED in parts:
            return SEED, witness
        return OPAQUE, witness

    def _param_taint(self, finfo: FunctionInfo,
                     param: str) -> tuple[str, tuple[str, ...]]:
        """Join of the argument taints over all known call sites."""
        key = (finfo.fid, param)
        if key in self._param_memo:
            return self._param_memo[key]
        if key in self._param_stack:
            return OPAQUE, ()  # recursion: refuse to assume
        self._param_stack.add(key)
        try:
            sites = [s for s in self.model.callers.get(finfo.fid, ())
                     if s.kind == "call" and s.node is not None]
            if not sites:
                result = (OPAQUE, ())
                self._param_memo[key] = result
                return result
            worst, worst_witness = SEED, ()
            for site in sites:
                arg = self._argument_for(finfo, param, site.node)
                if arg is _MISSING:
                    default = finfo.default_for(param)
                    if default is None:
                        taint, chain = OPAQUE, ()
                    else:
                        taint, chain = self.taint(default, finfo, 1)
                elif arg is _UNTRACKABLE:
                    taint, chain = OPAQUE, ()
                else:
                    caller = self.model.functions[site.caller]
                    taint, chain = self.taint(arg, caller, 1)
                    chain = chain or (caller.fid,)
                if taint != SEED:
                    worst = taint
                    worst_witness = chain
                    break
            result = (worst, worst_witness)
            self._param_memo[key] = result
            return result
        finally:
            self._param_stack.discard(key)

    def _argument_for(self, finfo: FunctionInfo, param: str,
                      call: ast.Call):
        """The expression a call site passes for ``param``."""
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
            if kw.arg is None:
                return _UNTRACKABLE  # **kwargs forwarding
        positional = finfo.param_names()
        if param in positional:
            index = positional.index(param)
            if any(isinstance(a, ast.Starred) for a in call.args):
                return _UNTRACKABLE
            if index < len(call.args):
                return call.args[index]
        return _MISSING


_MISSING = object()
_UNTRACKABLE = object()


def seed_argument(call: ast.Call) -> ast.expr | None:
    """The seed expression of an RNG constructor call, if supplied."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Starred):
            return first.value
        return first
    for kw in call.keywords:
        if kw.arg in _SEED_KEYWORDS or kw.arg is None:
            return kw.value
    return None


def check_rng_provenance(model: ProjectModel,
                         exempt_modules: tuple[str, ...],
                         seed_roots: tuple[str, ...] = ()) -> list[Finding]:
    """Run FLOW001 over every RNG construction site in the model.

    ``seed_roots`` names project-internal functions (by
    ``module:qualname`` id) whose first argument is judged exactly
    like an RNG constructor's seed.
    """
    tainter = _Tainter(model)
    root_ids = frozenset(seed_roots)
    findings: list[Finding] = []
    for fid in sorted(model.functions):
        finfo = model.functions[fid]
        if any(finfo.module == mod.rstrip(".")
               or finfo.module.startswith(mod)
               for mod in exempt_modules):
            continue
        # A root's own body is not judged against itself: the seed
        # parameter it receives is exactly what its callers answer for.
        if finfo.fid in root_ids:
            continue
        for site in finfo.sites:
            if site.kind != "call" or site.node is None:
                continue
            if site.primitive in RNG_CONSTRUCTORS:
                target = site.primitive
            elif site.callee is not None and site.callee in root_ids:
                target = site.callee
            else:
                continue
            seed_expr = seed_argument(site.node)
            if seed_expr is None:
                continue  # DET006's case: no argument at all
            taint, chain = tainter.taint(seed_expr, finfo)
            if taint == SEED:
                continue
            ctx = model.modules[finfo.module].ctx
            witness = tuple(chain) + (finfo.fid,) \
                if chain and chain[-1] != finfo.fid else (finfo.fid,)
            try:
                spelled = ast.unparse(seed_expr)
            except Exception:  # pragma: no cover - unparse is total
                spelled = "<expr>"
            if taint == CONST:
                message = (f"`{target}({spelled})` is seeded "
                           f"with a fixed constant: deterministic, but "
                           f"independent of the deployment seed — "
                           f"reseeding the experiment will not reseed "
                           f"this RNG. Derive the seed from params.seed")
            else:
                message = (f"`{target}({spelled})` seed is not "
                           f"derived from the deployment seed (no "
                           f"dataflow from a seed parameter, .seed "
                           f"attribute, or parent-RNG draw reaches it)")
            findings.append(Finding(
                path=finfo.path, line=site.lineno, col=site.col,
                code=CODE, severity=Severity.ERROR, message=message,
                source=ctx.line_text(site.lineno), witness=witness))
    return findings
