"""reprolint — AST-based invariant checker for the simulator codebase.

The platform's headline claim is that every experiment and chaos
campaign is byte-identical under a fixed seed. ``repro.lint`` makes that
contract machine-checked: a small rule engine walks every module's AST
and flags constructs that silently break reproducibility (wall-clock
reads, global-RNG calls, entropy sources, hash-based ordering), violate
event-loop discipline (blocking sleeps, thread/async scheduling that
bypasses the shared :class:`~repro.netsim.clock.EventLoop`), or break
API discipline (experiment entry points without an explicit seed).

Usage::

    python -m repro.lint src tests            # human-readable output
    python -m repro.lint src --json           # machine-readable output
    python -m repro.lint --list-rules         # rule catalogue

Findings can be suppressed inline with ``# reprolint: disable=CODE``
(same line), ``# reprolint: disable-next=CODE`` (next line), or
``# reprolint: disable-file=CODE`` (whole file), and grandfathered via a
checked-in baseline file (``reprolint.baseline.json``). The shipped
baseline is empty: the tree is clean.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint
from .core import Finding, ModuleContext, Rule, Severity
from .engine import LintResult, lint_paths, lint_source
from .flow import FLOW_CODES, FLOW_RULES, FlowConfig
from .flow import analyze as analyze_flow
from .rules import ALL_RULES, rule_by_code

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FLOW_CODES",
    "FLOW_RULES",
    "Finding",
    "FlowConfig",
    "LintResult",
    "ModuleContext",
    "Rule",
    "Severity",
    "analyze_flow",
    "fingerprint",
    "lint_paths",
    "lint_source",
    "rule_by_code",
]
