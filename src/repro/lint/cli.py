"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean, 1 = non-baselined findings (or stale baseline
entries under ``--strict-baseline``), 2 = usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .core import Severity
from .engine import LintResult, lint_paths
from .flow import FLOW_RULES
from .rules import ALL_RULES

#: v2: findings carry a ``witness`` call-chain list (empty for
#: per-file rules) and FLOW codes may appear.
JSON_SCHEMA_VERSION = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: determinism / event-loop / seed-hygiene "
                    "invariant checker for the simulator codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")
    parser.add_argument("--flow", action="store_true",
                        help="also run the whole-program flow analyses "
                             "(FLOW001 RNG provenance, FLOW002 hot-path "
                             "purity, FLOW003 parallel safety) over the "
                             "project call graph")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help=f"baseline file (default: "
                             f"./{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="also fail when baseline entries are "
                             "stale (fixed but still recorded)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES + FLOW_RULES:
        scopes = ", ".join(rule.scopes)
        lines.append(f"{rule.code}  {rule.name}  "
                     f"[{rule.severity.value}]  (scopes: {scopes})")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def _to_json(result: LintResult) -> dict[str, object]:
    findings = result.all_new_findings
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "counts": {
            "error": sum(1 for f in findings
                         if f.severity is Severity.ERROR),
            "warning": sum(1 for f in findings
                           if f.severity is Severity.WARNING),
            "advice": sum(1 for f in findings
                          if f.severity is Severity.ADVICE),
            "grandfathered": len(result.grandfathered),
            "stale_baseline": len(result.stale_baseline),
        },
        "findings": [f.to_dict() for f in findings],
        "stale_baseline": list(result.stale_baseline),
    }


def _render_human(result: LintResult) -> str:
    lines = [f.render() for f in result.all_new_findings]
    for fp in result.stale_baseline:
        lines.append(f"baseline: entry {fp} no longer matches any "
                     f"finding; prune it with --update-baseline")
    advisory = sum(1 for f in result.all_new_findings
                   if f.severity is Severity.ADVICE)
    blocking = len(result.all_new_findings) - advisory
    summary = (f"reprolint: {result.files_checked} files, "
               f"{blocking} finding(s)")
    if advisory:
        summary += f", {advisory} advisory"
    if result.grandfathered:
        summary += f", {len(result.grandfathered)} grandfathered"
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entry(ies)"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = ALL_RULES
    flow_enabled = args.flow
    flow_codes: set[str] | None = None
    if args.select:
        wanted = {code.strip() for code in args.select.split(",")
                  if code.strip()}
        rules = tuple(r for r in ALL_RULES if r.code in wanted)
        flow_codes = {r.code for r in FLOW_RULES} & wanted
        unknown = wanted - {r.code for r in rules} - flow_codes
        if unknown:
            print(f"reprolint: unknown rule code(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        # Selecting a FLOW code implies flow mode; --flow with a
        # selection that names no FLOW code runs none of them.
        flow_enabled = args.flow or bool(flow_codes)

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
            if not baseline_path.exists() and not args.update_baseline:
                print(f"reprolint: baseline file not found: "
                      f"{baseline_path}", file=sys.stderr)
                return 2
        else:
            default = Path(DEFAULT_BASELINE_NAME)
            if default.exists() or args.update_baseline:
                baseline_path = default

    if args.update_baseline:
        result = lint_paths(args.paths, rules=rules, baseline=None,
                            flow=flow_enabled, flow_codes=flow_codes)
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(result.findings).save(target)
        print(f"reprolint: wrote {len(result.findings)} finding(s) to "
              f"{target}", file=sys.stderr)
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"reprolint: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    result = lint_paths(args.paths, rules=rules, baseline=baseline,
                        flow=flow_enabled, flow_codes=flow_codes)

    if args.json:
        print(json.dumps(_to_json(result), indent=2))
    else:
        print(_render_human(result))

    failed = not result.clean
    if args.strict_baseline and result.stale_baseline:
        failed = True
    return 1 if failed else 0
