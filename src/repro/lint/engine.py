"""File discovery and rule execution.

The engine parses each file once, builds one :class:`ModuleContext`,
runs every in-scope rule over it, drops inline-suppressed findings, and
(optionally) splits the remainder against a baseline. Paths are
normalized relative to a root (default: the current working directory)
so baselines and scope patterns are machine-independent.

With ``flow=True`` the same parsed contexts feed the whole-program
analyses in :mod:`repro.lint.flow` (call-graph reachability, RNG seed
provenance, parallel safety); their findings merge into the normal
stream so suppressions, the baseline, and output modes apply
uniformly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .core import Finding, ModuleContext, Rule, Severity
from .rules import ALL_RULES
from .suppress import parse_suppressions

_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".venv", "venv",
    "build", "dist", ".mypy_cache", ".ruff_cache",
    # Flow-analysis fixture packages: deliberately violating test data,
    # linted only by the flow unit tests that load them explicitly.
    "fixtures_flow",
})


@dataclass(slots=True)
class LintResult:
    """Outcome of a lint run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def all_new_findings(self) -> list[Finding]:
        return sorted(self.findings + self.parse_errors,
                      key=Finding.sort_key)

    @property
    def clean(self) -> bool:
        """No blocking findings: advisory-severity findings (PERF001)
        are reported but never fail the run."""
        if self.parse_errors:
            return False
        return all(f.severity is Severity.ADVICE for f in self.findings)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
    # Deterministic order, no duplicates even with overlapping roots.
    return sorted(set(files))


def _logical_path(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(root.resolve())
        return rel.as_posix()
    except ValueError:
        return resolved.as_posix()


def _rules_findings(ctx: ModuleContext, suppressions,
                    rules: tuple[type[Rule], ...],
                    respect_scopes: bool) -> list[Finding]:
    """Run the per-file rules over one parsed module."""
    findings: list[Finding] = []
    for rule_cls in rules:
        if respect_scopes and not rule_cls.applies_to(ctx.path):
            continue
        for finding in rule_cls(ctx).run():
            if not suppressions.is_suppressed(finding.code, finding.line):
                findings.append(finding)
    return findings


def lint_source(source: str, path: str = "src/repro/<string>.py",
                rules: tuple[type[Rule], ...] = ALL_RULES,
                respect_scopes: bool = True) -> list[Finding]:
    """Lint a source string; the unit-test entry point.

    ``path`` determines which scoped rules fire; the default pretends
    the snippet lives in ``src/repro`` so every DET rule applies.
    """
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1, code="E999",
                        severity=Rule.severity,
                        message=f"syntax error: {exc.msg}")]
    ctx = ModuleContext(path=path, tree=tree, source_lines=source_lines)
    suppressions = parse_suppressions(source_lines)
    findings = _rules_findings(ctx, suppressions, rules, respect_scopes)
    return sorted(findings, key=Finding.sort_key)


def lint_paths(paths: list[str | Path],
               rules: tuple[type[Rule], ...] = ALL_RULES,
               baseline: Baseline | None = None,
               root: str | Path | None = None,
               flow: bool = False,
               flow_codes: set[str] | None = None,
               flow_config=None) -> LintResult:
    """Lint every ``*.py`` under ``paths`` and apply the baseline.

    ``flow=True`` additionally runs the whole-program analyses
    (restricted to ``flow_codes`` when given) over the same parsed
    ASTs; ``flow_config`` overrides the project defaults (used by the
    fixture tests).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    collected: list[Finding] = []
    contexts: list[ModuleContext] = []
    for file_path in iter_python_files(paths):
        logical = _logical_path(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append(Finding(
                path=logical, line=1, col=1, code="E902",
                severity=Rule.severity,
                message=f"cannot read file: {exc}"))
            continue
        result.files_checked += 1
        source_lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=logical)
        except SyntaxError as exc:
            result.parse_errors.append(Finding(
                path=logical, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, code="E999",
                severity=Rule.severity,
                message=f"syntax error: {exc.msg}"))
            continue
        ctx = ModuleContext(path=logical, tree=tree,
                            source_lines=source_lines)
        contexts.append(ctx)
        suppressions = parse_suppressions(source_lines)
        collected.extend(_rules_findings(ctx, suppressions, rules, True))
    if flow:
        from .flow import DEFAULT_CONFIG, analyze
        collected.extend(analyze(
            contexts, config=flow_config or DEFAULT_CONFIG,
            codes=flow_codes))
    if baseline is not None:
        result.findings, result.grandfathered = baseline.filter(collected)
        result.stale_baseline = baseline.stale_entries(collected)
    else:
        result.findings = collected
    result.findings.sort(key=Finding.sort_key)
    return result
