"""Grandfathered-finding baseline.

A baseline lets the linter land with hard-failing CI even when the tree
still has known violations: existing findings are recorded once, new
code is held to the full bar, and the recorded debt burns down
monotonically (stale entries are reported so the file shrinks as fixes
land). The shipped baseline is empty — kept checked in so the
workflow (``--update-baseline``) is exercised and documented.

Entries match on a fingerprint of ``(path, code, stripped source
line)`` rather than on line numbers, so unrelated edits above a
grandfathered finding do not invalidate it. Identical findings are
counted: if a baselined line is duplicated, the new copy is reported.

Whole-program (FLOW) findings additionally fingerprint their
call-chain witness — qualified function names, never line numbers — so
moving an unrelated function (or the whole offending function within
its file) does not churn the baseline, while rewiring the call chain
that justifies the finding does.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "reprolint.baseline.json"


def fingerprint(finding: Finding) -> str:
    """Stable identity for a finding, independent of line numbers.

    The witness chain (function ids, no line numbers) participates for
    flow findings; per-file findings keep their historical fingerprint.
    """
    key = f"{finding.path}::{finding.code}::{finding.source}"
    if finding.witness:
        key += f"::{'->'.join(finding.witness)}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    counts: Counter = field(default_factory=Counter)
    #: Human-readable context per fingerprint, persisted for reviewers.
    details: dict[str, dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        version = raw.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}")
        baseline = cls()
        for entry in raw.get("findings", []):
            fp = entry["fingerprint"]
            baseline.counts[fp] += int(entry.get("count", 1))
            baseline.details[fp] = entry
        return baseline

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = fingerprint(finding)
            baseline.counts[fp] += 1
            baseline.details[fp] = {
                "fingerprint": fp,
                "path": finding.path,
                "code": finding.code,
                "line": finding.line,
                "message": finding.message,
                "source": finding.source,
            }
            if finding.witness:
                baseline.details[fp]["witness"] = list(finding.witness)
        return baseline

    def save(self, path: str | Path) -> None:
        findings = []
        for fp in sorted(self.counts):
            entry = dict(self.details.get(fp, {"fingerprint": fp}))
            entry["fingerprint"] = fp
            entry["count"] = self.counts[fp]
            findings.append(entry)
        payload = {"version": BASELINE_VERSION, "findings": findings}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    def filter(self, findings: list[Finding]
               ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, grandfathered)."""
        budget = Counter(self.counts)
        new: list[Finding] = []
        matched: list[Finding] = []
        for finding in findings:
            fp = fingerprint(finding)
            if budget[fp] > 0:
                budget[fp] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        return new, matched

    def stale_entries(self, findings: list[Finding]) -> list[str]:
        """Fingerprints recorded in the baseline but no longer found."""
        seen = Counter(fingerprint(f) for f in findings)
        return sorted(fp for fp, count in self.counts.items()
                      if seen[fp] < count)
