"""Inline suppression comments.

Three forms, mirroring common linter conventions:

* ``# reprolint: disable=DET001`` — suppress on this line;
* ``# reprolint: disable-next=DET001,LOOP001`` — suppress on the next
  non-blank line (for lines too long to carry a trailing comment);
* ``# reprolint: disable-file=DET001`` — suppress everywhere in the
  file (reserve for generated or vendored modules).

``disable=all`` suppresses every rule. Suppressions are deliberately
line-scoped rather than block-scoped: each exemption must sit next to
the code it excuses, which keeps them reviewable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-next|-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

ALL = "all"


@dataclass(slots=True)
class SuppressionMap:
    """Which rule codes are suppressed on which lines."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if ALL in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        return bool(codes) and (ALL in codes or code in codes)


def parse_suppressions(source_lines: list[str]) -> SuppressionMap:
    smap = SuppressionMap()
    pending_next: set[str] = set()
    for lineno, text in enumerate(source_lines, start=1):
        stripped = text.strip()
        if pending_next and stripped:
            smap.by_line.setdefault(lineno, set()).update(pending_next)
            pending_next = set()
        for match in _DIRECTIVE.finditer(text):
            kind = match.group(1)
            codes = {c.strip() for c in match.group(2).split(",")
                     if c.strip()}
            if kind == "disable":
                smap.by_line.setdefault(lineno, set()).update(codes)
            elif kind == "disable-next":
                pending_next |= codes
            else:  # disable-file
                smap.file_wide |= codes
    return smap
