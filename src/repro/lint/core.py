"""Rule-engine primitives: findings, module context, the visitor base.

A :class:`Rule` is an :class:`ast.NodeVisitor` with metadata (code,
severity, scopes). The engine instantiates one rule object per module
per rule class, hands it a :class:`ModuleContext`, and collects
:class:`Finding` objects. Name resolution for calls like
``np.random.seed(...)`` goes through :class:`ImportTable`, which maps
local aliases back to fully qualified dotted paths so rules match on
semantics rather than on surface spelling.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """Finding severity. ``WARNING`` and ``ERROR`` fail the lint run;
    ``ADVICE`` findings are printed but never affect the exit code —
    they exist for hygiene rules (PERF001) whose violations need a
    human judgment call, not a build break."""

    ADVICE = "advice"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    severity: Severity
    message: str
    #: Stripped text of the offending source line (baseline fingerprint
    #: input; keeps baselines stable across pure line-number drift).
    source: str = ""
    #: Call-chain witness for whole-program (FLOW) findings: qualified
    #: function ids from the analysis entry point down to the function
    #: containing the offending call. Empty for per-file findings.
    witness: tuple[str, ...] = ()

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
            "witness": list(self.witness),
        }

    def render(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity.value}] {self.message}")
        if self.witness:
            text += f"\n    via: {' -> '.join(self.witness)}"
        return text


class ImportTable:
    """Alias -> fully qualified name map built from a module's imports.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from datetime
    import datetime as dt`` maps ``dt`` to ``datetime.datetime``.
    Relative imports are recorded with a leading ``.`` so they can never
    collide with the absolute stdlib/third-party names rules ban.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{prefix}.{alias.name}"

    def is_imported(self, name: str) -> bool:
        return name in self._aliases

    def resolve(self, node: ast.expr) -> str | None:
        """Return the dotted path for a Name/Attribute chain, if known.

        Chains rooted in anything other than an imported module alias
        (``self``, locals, call results) resolve to ``None`` — rules
        only ever match code whose provenance is statically certain.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule needs to know about the module under analysis."""

    path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)
    imports: ImportTable = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportTable(self.tree)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].strip()
        return ""


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set the class attributes and implement ``visit_*``
    methods, calling :meth:`report` for each violation. ``scopes``
    restricts a rule to path fragments (matched against ``/``-joined
    paths), so e.g. event-loop rules only fire inside simulator
    packages and API rules only inside ``experiments/``.
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Path fragments this rule applies to; a file matches when any
    #: fragment appears at a path-component boundary.
    scopes: tuple[str, ...] = ("src/repro/",)

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        norm = "/" + path.replace("\\", "/").lstrip("/")
        return any(f"/{scope.lstrip('/')}" in norm for scope in cls.scopes)

    def report(self, node: ast.AST, message: str,
               severity: Severity | None = None) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            path=self.ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            severity=severity or self.severity,
            message=message,
            source=self.ctx.line_text(line),
        ))

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings
