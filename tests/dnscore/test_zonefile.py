"""Tests for the master-file parser and serializer."""

import pytest

from repro.dnscore import (
    A,
    LookupStatus,
    MX,
    RType,
    ZoneFileError,
    name,
    parse_ttl,
    parse_zone_text,
    serialize_zone,
)

BASIC = """\
$ORIGIN ex.com.
$TTL 1h
@   IN SOA ns1.ex.com. admin.ex.com. (
        2020010101 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@   IN NS ns1
@   IN NS ns2.other.net.
www 300 IN A 192.0.2.1
    IN A 192.0.2.2
ftp IN CNAME www
@   IN MX 10 mail
mail IN A 192.0.2.25
txt IN TXT "hello world" "second string"
"""


class TestParsing:
    def test_basic_zone(self):
        z = parse_zone_text(BASIC)
        z.validate()
        assert z.origin == name("ex.com")
        assert z.serial == 2020010101

    def test_relative_names_resolved(self):
        z = parse_zone_text(BASIC)
        ns = z.get_rrset(name("ex.com"), RType.NS)
        targets = {r.rdata.target for r in ns}
        assert name("ns1.ex.com") in targets
        assert name("ns2.other.net") in targets

    def test_owner_repetition(self):
        z = parse_zone_text(BASIC)
        rrset = z.get_rrset(name("www.ex.com"), RType.A)
        assert len(rrset) == 2

    def test_ttl_inheritance_and_override(self):
        z = parse_zone_text(BASIC)
        assert z.get_rrset(name("www.ex.com"), RType.A).ttl == 300
        assert z.get_rrset(name("mail.ex.com"), RType.A).ttl == 3600

    def test_mx_relative_exchange(self):
        z = parse_zone_text(BASIC)
        mx = z.get_rrset(name("ex.com"), RType.MX)
        assert mx.rdatas() == [MX(10, name("mail.ex.com"))]

    def test_txt_quoted_strings(self):
        z = parse_zone_text(BASIC)
        txt = z.get_rrset(name("txt.ex.com"), RType.TXT)
        assert txt.rdatas()[0].strings == (b"hello world", b"second string")

    def test_at_sign_is_origin(self):
        z = parse_zone_text(BASIC)
        assert z.get_rrset(name("ex.com"), RType.SOA) is not None

    def test_origin_argument(self):
        z = parse_zone_text(
            "@ IN SOA ns.a.com. h.a.com. 1 2 3 4 5\n@ IN NS ns.a.com.\n",
            origin="a.com")
        assert z.origin == name("a.com")

    def test_origin_directive_overrides(self):
        text = "$ORIGIN b.net.\n@ IN SOA ns.b.net. h.b.net. 1 2 3 4 5\n" \
               "@ IN NS ns.b.net.\n"
        z = parse_zone_text(text, origin="a.com")
        assert z.origin == name("b.net")

    def test_wildcard_record(self):
        text = BASIC + "* IN A 198.51.100.1\n"
        z = parse_zone_text(text)
        assert z.lookup(name("rand.ex.com"), RType.A).status == \
            LookupStatus.SUCCESS


class TestErrors:
    def test_no_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("www IN A 1.2.3.4\n")

    def test_unknown_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$BOGUS x\n" + BASIC)

    def test_unbalanced_paren(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN a.com.\n@ IN SOA ns. h. ( 1 2 3 4 5\n")

    def test_missing_type(self):
        with pytest.raises(ZoneFileError) as exc:
            parse_zone_text("$ORIGIN a.com.\nwww 300 IN\n")
        assert exc.value.line == 2

    def test_bad_rdata(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN a.com.\nwww IN A not-an-ip\n")

    def test_empty_file(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("; just a comment\n")

    def test_first_record_without_owner(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN a.com.\n    IN A 1.2.3.4\n")


class TestSerialization:
    def test_roundtrip(self):
        z = parse_zone_text(BASIC)
        z2 = parse_zone_text(serialize_zone(z))
        assert z2.origin == z.origin
        assert z2.rrset_count() == z.rrset_count()
        for rrset in z.iter_rrsets():
            other = z2.get_rrset(rrset.name, rrset.rtype)
            assert other is not None
            assert sorted(map(repr, other.rdatas())) == \
                sorted(map(repr, rrset.rdatas()))


class TestTTLParsing:
    @pytest.mark.parametrize("text,expected", [
        ("300", 300),
        ("1h", 3600),
        ("1h30m", 5400),
        ("2d", 172800),
        ("1w", 604800),
        ("90s", 90),
    ])
    def test_units(self, text, expected):
        assert parse_ttl(text) == expected

    def test_bad_ttl(self):
        with pytest.raises(ZoneFileError):
            parse_ttl("abc")
        with pytest.raises(ZoneFileError):
            parse_ttl("1h30")
