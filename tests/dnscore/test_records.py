"""Tests for ResourceRecord/RRset semantics."""

import pytest

from repro.dnscore import (
    A,
    Question,
    RClass,
    RType,
    ResourceRecord,
    RRset,
    make_rrset,
    name,
)


def record(owner="r.example", addr="10.0.0.1", ttl=300):
    return ResourceRecord(name(owner), RType.A, RClass.IN, ttl, A(addr))


class TestResourceRecord:
    def test_ttl_bounds(self):
        with pytest.raises(ValueError):
            record(ttl=-1)
        with pytest.raises(ValueError):
            record(ttl=2**31)
        assert record(ttl=2**31 - 1).ttl == 2**31 - 1

    def test_with_ttl_copies(self):
        original = record(ttl=300)
        aged = original.with_ttl(120)
        assert aged.ttl == 120
        assert original.ttl == 300
        assert aged.rdata == original.rdata

    def test_to_text(self):
        assert record().to_text() == "r.example. 300 IN A 10.0.0.1"


class TestRRset:
    def test_dedup_identical_rdata(self):
        rrset = RRset(name("r.example"), RType.A)
        rrset.add(record())
        rrset.add(record())
        assert len(rrset) == 1

    def test_mismatched_ttls_normalized_to_min(self):
        rrset = RRset(name("r.example"), RType.A)
        rrset.add(record(ttl=300))
        rrset.add(record(addr="10.0.0.2", ttl=60))
        assert rrset.ttl == 60
        assert all(r.ttl == 60 for r in rrset)

    def test_wrong_owner_rejected(self):
        rrset = RRset(name("r.example"), RType.A)
        with pytest.raises(ValueError):
            rrset.add(record(owner="other.example"))

    def test_wrong_type_rejected(self):
        rrset = RRset(name("r.example"), RType.AAAA)
        with pytest.raises(ValueError):
            rrset.add(record())

    def test_with_ttl_deep_copy(self):
        rrset = make_rrset(name("r.example"), RType.A, 300,
                           [A("10.0.0.1"), A("10.0.0.2")])
        aged = rrset.with_ttl(10)
        assert aged.ttl == 10
        assert all(r.ttl == 10 for r in aged)
        assert rrset.ttl == 300

    def test_rdatas_accessor(self):
        rrset = make_rrset(name("r.example"), RType.A, 300,
                           [A("10.0.0.1"), A("10.0.0.2")])
        assert rrset.rdatas() == [A("10.0.0.1"), A("10.0.0.2")]

    def test_key(self):
        rrset = RRset(name("r.example"), RType.A)
        assert rrset.key == (name("r.example"), RType.A, RClass.IN)


class TestQuestion:
    def test_str(self):
        q = Question(name("q.example"), RType.MX)
        assert str(q) == "q.example. IN MX"

    def test_equality_and_hash(self):
        a = Question(name("q.example"), RType.A)
        b = Question(name("Q.EXAMPLE"), RType.A)
        assert a == b
        assert hash(a) == hash(b)
