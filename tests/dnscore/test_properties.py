"""Property-based tests on the DNS substrate's core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore import (
    A,
    Message,
    Name,
    Question,
    RClass,
    RType,
    ResourceRecord,
    WireReader,
    WireWriter,
    make_query,
    name,
)
from repro.dnscore.transfer import serial_gt

label_chars = string.ascii_lowercase + string.digits + "-"
labels = st.text(label_chars, min_size=1, max_size=12).map(str.encode)
names = st.lists(labels, min_size=0, max_size=6).map(
    lambda ls: Name(tuple(ls)))


@given(names)
def test_name_text_roundtrip(n):
    assert name(str(n)) == n


@given(names)
@settings(max_examples=200)
def test_name_wire_roundtrip(n):
    w = WireWriter()
    w.write_name(n)
    assert WireReader(w.getvalue()).read_name() == n


@given(st.lists(names, min_size=1, max_size=8))
def test_many_names_compressed_roundtrip(ns):
    w = WireWriter()
    for n in ns:
        w.write_name(n)
    r = WireReader(w.getvalue())
    assert [r.read_name() for _ in ns] == ns


@given(names, names)
def test_subdomain_antisymmetry(a, b):
    if a.is_subdomain_of(b) and b.is_subdomain_of(a):
        assert a == b


@given(names)
def test_parent_chain_terminates_at_root(n):
    chain = list(n.ancestors())
    assert chain[-1].is_root
    assert len(chain) == len(n) + 1


@given(names, names)
def test_canonical_order_total(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(st.integers(0, 0xFFFF), names,
       st.sampled_from([RType.A, RType.AAAA, RType.NS, RType.TXT]))
def test_query_wire_roundtrip(msg_id, qname, qtype):
    q = make_query(msg_id, qname, qtype)
    m = Message.from_wire(q.to_wire())
    assert m.msg_id == msg_id
    assert m.question == Question(qname, qtype)


@given(names, st.integers(0, 2**31 - 1),
       st.lists(st.integers(0, 2**32 - 1).map(
           lambda v: A(f"{(v >> 24) & 255}.{(v >> 16) & 255}."
                       f"{(v >> 8) & 255}.{v & 255}")),
           min_size=1, max_size=6, unique=True))
@settings(max_examples=150)
def test_response_records_roundtrip(owner, ttl, rdatas):
    msg = Message()
    msg.questions.append(Question(owner, RType.A))
    for rdata in rdatas:
        msg.answers.append(ResourceRecord(owner, RType.A, RClass.IN, ttl,
                                          rdata))
    parsed = Message.from_wire(msg.to_wire())
    assert parsed.answers == msg.answers


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_serial_gt_antisymmetric(a, b):
    assert not (serial_gt(a, b) and serial_gt(b, a))


@given(st.integers(0, 2**32 - 1), st.integers(1, 2**31 - 1))
def test_serial_increment_is_greater(base, step):
    incremented = (base + step) % 2**32
    assert serial_gt(incremented, base)


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=300)
def test_from_wire_never_raises_foreign_exceptions(data):
    """Malformed packets must fail with DNSError, never anything else."""
    from repro.dnscore import DNSError
    try:
        Message.from_wire(data)
    except DNSError:
        pass


@given(st.integers(0, 0xFFFF), names,
       st.sampled_from([RType.A, RType.NS]), st.binary(max_size=8))
@settings(max_examples=150)
def test_truncating_valid_wire_is_safe(msg_id, qname, qtype, junk):
    """Any prefix of a valid message either parses or raises DNSError."""
    from repro.dnscore import DNSError
    wire = make_query(msg_id, qname, qtype).to_wire()
    for cut in range(0, len(wire), 3):
        try:
            Message.from_wire(wire[:cut])
        except DNSError:
            pass
