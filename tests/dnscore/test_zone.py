"""Tests for zone semantics: cuts, wildcards, CNAME chains, negatives."""

import pytest

from repro.dnscore import (
    A,
    CNAME,
    LookupStatus,
    NS,
    RType,
    SOA,
    Zone,
    ZoneError,
    make_rrset,
    make_zone,
    name,
)


@pytest.fixture
def zone():
    z = make_zone(
        name("ex.com"),
        SOA(name("ns1.ex.com"), name("admin.ex.com"), 1, 7200, 3600,
            1209600, 300),
        [name("a.ns.akam.net"), name("b.ns.akam.net")],
    )
    z.add_rrset(make_rrset(name("www.ex.com"), RType.A, 300,
                           [A("192.0.2.1"), A("192.0.2.2")]))
    z.add_rrset(make_rrset(name("alias.ex.com"), RType.CNAME, 300,
                           [CNAME(name("www.ex.com"))]))
    z.add_rrset(make_rrset(name("chain.ex.com"), RType.CNAME, 300,
                           [CNAME(name("alias.ex.com"))]))
    z.add_rrset(make_rrset(name("out.ex.com"), RType.CNAME, 300,
                           [CNAME(name("elsewhere.net"))]))
    z.add_rrset(make_rrset(name("*.wild.ex.com"), RType.A, 60,
                           [A("198.51.100.9")]))
    z.add_rrset(make_rrset(name("sub.ex.com"), RType.NS, 3600,
                           [NS(name("ns.sub.ex.com"))]))
    z.add_rrset(make_rrset(name("ns.sub.ex.com"), RType.A, 3600,
                           [A("203.0.113.1")]))
    z.add_rrset(make_rrset(name("deep.empty.ex.com"), RType.A, 300,
                           [A("192.0.2.77")]))
    return z


class TestLookupCore:
    def test_exact_match(self, zone):
        result = zone.lookup(name("www.ex.com"), RType.A)
        assert result.status == LookupStatus.SUCCESS
        assert len(result.rrset) == 2

    def test_nodata(self, zone):
        result = zone.lookup(name("www.ex.com"), RType.AAAA)
        assert result.status == LookupStatus.NODATA
        assert result.soa is not None

    def test_nxdomain(self, zone):
        result = zone.lookup(name("nope.ex.com"), RType.A)
        assert result.status == LookupStatus.NXDOMAIN
        assert result.soa is not None

    def test_not_in_zone(self, zone):
        result = zone.lookup(name("other.org"), RType.A)
        assert result.status == LookupStatus.NOT_IN_ZONE

    def test_name_below_leaf_is_nxdomain(self, zone):
        result = zone.lookup(name("a.www.ex.com"), RType.A)
        assert result.status == LookupStatus.NXDOMAIN

    def test_empty_nonterminal_is_nodata(self, zone):
        # "empty.ex.com" exists only because deep.empty.ex.com does.
        result = zone.lookup(name("empty.ex.com"), RType.A)
        assert result.status == LookupStatus.NODATA

    def test_apex_soa(self, zone):
        result = zone.lookup(name("ex.com"), RType.SOA)
        assert result.status == LookupStatus.SUCCESS


class TestDelegation:
    def test_below_cut_is_referral(self, zone):
        result = zone.lookup(name("x.sub.ex.com"), RType.A)
        assert result.status == LookupStatus.DELEGATION
        assert result.delegation.name == name("sub.ex.com")

    def test_at_cut_non_ns_is_referral(self, zone):
        result = zone.lookup(name("sub.ex.com"), RType.A)
        assert result.status == LookupStatus.DELEGATION

    def test_at_cut_ns_query_answers(self, zone):
        result = zone.lookup(name("sub.ex.com"), RType.NS)
        assert result.status == LookupStatus.SUCCESS

    def test_glue_included(self, zone):
        result = zone.lookup(name("x.sub.ex.com"), RType.A)
        glue_names = {g.name for g in result.glue}
        assert name("ns.sub.ex.com") in glue_names

    def test_apex_ns_is_answer_not_referral(self, zone):
        result = zone.lookup(name("ex.com"), RType.NS)
        assert result.status == LookupStatus.SUCCESS


class TestWildcard:
    def test_wildcard_synthesis(self, zone):
        result = zone.lookup(name("anything.wild.ex.com"), RType.A)
        assert result.status == LookupStatus.SUCCESS
        assert result.wildcard
        assert result.rrset.name == name("anything.wild.ex.com")

    def test_wildcard_multiple_levels(self, zone):
        result = zone.lookup(name("a.b.c.wild.ex.com"), RType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_wildcard_nodata_for_other_type(self, zone):
        result = zone.lookup(name("anything.wild.ex.com"), RType.MX)
        assert result.status == LookupStatus.NODATA
        assert result.wildcard

    def test_exact_match_beats_wildcard(self, zone):
        zone.add_rrset(make_rrset(name("fixed.wild.ex.com"), RType.A, 60,
                                  [A("192.0.2.200")]))
        result = zone.lookup(name("fixed.wild.ex.com"), RType.A)
        assert not result.wildcard
        assert result.rrset.rdatas() == [A("192.0.2.200")]

    def test_wildcard_itself_queryable(self, zone):
        result = zone.lookup(name("*.wild.ex.com"), RType.A)
        assert result.status == LookupStatus.SUCCESS


class TestCNAME:
    def test_cname_returned_for_other_types(self, zone):
        result = zone.lookup(name("alias.ex.com"), RType.A)
        assert result.status == LookupStatus.CNAME

    def test_cname_query_returns_cname(self, zone):
        result = zone.lookup(name("alias.ex.com"), RType.CNAME)
        assert result.status == LookupStatus.SUCCESS

    def test_chain_following(self, zone):
        chain, final = zone.cname_chain(name("chain.ex.com"), RType.A)
        assert [c.name for c in chain] == [name("chain.ex.com"),
                                           name("alias.ex.com")]
        assert final.status == LookupStatus.SUCCESS

    def test_chain_out_of_zone(self, zone):
        chain, final = zone.cname_chain(name("out.ex.com"), RType.A)
        assert len(chain) == 1
        assert final.status == LookupStatus.NOT_IN_ZONE

    def test_chain_loop_bounded(self):
        z = make_zone(name("loop.com"),
                      SOA(name("ns.loop.com"), name("a.loop.com"), 1, 2, 3,
                          4, 5), [name("ns.loop.com")])
        z.add_rrset(make_rrset(name("a.loop.com"), RType.CNAME, 60,
                               [CNAME(name("b.loop.com"))]))
        z.add_rrset(make_rrset(name("b.loop.com"), RType.CNAME, 60,
                               [CNAME(name("a.loop.com"))]))
        chain, final = z.cname_chain(name("a.loop.com"), RType.A, max_depth=8)
        assert len(chain) == 8
        assert final.status == LookupStatus.CNAME


class TestAuthoring:
    def test_cname_conflict_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rrset(make_rrset(name("www.ex.com"), RType.CNAME, 60,
                                      [CNAME(name("x.ex.com"))]))
        with pytest.raises(ZoneError):
            zone.add_rrset(make_rrset(name("alias.ex.com"), RType.A, 60,
                                      [A("10.0.0.1")]))

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rrset(make_rrset(name("other.org"), RType.A, 60,
                                      [A("10.0.0.1")]))

    def test_soa_not_at_apex_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rrset(make_rrset(
                name("sub2.ex.com"), RType.SOA, 60,
                [SOA(name("a"), name("b"), 1, 2, 3, 4, 5)]))

    def test_validate_requires_soa_and_ns(self):
        z = Zone(name("bare.com"))
        with pytest.raises(ZoneError):
            z.validate()

    def test_remove_rrset(self, zone):
        assert zone.remove_rrset(name("www.ex.com"), RType.A)
        assert zone.lookup(name("www.ex.com"), RType.A).status == \
            LookupStatus.NXDOMAIN
        assert not zone.remove_rrset(name("www.ex.com"), RType.A)

    def test_remove_cut_restores_authority(self, zone):
        zone.remove_rrset(name("sub.ex.com"), RType.NS)
        result = zone.lookup(name("x.sub.ex.com"), RType.A)
        assert result.status == LookupStatus.NXDOMAIN

    def test_serial(self, zone):
        assert zone.serial == 1
