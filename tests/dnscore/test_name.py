"""Tests for domain name handling."""

import pytest

from repro.dnscore import Name, NameError_, ROOT, name


class TestParsing:
    def test_simple_name(self):
        n = name("www.example.com")
        assert n.labels == (b"www", b"example", b"com")

    def test_trailing_dot_optional(self):
        assert name("example.com.") == name("example.com")

    def test_root(self):
        assert name(".") is ROOT
        assert name("") is ROOT
        assert ROOT.is_root

    def test_case_folding(self):
        assert name("WWW.Example.COM") == name("www.example.com")
        assert hash(name("A.b")) == hash(name("a.B"))

    def test_escaped_dot(self):
        n = name(r"a\.b.example.com")
        assert n.labels[0] == b"a.b"
        assert len(n) == 3

    def test_decimal_escape(self):
        n = name(r"a\065b.com")
        assert n.labels[0] == b"aab"  # \065 = 'A', case-folded

    def test_decimal_escape_out_of_range(self):
        with pytest.raises(NameError_):
            name(r"a\999.com")

    def test_dangling_escape(self):
        with pytest.raises(NameError_):
            name("abc\\")

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            name("a..b.com")

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            name("a" * 64 + ".com")

    def test_label_max_length_ok(self):
        n = name("a" * 63 + ".com")
        assert len(n.labels[0]) == 63

    def test_name_too_long(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            name(".".join([label] * 5))


class TestStructure:
    def test_parent(self):
        assert name("www.example.com").parent() == name("example.com")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_ancestors(self):
        chain = list(name("a.b.com").ancestors())
        assert chain == [name("a.b.com"), name("b.com"), name("com"), ROOT]

    def test_subdomain(self):
        assert name("a.b.example.com").is_subdomain_of(name("example.com"))
        assert name("example.com").is_subdomain_of(name("example.com"))
        assert not name("example.com").is_subdomain_of(name("a.example.com"))
        assert not name("badexample.com").is_subdomain_of(name("example.com"))

    def test_everything_under_root(self):
        assert name("x.y").is_subdomain_of(ROOT)

    def test_relativize(self):
        assert name("a.b.ex.com").relativize(name("ex.com")) == (b"a", b"b")
        with pytest.raises(NameError_):
            name("a.other.com").relativize(name("ex.com"))

    def test_concatenate(self):
        assert name("www").concatenate(name("ex.com")) == name("www.ex.com")

    def test_prepend(self):
        assert name("ex.com").prepend("api") == name("api.ex.com")

    def test_wildcard(self):
        w = name("*.ex.com")
        assert w.is_wildcard
        assert not name("ex.com").is_wildcard
        assert name("a.ex.com").wildcard_sibling() == w

    def test_wire_length(self):
        assert ROOT.wire_length() == 1
        assert name("ab.cd").wire_length() == 1 + 3 + 3


class TestOrderingAndDisplay:
    def test_canonical_ordering(self):
        # RFC 4034: order by reversed labels.
        names = [name("z.com"), name("a.org"), name("a.com"), name("com")]
        ordered = sorted(names)
        assert ordered == [name("com"), name("a.com"), name("z.com"),
                           name("a.org")]

    def test_str_roundtrip(self):
        for text in ["example.com.", "a.b.c.d.", "."]:
            assert str(name(text)) == text

    def test_str_escapes_special(self):
        n = Name((b"a.b", b"com"))
        assert str(n) == "a\\.b.com."
        assert name(str(n)) == n

    def test_str_escapes_nonprintable(self):
        n = Name((b"\x07", b"com"))
        assert "\\007" in str(n)
        assert name(str(n)) == n

    def test_immutable(self):
        n = name("ex.com")
        with pytest.raises(AttributeError):
            n._labels = ()
