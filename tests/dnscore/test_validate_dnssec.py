"""Tests for the validator's structural DNSSEC rules.

These rules live in ``dnscore`` and are deliberately non-cryptographic:
key-tag membership, lifetime arithmetic, and NSEC cycle topology. The
zones under test are produced by the real signer so the happy path is
the genuine article.
"""

from repro.dnscore import (
    A,
    RType,
    SOA,
    ValidationLimits,
    make_rrset,
    make_zone,
    name,
    validate_update,
)
from repro.dnscore.rdata import NSEC
from repro.dnssec.keys import KeyRing
from repro.dnssec.sign import SigningPolicy, ZoneSigner

ORIGIN = name("ex.com")


def soa(serial):
    return SOA(name("ns1.ex.com"), name("admin.ex.com"), serial,
               7200, 3600, 1209600, 300)


def unsigned_zone(serial=5, extra=4):
    z = make_zone(ORIGIN, soa(serial),
                  [name("a.ns.akam.net"), name("b.ns.akam.net")])
    for i in range(extra):
        z.add_rrset(make_rrset(name(f"h{i}.ex.com"), RType.A, 300,
                               [A(f"192.0.2.{i + 1}")]))
    return z


def signed_zone(serial=5, now=0.0, validity=86_400.0, seed=3):
    z = unsigned_zone(serial)
    keys = KeyRing(seed, ORIGIN)
    ZoneSigner(keys, SigningPolicy(sig_validity=validity,
                                   inception_skew=0.0)).sign(z, now)
    return z, keys


class TestSignedHappyPath:
    def test_freshly_signed_zone_is_clean(self):
        zone, _ = signed_zone()
        report = validate_update(zone, limits=ValidationLimits(now=100.0))
        assert not report.fatal
        assert report.issues == []

    def test_unsigned_zone_unaffected_by_clock(self):
        report = validate_update(unsigned_zone(),
                                 limits=ValidationLimits(now=1e9))
        assert not report.fatal
        assert report.issues == []


class TestSignatureExpiry:
    def test_expired_rrsig_is_fatal_with_clock(self):
        zone, _ = signed_zone(validity=15.0)
        report = validate_update(zone, limits=ValidationLimits(now=100.0))
        assert "signature-expired" in report.fatal_rules()
        assert "expired" in report.describe()

    def test_expiry_rule_needs_a_clock(self):
        # Default limits carry no ``now``: the machine-side guard has
        # no business judging lifetimes it cannot observe drift-free.
        zone, _ = signed_zone(validity=15.0)
        report = validate_update(zone)
        assert "signature-expired" not in report.fatal_rules()
        assert not report.fatal

    def test_boundary_is_inclusive(self):
        zone, _ = signed_zone(now=0.0, validity=50.0)
        at_expiry = validate_update(zone, limits=ValidationLimits(now=50.0))
        assert "signature-expired" in at_expiry.fatal_rules()
        just_before = validate_update(zone,
                                      limits=ValidationLimits(now=49.0))
        assert not just_before.fatal


class TestKeyMismatch:
    def test_rrsigs_from_unpublished_keys_are_fatal(self):
        zone, _ = signed_zone(seed=3)
        # Swap the apex DNSKEY RRset for a different key ring's: every
        # RRSIG now names tags the zone does not publish.
        rogue = KeyRing(4, ORIGIN)
        zone.add_rrset(rogue.dnskey_rrset(3600))
        report = validate_update(zone, limits=ValidationLimits(now=10.0))
        assert "rrsig-key-mismatch" in report.fatal_rules()

    def test_mismatch_reported_without_clock_too(self):
        zone, _ = signed_zone(seed=3)
        zone.add_rrset(KeyRing(4, ORIGIN).dnskey_rrset(3600))
        report = validate_update(zone)
        assert "rrsig-key-mismatch" in report.fatal_rules()

    def test_duplicate_issues_are_collapsed(self):
        zone, _ = signed_zone(seed=3)
        zone.add_rrset(KeyRing(4, ORIGIN).dnskey_rrset(3600))
        report = validate_update(zone)
        mismatches = [i for i in report.issues
                      if i.rule == "rrsig-key-mismatch"]
        # One issue per (owner, tag) pair, not one per RRSIG record:
        # the apex yields two (ZSK tag on SOA/NS/NSEC, KSK tag on
        # DNSKEY), every other name exactly one.
        pairs = {i.message.split(", which")[0] for i in mismatches}
        assert len(mismatches) == len(pairs)
        apex_issues = [i for i in mismatches
                       if i.message.startswith("RRSIG at ex.com.")]
        assert len(apex_issues) == 2


class TestNsecChain:
    def test_intact_chain_passes(self):
        zone, _ = signed_zone()
        report = validate_update(zone)
        assert "broken-nsec-chain" not in report.fatal_rules()

    def test_dangling_next_pointer_is_fatal(self):
        zone, _ = signed_zone()
        nsec = zone.get_rrset(name("h0.ex.com"), RType.NSEC)
        zone.add_rrset(make_rrset(
            name("h0.ex.com"), RType.NSEC, nsec.ttl,
            [NSEC(name("ghost.ex.com"), nsec.records[0].rdata.types)]))
        report = validate_update(zone)
        assert "broken-nsec-chain" in report.fatal_rules()
        assert "owns no NSEC" in report.describe()

    def test_missing_link_is_fatal(self):
        zone, _ = signed_zone()
        zone.remove_rrset(name("h1.ex.com"), RType.NSEC)
        report = validate_update(zone)
        assert "broken-nsec-chain" in report.fatal_rules()

    def test_split_cycle_is_fatal(self):
        zone, _ = signed_zone()
        # Rewire h0 -> h1 -> h0 into a private loop, detaching them
        # from the apex cycle.
        for owner, nxt in ((name("h0.ex.com"), name("h1.ex.com")),
                           (name("h1.ex.com"), name("h0.ex.com"))):
            nsec = zone.get_rrset(owner, RType.NSEC)
            zone.add_rrset(make_rrset(
                owner, RType.NSEC, nsec.ttl,
                [NSEC(nxt, nsec.records[0].rdata.types)]))
        # Also break the apex-side chain so the walk cannot absorb them.
        apex = zone.get_rrset(ORIGIN, RType.NSEC)
        zone.add_rrset(make_rrset(
            ORIGIN, RType.NSEC, apex.ttl,
            [NSEC(name("h2.ex.com"), apex.records[0].rdata.types)]))
        report = validate_update(zone)
        assert "broken-nsec-chain" in report.fatal_rules()
