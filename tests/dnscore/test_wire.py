"""Tests for wire-format primitives and name compression."""

import pytest

from repro.dnscore import (
    CompressionError,
    TruncatedMessageError,
    WireReader,
    WireWriter,
    name,
)


class TestWriter:
    def test_integers(self):
        w = WireWriter()
        w.write_u8(0xAB)
        w.write_u16(0x1234)
        w.write_u32(0xDEADBEEF)
        assert w.getvalue() == bytes.fromhex("ab1234deadbeef")

    def test_name_uncompressed(self):
        w = WireWriter(compress=False)
        w.write_name(name("ab.cd"))
        w.write_name(name("ab.cd"))
        data = w.getvalue()
        assert data == b"\x02ab\x02cd\x00" * 2

    def test_name_compression_pointer(self):
        w = WireWriter()
        w.write_name(name("www.example.com"))
        first_len = len(w)
        w.write_name(name("example.com"))
        # Second name should be a 2-byte pointer to offset 4.
        assert len(w) == first_len + 2
        data = w.getvalue()
        assert data[first_len] & 0xC0 == 0xC0

    def test_suffix_compression(self):
        w = WireWriter()
        w.write_name(name("example.com"))
        w.write_name(name("www.example.com"))
        # www + pointer: 1 + 3 + 2 bytes.
        assert len(w.getvalue()) == 13 + 6

    def test_root_is_single_zero(self):
        w = WireWriter()
        w.write_name(name("."))
        assert w.getvalue() == b"\x00"

    def test_patch_u16(self):
        w = WireWriter()
        w.write_u16(0)
        w.write_u8(7)
        w.patch_u16(0, 0xBEEF)
        assert w.getvalue() == b"\xbe\xef\x07"


class TestReader:
    def test_roundtrip_compressed(self):
        w = WireWriter()
        names = [name("www.example.com"), name("example.com"),
                 name("mail.example.com"), name(".")]
        for n in names:
            w.write_name(n)
        r = WireReader(w.getvalue())
        assert [r.read_name() for _ in names] == names
        assert r.remaining == 0

    def test_truncated_label(self):
        r = WireReader(b"\x05ab")
        with pytest.raises(TruncatedMessageError):
            r.read_name()

    def test_truncated_integer(self):
        r = WireReader(b"\x01")
        with pytest.raises(TruncatedMessageError):
            r.read_u16()

    def test_forward_pointer_rejected(self):
        # Pointer at offset 0 pointing to offset 5 (forward).
        r = WireReader(b"\xc0\x05" + b"\x00" * 6)
        with pytest.raises(CompressionError):
            r.read_name()

    def test_self_pointer_rejected(self):
        r = WireReader(b"\xc0\x00")
        with pytest.raises(CompressionError):
            r.read_name()

    def test_reserved_label_type_rejected(self):
        r = WireReader(b"\x80\x01")
        with pytest.raises(CompressionError):
            r.read_name()

    def test_pointer_resolution_position(self):
        # name, then a pointer; cursor must land after the pointer.
        w = WireWriter()
        w.write_name(name("a.b"))
        w.write_name(name("a.b"))
        w.write_u8(0x77)
        r = WireReader(w.getvalue())
        r.read_name()
        r.read_name()
        assert r.read_u8() == 0x77

    def test_seek_bounds(self):
        r = WireReader(b"abc")
        r.seek(3)
        with pytest.raises(TruncatedMessageError):
            r.seek(4)
