"""Tests for DNS message encoding, flags, truncation, and EDNS."""

import pytest

from repro.dnscore import (
    A,
    ClientSubnetOption,
    EDNSOptions,
    Flags,
    Message,
    Opcode,
    Question,
    RClass,
    RCode,
    ResourceRecord,
    RType,
    WireFormatError,
    make_query,
    make_response,
    make_rrset,
    name,
)


def a_record(owner, addr, ttl=300):
    return ResourceRecord(name(owner), RType.A, RClass.IN, ttl, A(addr))


class TestFlags:
    def test_roundtrip_all_bits(self):
        f = Flags(qr=True, opcode=Opcode.QUERY, aa=True, tc=True, rd=True,
                  ra=True, rcode=RCode.NXDOMAIN)
        assert Flags.from_wire(f.to_wire()) == f

    def test_defaults_are_zero(self):
        assert Flags().to_wire() == 0

    def test_unknown_opcode_rejected(self):
        with pytest.raises(WireFormatError):
            Flags.from_wire(0x7800)  # opcode 15


class TestMessageRoundtrip:
    def test_query(self):
        q = make_query(0x1234, name("www.ex.com"), RType.A)
        m = Message.from_wire(q.to_wire())
        assert m.msg_id == 0x1234
        assert m.question == Question(name("www.ex.com"), RType.A)
        assert not m.flags.qr

    def test_full_response(self):
        q = make_query(7, name("www.ex.com"), RType.A)
        resp = make_response(q)
        resp.answers.append(a_record("www.ex.com", "192.0.2.1"))
        resp.authority.append(ResourceRecord(
            name("ex.com"), RType.NS, RClass.IN, 86400,
            __import__("repro.dnscore", fromlist=["NS"]).NS(name("ns1.ex.com"))))
        resp.additional.append(a_record("ns1.ex.com", "192.0.2.53"))
        m = Message.from_wire(resp.to_wire())
        assert m.flags.qr and m.flags.aa
        assert len(m.answers) == 1
        assert len(m.authority) == 1
        assert len(m.additional) == 1
        assert m.answers[0].rdata == A("192.0.2.1")

    def test_compression_shrinks_message(self):
        q = make_query(7, name("a.very.long.domain.example.com"), RType.A)
        resp = make_response(q)
        for i in range(5):
            resp.answers.append(
                a_record("a.very.long.domain.example.com", f"192.0.2.{i}"))
        compressed = resp.to_wire(compress=True)
        uncompressed = resp.to_wire(compress=False)
        assert len(compressed) < len(uncompressed)
        assert Message.from_wire(compressed).answers == \
            Message.from_wire(uncompressed).answers

    def test_edns_roundtrip(self):
        ecs = ClientSubnetOption.for_client("198.51.100.7")
        q = make_query(9, name("ex.com"), RType.A,
                       edns=EDNSOptions(payload_size=1400, client_subnet=ecs))
        m = Message.from_wire(q.to_wire())
        assert m.edns is not None
        assert m.edns.payload_size == 1400
        assert m.edns.client_subnet.address == "198.51.100.0"
        assert m.edns.client_subnet.source_prefix_length == 24

    def test_duplicate_opt_rejected(self):
        q = make_query(9, name("ex.com"), RType.A, edns=EDNSOptions())
        wire = bytearray(q.to_wire())
        # Bump arcount to 2 and duplicate the OPT record bytes.
        opt = q.to_wire()[-11:]
        wire[10:12] = (2).to_bytes(2, "big")
        with pytest.raises(WireFormatError):
            Message.from_wire(bytes(wire) + opt)


class TestTruncation:
    def test_tc_set_when_over_limit(self):
        q = make_query(1, name("ex.com"), RType.TXT)
        resp = make_response(q)
        rrset = make_rrset(name("ex.com"), RType.A, 60,
                           [A(f"10.0.{i // 256}.{i % 256}") for i in range(100)])
        resp.add_rrset("answers", rrset)
        wire = resp.to_wire(max_size=512)
        assert len(wire) <= 512
        m = Message.from_wire(wire)
        assert m.flags.tc
        assert len(m.answers) < 100

    def test_no_tc_when_fits(self):
        q = make_query(1, name("ex.com"), RType.A)
        resp = make_response(q)
        resp.answers.append(a_record("ex.com", "10.0.0.1"))
        m = Message.from_wire(resp.to_wire(max_size=512))
        assert not m.flags.tc


class TestHelpers:
    def test_make_response_echoes(self):
        q = make_query(42, name("x.com"), RType.AAAA, rd=True,
                       edns=EDNSOptions(payload_size=1232))
        r = make_response(q, RCode.NXDOMAIN)
        assert r.msg_id == 42
        assert r.flags.qr and r.flags.rd
        assert r.rcode == RCode.NXDOMAIN
        assert r.questions == q.questions
        assert r.edns.payload_size == 1232

    def test_question_property_requires_one(self):
        m = Message()
        with pytest.raises(WireFormatError):
            _ = m.question

    def test_answer_rrsets_grouping(self):
        m = Message()
        m.answers.append(a_record("a.com", "10.0.0.1"))
        m.answers.append(a_record("a.com", "10.0.0.2"))
        m.answers.append(a_record("b.com", "10.0.0.3"))
        groups = m.answer_rrsets()
        assert len(groups) == 2
        assert len(groups[0]) == 2


class TestTTLClamping:
    def test_high_bit_ttl_treated_as_zero(self):
        # RFC 2181 section 8: craft a record with TTL >= 2^31 on the wire.
        q = make_query(1, name("t.example"), RType.A)
        resp = make_response(q)
        resp.answers.append(a_record("t.example", "10.0.0.1", ttl=300))
        wire = bytearray(resp.to_wire(compress=False))
        # Locate the answer TTL: question ends after qname+4; the answer
        # starts with the same name, then type(2)+class(2), then TTL(4).
        qname_len = name("t.example").wire_length()
        ttl_offset = 12 + qname_len + 4 + qname_len + 4
        wire[ttl_offset:ttl_offset + 4] = (2**31 + 5).to_bytes(4, "big")
        parsed = Message.from_wire(bytes(wire))
        assert parsed.answers[0].ttl == 0
