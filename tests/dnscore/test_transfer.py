"""Tests for AXFR-style zone transfer and serial arithmetic."""

import pytest

from repro.dnscore import (
    A,
    RType,
    TransferError,
    axfr_response_stream,
    make_axfr_query,
    make_rrset,
    name,
    needs_transfer,
    parse_zone_text,
    serial_gt,
    transfer_zone,
    zone_from_axfr,
)
from repro.dnscore.rdata import SOA


def build_zone(n_hosts=25):
    z = parse_zone_text(
        "$ORIGIN big.com.\n"
        "@ IN SOA ns1.big.com. admin.big.com. 77 7200 3600 1209600 300\n"
        "@ IN NS ns1.big.com.\n")
    for i in range(n_hosts):
        z.add_rrset(make_rrset(name(f"h{i}.big.com"), RType.A, 300,
                               [A(f"10.1.{i // 256}.{i % 256}")]))
    return z


class TestAXFR:
    def test_roundtrip(self):
        z = build_zone()
        z2 = transfer_zone(z)
        assert z2.rrset_count() == z.rrset_count()
        assert z2.serial == 77

    def test_stream_framed_by_soa(self):
        z = build_zone()
        stream = list(axfr_response_stream(z, make_axfr_query(1, z.origin)))
        records = [r for m in stream for r in m.answers]
        assert records[0].rtype == RType.SOA
        assert records[-1].rtype == RType.SOA
        assert records[0].rdata == records[-1].rdata

    def test_multi_message_stream(self):
        z = build_zone(250)
        stream = list(axfr_response_stream(z, make_axfr_query(1, z.origin),
                                           max_records_per_message=50))
        assert len(stream) > 1
        z2 = zone_from_axfr(z.origin, stream)
        assert z2.rrset_count() == z.rrset_count()

    def test_wrong_zone_refused(self):
        z = build_zone()
        with pytest.raises(TransferError):
            list(axfr_response_stream(z, make_axfr_query(1, name("no.com"))))

    def test_non_axfr_question_refused(self):
        from repro.dnscore import make_query
        z = build_zone()
        with pytest.raises(TransferError):
            list(axfr_response_stream(z, make_query(1, z.origin, RType.SOA)))

    def test_unframed_stream_rejected(self):
        z = build_zone()
        stream = list(axfr_response_stream(z, make_axfr_query(1, z.origin)))
        stream[-1].answers.pop()  # strip trailing SOA
        with pytest.raises(TransferError):
            zone_from_axfr(z.origin, stream)

    def test_empty_stream_rejected(self):
        with pytest.raises(TransferError):
            zone_from_axfr(name("big.com"), [])


class TestSerials:
    def test_basic_ordering(self):
        assert serial_gt(2, 1)
        assert not serial_gt(1, 2)
        assert not serial_gt(5, 5)

    def test_wraparound(self):
        # RFC 1982: 0 is "greater" than a serial just below 2^32.
        assert serial_gt(0, 2**32 - 1)
        assert not serial_gt(2**32 - 1, 0)

    def test_needs_transfer(self):
        assert needs_transfer(None, 1)
        assert needs_transfer(10, 11)
        assert not needs_transfer(11, 11)
        assert not needs_transfer(12, 11)
        assert needs_transfer(2**32 - 5, 3)
