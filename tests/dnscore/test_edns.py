"""Unit tests for EDNS0 and the Client Subnet option."""

import pytest

from repro.dnscore import (
    ClientSubnetOption,
    EDNSOptions,
    Message,
    RType,
    WireFormatError,
    make_query,
    name,
)


class TestClientSubnet:
    def test_for_client_ipv4_defaults(self):
        ecs = ClientSubnetOption.for_client("198.51.100.77")
        assert ecs.family == 1
        assert ecs.source_prefix_length == 24
        assert ecs.address == "198.51.100.0"
        assert str(ecs.network()) == "198.51.100.0/24"

    def test_for_client_ipv6_defaults(self):
        ecs = ClientSubnetOption.for_client("2001:db8:1234:5678::9")
        assert ecs.family == 2
        assert ecs.source_prefix_length == 56
        assert str(ecs.network()) == "2001:db8:1234:5600::/56"

    def test_custom_prefix_length(self):
        ecs = ClientSubnetOption.for_client("10.20.30.40",
                                            prefix_length=16)
        assert ecs.address == "10.20.0.0"

    def test_wire_roundtrip_ipv4(self):
        ecs = ClientSubnetOption.for_client("203.0.113.7")
        assert ClientSubnetOption.from_wire(ecs.to_wire()) == ecs

    def test_wire_roundtrip_ipv6(self):
        ecs = ClientSubnetOption.for_client("2001:db8::1")
        parsed = ClientSubnetOption.from_wire(ecs.to_wire())
        assert parsed.family == 2
        assert parsed.source_prefix_length == 56

    def test_wire_truncates_to_prefix_octets(self):
        # /24 IPv4 needs exactly 3 address octets on the wire.
        ecs = ClientSubnetOption.for_client("198.51.100.77")
        assert len(ecs.to_wire()) == 4 + 3

    def test_unknown_family_rejected(self):
        bad = bytes.fromhex("0003" "18" "00" "c63364")
        with pytest.raises(WireFormatError):
            ClientSubnetOption.from_wire(bad)


class TestEDNSOptions:
    def test_defaults(self):
        opts = EDNSOptions()
        assert opts.payload_size == 4096
        assert not opts.dnssec_ok

    def test_full_roundtrip_through_message(self):
        opts = EDNSOptions(payload_size=1232, dnssec_ok=True,
                           client_subnet=ClientSubnetOption.for_client(
                               "192.0.2.1"))
        query = make_query(5, name("e.example"), RType.A, edns=opts)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns is not None
        assert parsed.edns.payload_size == 1232
        assert parsed.edns.dnssec_ok
        assert parsed.edns.client_subnet.address == "192.0.2.0"

    def test_unknown_options_preserved(self):
        opts = EDNSOptions(unknown_options=[(65001, b"\x01\x02")])
        query = make_query(6, name("e.example"), RType.A, edns=opts)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns.unknown_options == [(65001, b"\x01\x02")]

    def test_no_edns_means_none(self):
        query = make_query(7, name("e.example"), RType.A)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns is None
