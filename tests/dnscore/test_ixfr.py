"""Tests for incremental zone transfer (IXFR-style)."""

import pytest

from repro.dnscore import (
    A,
    RType,
    TransferError,
    name,
    parse_zone_text,
)
from repro.dnscore.ixfr import (
    ZoneHistory,
    apply_diff,
    apply_ixfr_stream,
    diff_zones,
    ixfr_response_stream,
    make_ixfr_query,
)

BASE = """\
$ORIGIN inc.example.
$TTL 300
@ IN SOA ns1.inc.example. admin.inc.example. {serial} 7200 3600 1209600 300
@ IN NS ns1.inc.example.
www IN A 10.0.0.1
mail IN A 10.0.0.2
"""


def version(serial, extra=""):
    return parse_zone_text(BASE.format(serial=serial) + extra)


class TestDiff:
    def test_addition_detected(self):
        old = version(1)
        new = version(2, "api IN A 10.0.0.3\n")
        diff = diff_zones(old, new)
        assert diff.old_serial == 1 and diff.new_serial == 2
        assert [str(r.name) for r in diff.additions] == ["api.inc.example."]
        assert not diff.deletions

    def test_deletion_detected(self):
        old = version(1, "api IN A 10.0.0.3\n")
        new = version(2)
        diff = diff_zones(old, new)
        assert [str(r.name) for r in diff.deletions] == ["api.inc.example."]

    def test_replacement_is_delete_plus_add(self):
        old = version(1)
        new = parse_zone_text(BASE.format(serial=2).replace(
            "www IN A 10.0.0.1", "www IN A 10.0.0.9"))
        diff = diff_zones(old, new)
        assert len(diff.deletions) == 1 and len(diff.additions) == 1
        assert diff.change_count == 2

    def test_soa_excluded_from_body(self):
        diff = diff_zones(version(1), version(2))
        assert all(r.rtype != RType.SOA
                   for r in diff.deletions + diff.additions)

    def test_origin_mismatch_rejected(self):
        other = parse_zone_text(
            "$ORIGIN other.example.\n"
            "@ IN SOA ns. h. 1 2 3 4 5\n@ IN NS ns.other.example.\n")
        with pytest.raises(TransferError):
            diff_zones(version(1), other)


class TestApplyDiff:
    def test_roundtrip(self):
        old = version(1)
        new = version(2, "api IN A 10.0.0.3\n")
        rebuilt = apply_diff(old, diff_zones(old, new))
        assert rebuilt.serial == 2
        assert rebuilt.get_rrset(name("api.inc.example"), RType.A) \
            is not None
        assert rebuilt.rrset_count() == new.rrset_count()

    def test_serial_precondition(self):
        old = version(1)
        new = version(2)
        diff = diff_zones(old, new)
        with pytest.raises(TransferError):
            apply_diff(new, diff)  # zone already at serial 2


class TestHistory:
    def test_records_versions_and_diffs(self):
        history = ZoneHistory()
        history.record(version(1))
        history.record(version(2, "api IN A 10.0.0.3\n"))
        history.record(version(3, "api IN A 10.0.0.3\nx IN A 10.0.0.4\n"))
        diffs = history.diffs_since(name("inc.example"), 1)
        assert [d.new_serial for d in diffs] == [2, 3]
        assert history.diffs_since(name("inc.example"), 99) is None

    def test_same_serial_ignored(self):
        history = ZoneHistory()
        history.record(version(1))
        history.record(version(1))
        assert len(history._versions[name("inc.example")]) == 1

    def test_regressing_serial_rejected(self):
        history = ZoneHistory()
        history.record(version(5))
        with pytest.raises(TransferError):
            history.record(version(3))

    def test_retention_limit(self):
        history = ZoneHistory(max_versions=3)
        for serial in range(1, 8):
            history.record(version(serial))
        assert history.diffs_since(name("inc.example"), 1) is None
        assert history.diffs_since(name("inc.example"), 5) is not None


class TestEndToEnd:
    def make_history(self):
        history = ZoneHistory()
        history.record(version(1))
        history.record(version(2, "api IN A 10.0.0.3\n"))
        history.record(version(3, "api IN A 10.0.0.3\n"
                                  "cdn IN A 10.0.0.5\n"))
        return history

    def test_incremental_transfer(self):
        history = self.make_history()
        client_zone = version(1)
        query = make_ixfr_query(7, name("inc.example"), 1)
        stream = ixfr_response_stream(history, query)
        updated = apply_ixfr_stream(client_zone, stream)
        assert updated.serial == 3
        assert updated.get_rrset(name("cdn.inc.example"), RType.A) \
            is not None
        # The diff stream is much smaller than a full transfer.
        assert sum(len(m.answers) for m in stream) < \
            history.latest(name("inc.example")).rrset_count() + 6

    def test_up_to_date_client(self):
        history = self.make_history()
        query = make_ixfr_query(8, name("inc.example"), 3)
        stream = ixfr_response_stream(history, query)
        assert len(stream) == 1 and len(stream[0].answers) == 1
        unchanged = apply_ixfr_stream(version(3, "api IN A 10.0.0.3\n"
                                                 "cdn IN A 10.0.0.5\n"),
                                      stream)
        assert unchanged.serial == 3

    def test_fallback_to_full_transfer(self):
        history = ZoneHistory(max_versions=2)
        for serial in range(1, 6):
            history.record(version(serial, "api IN A 10.0.0.3\n"
                           if serial > 1 else ""))
        # Client is far behind the retained window.
        query = make_ixfr_query(9, name("inc.example"), 1)
        stream = ixfr_response_stream(history, query)
        updated = apply_ixfr_stream(version(1), stream)
        assert updated.serial == 5

    def test_multi_step_apply_each_diff(self):
        history = self.make_history()
        query = make_ixfr_query(10, name("inc.example"), 2)
        stream = ixfr_response_stream(history, query)
        updated = apply_ixfr_stream(version(2, "api IN A 10.0.0.3\n"),
                                    stream)
        assert updated.serial == 3
