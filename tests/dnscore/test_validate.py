"""Tests for semantic zone-update validation (the rollout gate)."""

import pytest

from repro.dnscore import (
    A,
    NS,
    RType,
    SOA,
    ValidationLimits,
    Zone,
    ZoneUpdate,
    content_digest,
    make_rrset,
    make_zone,
    name,
    validate_update,
)


def soa(serial):
    return SOA(name("ns1.ex.com"), name("admin.ex.com"), serial,
               7200, 3600, 1209600, 300)


def good_zone(serial=5, extra=4):
    z = make_zone(name("ex.com"), soa(serial),
                  [name("a.ns.akam.net"), name("b.ns.akam.net")])
    for i in range(extra):
        z.add_rrset(make_rrset(name(f"h{i}.ex.com"), RType.A, 300,
                               [A(f"192.0.2.{i + 1}")]))
    return z


class TestApexRules:
    def test_clean_zone_passes(self):
        report = validate_update(good_zone())
        assert not report.fatal
        assert report.issues == []
        assert "clean" in report.describe()

    def test_missing_soa_is_fatal(self):
        z = Zone(name("ex.com"))
        z.add_rrset(make_rrset(name("ex.com"), RType.NS, 300,
                               [NS(name("a.ns.akam.net"))]))
        report = validate_update(z)
        assert report.fatal
        assert "missing-soa" in report.fatal_rules()

    def test_missing_apex_ns_is_fatal(self):
        z = Zone(name("ex.com"))
        z.add_rrset(make_rrset(name("ex.com"), RType.SOA, 300, [soa(1)]))
        report = validate_update(z)
        assert report.fatal_rules() == ["missing-apex-ns"]


class TestSerialRules:
    def test_first_install_skips_serial_checks(self):
        assert not validate_update(good_zone(serial=1)).fatal

    def test_advancing_serial_passes(self):
        report = validate_update(good_zone(serial=6),
                                 previous=good_zone(serial=5))
        assert report.issues == []

    def test_serial_regression_is_fatal(self):
        report = validate_update(good_zone(serial=4),
                                 previous=good_zone(serial=5))
        assert report.fatal_rules() == ["serial-regression"]
        assert "went backwards" in report.describe()

    def test_rfc1982_wraparound_is_forward(self):
        report = validate_update(good_zone(serial=1),
                                 previous=good_zone(serial=0xFFFFFFFF))
        assert not report.fatal

    def test_same_serial_changed_content_is_fatal(self):
        changed = good_zone(serial=5)
        changed.add_rrset(make_rrset(name("new.ex.com"), RType.A, 300,
                                     [A("198.51.100.1")]))
        report = validate_update(changed, previous=good_zone(serial=5))
        assert report.fatal_rules() == ["serial-regression"]
        assert "never refresh" in report.describe()

    def test_same_serial_same_content_is_advisory_noop(self):
        report = validate_update(good_zone(), previous=good_zone())
        assert not report.fatal
        assert report.rules() == ["no-op-republish"]


class TestRecordLoss:
    def test_collapsed_zone_is_fatal(self):
        report = validate_update(good_zone(serial=6, extra=0),
                                 previous=good_zone(serial=5, extra=8))
        assert "record-loss" in report.fatal_rules()

    def test_tiny_previous_zone_may_shrink(self):
        report = validate_update(good_zone(serial=6, extra=0),
                                 previous=good_zone(serial=5, extra=1))
        assert not report.fatal

    def test_floor_is_tunable(self):
        limits = ValidationLimits(record_loss_floor=0.95,
                                  min_previous_rrsets=2)
        report = validate_update(good_zone(serial=6, extra=2),
                                 previous=good_zone(serial=5, extra=4),
                                 limits=limits)
        assert "record-loss" in report.fatal_rules()


class TestDelegationRules:
    def test_dangling_apex_ns_is_advisory(self):
        z = make_zone(name("ex.com"), soa(1), [name("ns1.ex.com")])
        report = validate_update(z)
        assert not report.fatal
        assert report.rules() == ["dangling-ns"]

    def test_glued_in_zone_ns_is_clean(self):
        z = make_zone(name("ex.com"), soa(1), [name("ns1.ex.com")])
        z.add_rrset(make_rrset(name("ns1.ex.com"), RType.A, 300,
                               [A("192.0.2.53")]))
        assert validate_update(z).issues == []

    def test_out_of_zone_ns_needs_no_glue(self):
        assert validate_update(good_zone()).issues == []

    def test_glueless_in_subtree_delegation_is_fatal(self):
        z = good_zone()
        z.add_rrset(make_rrset(name("sub.ex.com"), RType.NS, 300,
                               [NS(name("ns.sub.ex.com"))]))
        report = validate_update(z)
        assert "broken-delegation" in report.fatal_rules()
        assert "dangling-ns" in report.rules()

    def test_glued_delegation_is_reachable(self):
        z = good_zone()
        z.add_rrset(make_rrset(name("sub.ex.com"), RType.NS, 300,
                               [NS(name("ns.sub.ex.com"))]))
        z.add_rrset(make_rrset(name("ns.sub.ex.com"), RType.A, 300,
                               [A("203.0.113.1")]))
        assert validate_update(z).issues == []

    def test_delegation_to_outside_nameserver_is_fine(self):
        z = good_zone()
        z.add_rrset(make_rrset(name("sub.ex.com"), RType.NS, 300,
                               [NS(name("ns.elsewhere.net"))]))
        assert validate_update(z).issues == []


class TestDigestAndPayload:
    def test_digest_is_insertion_order_independent(self):
        a = make_zone(name("ex.com"), soa(1), [name("a.ns.akam.net")])
        a.add_rrset(make_rrset(name("x.ex.com"), RType.A, 300,
                               [A("192.0.2.1")]))
        a.add_rrset(make_rrset(name("y.ex.com"), RType.A, 300,
                               [A("192.0.2.2")]))
        b = make_zone(name("ex.com"), soa(1), [name("a.ns.akam.net")])
        b.add_rrset(make_rrset(name("y.ex.com"), RType.A, 300,
                               [A("192.0.2.2")]))
        b.add_rrset(make_rrset(name("x.ex.com"), RType.A, 300,
                               [A("192.0.2.1")]))
        assert content_digest(a) == content_digest(b)

    def test_digest_sees_content_changes(self):
        changed = good_zone()
        changed.add_rrset(make_rrset(name("new.ex.com"), RType.A, 300,
                                     [A("198.51.100.1")]))
        assert content_digest(changed) != content_digest(good_zone())

    def test_zone_update_payload_defaults(self):
        update = ZoneUpdate(good_zone())
        assert update.rollback is False
        assert update.release_id == 0
        with pytest.raises(AttributeError):
            update.rollback = True
