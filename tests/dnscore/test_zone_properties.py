"""Property-based tests on zone serialization and transfer invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore import (
    A,
    RType,
    SOA,
    TXT,
    make_rrset,
    make_zone,
    name,
    parse_zone_text,
    serialize_zone,
    transfer_zone,
)
from repro.dnscore.ixfr import apply_diff, diff_zones

label = st.text(string.ascii_lowercase + string.digits, min_size=1,
                max_size=8)
octet = st.integers(0, 255)
ipv4 = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
                 octet, octet, octet, octet)


@st.composite
def zones(draw, origin_text="prop.example", serial=1):
    zone = make_zone(
        name(origin_text),
        SOA(name(f"ns1.{origin_text}"), name(f"admin.{origin_text}"),
            serial, 7200, 3600, 1209600, 300),
        [name(f"ns1.{origin_text}")])
    hosts = draw(st.lists(st.tuples(label, ipv4), max_size=12,
                          unique_by=lambda t: t[0]))
    for host, address in hosts:
        zone.add_rrset(make_rrset(name(f"{host}.{origin_text}"),
                                  RType.A, 300, [A(address)]))
    txts = draw(st.lists(label, max_size=3, unique=True))
    for t in txts:
        if any(t == h for h, _ in hosts):
            continue
        zone.add_rrset(make_rrset(name(f"{t}.txt.{origin_text}"),
                                  RType.TXT, 60,
                                  [TXT((t.encode("ascii"),))]))
    return zone


def zone_signature(zone):
    return sorted((str(rrset.name), int(rrset.rtype), rrset.ttl,
                   sorted(repr(r.rdata) for r in rrset.records))
                  for rrset in zone.iter_rrsets())


@given(zones())
@settings(max_examples=60)
def test_serialize_parse_roundtrip(zone):
    reparsed = parse_zone_text(serialize_zone(zone))
    assert zone_signature(reparsed) == zone_signature(zone)


@given(zones())
@settings(max_examples=40)
def test_axfr_roundtrip(zone):
    transferred = transfer_zone(zone)
    assert zone_signature(transferred) == zone_signature(zone)


@given(zones(), zones(serial=2))
@settings(max_examples=40)
def test_ixfr_diff_apply_reaches_target(old, new):
    diff = diff_zones(old, new)
    rebuilt = apply_diff(old, diff)
    assert zone_signature(rebuilt) == zone_signature(new)


@given(zones())
@settings(max_examples=40)
def test_diff_against_self_is_empty(zone):
    diff = diff_zones(zone, zone)
    assert diff.change_count == 0


@given(zones())
@settings(max_examples=40)
def test_every_name_resolves_consistently(zone):
    """Every name the zone says exists must not be NXDOMAIN, and every
    made-up sibling must be."""
    from repro.dnscore import LookupStatus
    for existing in zone.names():
        result = zone.lookup(existing, RType.A)
        assert result.status != LookupStatus.NXDOMAIN
    probe = name("definitely-not-there-xyz.prop.example")
    assert zone.lookup(probe, RType.A).status == LookupStatus.NXDOMAIN
