"""Tests for rdata codecs across all supported record types."""

import pytest

from repro.dnscore import (
    AAAA,
    CAA,
    CNAME,
    MX,
    NS,
    PTR,
    SOA,
    SRV,
    TXT,
    A,
    WireFormatError,
    WireReader,
    WireWriter,
    name,
)
from repro.dnscore.rdata import GenericRdata, rdata_from_text, read_rdata


def roundtrip(rdata):
    w = WireWriter()
    rdata.write(w)
    data = w.getvalue()
    r = WireReader(data)
    return read_rdata(r, int(rdata.rtype), len(data))


SAMPLES = [
    A("192.0.2.1"),
    AAAA("2001:db8::1"),
    NS(name("ns1.example.com")),
    CNAME(name("target.example.net")),
    PTR(name("host.example.com")),
    SOA(name("ns1.ex.com"), name("admin.ex.com"), 2020010101, 7200, 3600,
        1209600, 300),
    MX(10, name("mail.ex.com")),
    TXT((b"hello world",)),
    TXT((b"part1", b"part2")),
    SRV(1, 2, 443, name("svc.ex.com")),
    CAA(0, b"issue", b"letsencrypt.org"),
]


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_wire_roundtrip(rdata):
    assert roundtrip(rdata) == rdata


@pytest.mark.parametrize("rdata", SAMPLES, ids=lambda r: type(r).__name__)
def test_text_roundtrip(rdata):
    fields = rdata.to_text().split()
    # TXT needs quote-aware splitting; skip multi-string joining subtleties.
    if isinstance(rdata, TXT):
        fields = [f for f in rdata.to_text().split('" "')]
        fields = [f.strip('"') for f in fields]
    parsed = rdata_from_text(rdata.rtype, fields)
    assert parsed == rdata


class TestValidation:
    def test_bad_ipv4(self):
        with pytest.raises(ValueError):
            A("300.1.2.3")

    def test_bad_ipv6(self):
        with pytest.raises(ValueError):
            AAAA("not-an-address")

    def test_ipv6_normalized(self):
        assert AAAA("2001:DB8:0:0:0:0:0:1").address == "2001:db8::1"

    def test_a_wrong_length(self):
        r = WireReader(b"\x01\x02\x03")
        with pytest.raises(WireFormatError):
            A.read(r, 3)

    def test_txt_empty_rejected(self):
        with pytest.raises(ValueError):
            TXT(())

    def test_txt_string_too_long(self):
        with pytest.raises(ValueError):
            TXT((b"x" * 256,))

    def test_soa_field_count(self):
        with pytest.raises(ValueError):
            rdata_from_text(SOA.rtype, ["only", "two"])


class TestGeneric:
    def test_unknown_type_roundtrips(self):
        data = b"\x01\x02\x03\x04"
        r = WireReader(data)
        rdata = read_rdata(r, 9999, len(data))
        assert isinstance(rdata, GenericRdata)
        assert rdata.type_value == 9999
        assert rdata.data == data
        w = WireWriter()
        rdata.write(w)
        assert w.getvalue() == data

    def test_rdlength_mismatch_detected(self):
        # A SOA rdata whose encoded length disagrees with rdlength.
        w = WireWriter()
        SOA(name("a"), name("b"), 1, 2, 3, 4, 5).write(w)
        data = w.getvalue()
        r = WireReader(data + b"xx")
        with pytest.raises(WireFormatError):
            read_rdata(r, int(SOA.rtype), len(data) + 2)
