"""Tests for the resolver cache."""

from repro.dnscore import A, NS, RCode, RType, make_rrset, name
from repro.resolver import DNSCache


def a_rrset(owner, ttl=60, addr="10.0.0.1"):
    return make_rrset(name(owner), RType.A, ttl, [A(addr)])


class TestPositiveCache:
    def test_hit_within_ttl(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com", ttl=60), now=0.0)
        hit = cache.get(name("x.com"), RType.A, now=30.0)
        assert hit is not None
        assert cache.hits == 1

    def test_ttl_ages(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com", ttl=60), now=0.0)
        hit = cache.get(name("x.com"), RType.A, now=45.0)
        assert hit.ttl == 15

    def test_expiry(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com", ttl=60), now=0.0)
        assert cache.get(name("x.com"), RType.A, now=60.0) is None
        assert cache.misses == 1

    def test_longer_ttl_replaces(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com", ttl=10), now=0.0)
        cache.put(a_rrset("x.com", ttl=100, addr="10.0.0.2"), now=0.0)
        hit = cache.get(name("x.com"), RType.A, now=50.0)
        assert hit is not None
        assert hit.rdatas() == [A("10.0.0.2")]

    def test_shorter_ttl_does_not_replace(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com", ttl=100), now=0.0)
        cache.put(a_rrset("x.com", ttl=5, addr="10.0.0.9"), now=0.0)
        hit = cache.get(name("x.com"), RType.A, now=50.0)
        assert hit.rdatas() == [A("10.0.0.1")]

    def test_eviction_caps_size(self):
        cache = DNSCache(max_entries=10)
        for i in range(50):
            cache.put(a_rrset(f"h{i}.com", ttl=1000), now=float(i))
        assert len(cache) <= 10

    def test_flush(self):
        cache = DNSCache()
        cache.put(a_rrset("x.com"), now=0.0)
        cache.flush()
        assert len(cache) == 0


class TestNegativeCache:
    def test_negative_hit(self):
        cache = DNSCache()
        cache.put_negative(name("gone.com"), RType.A, RCode.NXDOMAIN,
                           ttl=300, now=0.0)
        assert cache.get_negative(name("gone.com"), RType.A, 100.0) == \
            RCode.NXDOMAIN

    def test_negative_expiry(self):
        cache = DNSCache()
        cache.put_negative(name("gone.com"), RType.A, RCode.NXDOMAIN,
                           ttl=300, now=0.0)
        assert cache.get_negative(name("gone.com"), RType.A, 301.0) is None

    def test_positive_overrides_negative(self):
        cache = DNSCache()
        cache.put_negative(name("x.com"), RType.A, RCode.NXDOMAIN,
                           ttl=300, now=0.0)
        cache.put(a_rrset("x.com"), now=1.0)
        assert cache.get_negative(name("x.com"), RType.A, 2.0) is None
        assert cache.get(name("x.com"), RType.A, 2.0) is not None


class TestDelegationLookup:
    def test_deepest_ns_wins(self):
        cache = DNSCache()
        cache.put(make_rrset(name("com"), RType.NS, 1000,
                             [NS(name("a.gtld.net"))]), now=0.0)
        cache.put(make_rrset(name("ex.com"), RType.NS, 1000,
                             [NS(name("ns1.ex.com"))]), now=0.0)
        cut, rrset = cache.best_delegation(name("www.ex.com"), 10.0)
        assert cut == name("ex.com")

    def test_falls_back_to_shallower(self):
        cache = DNSCache()
        cache.put(make_rrset(name("com"), RType.NS, 1000,
                             [NS(name("a.gtld.net"))]), now=0.0)
        cache.put(make_rrset(name("ex.com"), RType.NS, 10,
                             [NS(name("ns1.ex.com"))]), now=0.0)
        cut, _ = cache.best_delegation(name("www.ex.com"), 500.0)
        assert cut == name("com")

    def test_none_when_empty(self):
        assert DNSCache().best_delegation(name("a.b.c"), 0.0) is None
