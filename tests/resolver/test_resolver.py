"""Integration tests for the iterative resolver over a real hierarchy."""

import random

import pytest

from repro.dnscore import RCode, RType, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    Datagram,
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.resolver import (
    FixedSelection,
    RecursiveResolver,
    RTTWeightedSelection,
    UniformSelection,
)
from repro.server import (
    AuthoritativeEngine,
    HostNameserver,
    MachineBGPSpeaker,
    MachineConfig,
    NameserverMachine,
    PoP,
    ZoneStore,
)

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
@ IN SOA a.root. admin.root. 1 2 3 4 300
@ IN NS a.root.
a.root. IN A 198.41.0.4
net. IN NS a.gtld.net.
a.gtld.net. IN A 192.5.6.30
"""

TLD_ZONE = """\
$ORIGIN net.
$TTL 86400
@ IN SOA a.gtld.net. admin.net. 1 2 3 4 300
@ IN NS a.gtld.net.
a.gtld.net. IN A 192.5.6.30
ex.net. IN NS use1.akam.net.
use1.akam.net. IN A 23.61.199.1
glueless.net. IN NS ns.helper.net.
helper.net. IN NS a.gtld.net.
"""

EX_ZONE = """\
$ORIGIN ex.net.
$TTL 300
@ IN SOA use1.akam.net. admin.ex.net. 1 2 3 4 60
@ IN NS use1.akam.net.
www IN A 93.184.216.34
alias IN CNAME www
nodata IN TXT "x"
"""

HELPER_ZONE = """\
$ORIGIN helper.net.
$TTL 3600
@ IN SOA a.gtld.net. admin.helper.net. 1 2 3 4 300
@ IN NS a.gtld.net.
ns IN A 10.44.0.1
"""

GLUELESS_ZONE = """\
$ORIGIN glueless.net.
$TTL 300
@ IN SOA ns.helper.net. admin.glueless.net. 1 2 3 4 60
@ IN NS ns.helper.net.
www IN A 10.44.0.99
"""


def mk_machine(loop, zone_texts, mid):
    store = ZoneStore()
    for t in zone_texts:
        store.add(parse_zone_text(t))
    return NameserverMachine(
        loop, mid, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))


@pytest.fixture
def world():
    rng = random.Random(17)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=24))
    pop_id = attach_pop(inet, rng)
    for host in ("198.41.0.4", "192.5.6.30", "10.44.0.1", "resolver-0"):
        attach_host(inet, rng, host_id=host)
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    HostNameserver(loop, net, "198.41.0.4", mk_machine(loop, [ROOT_ZONE],
                                                       "root-m"))
    HostNameserver(loop, net, "192.5.6.30",
                   mk_machine(loop, [TLD_ZONE, HELPER_ZONE], "tld-m"))
    HostNameserver(loop, net, "10.44.0.1",
                   mk_machine(loop, [GLUELESS_ZONE], "helper-m"))
    pop = PoP(loop, net, pop_id)
    machine = mk_machine(loop, [EX_ZONE], "akam-m0")
    pop.add_machine(machine)
    speaker = MachineBGPSpeaker(pop, "akam-m0", ["23.61.199.1"])
    speaker.advertise_all()
    loop.run_until(25)
    return loop, net, machine, speaker


def make_resolver(loop, net, **kwargs):
    return RecursiveResolver(loop, net, "resolver-0",
                             {name("."): ["198.41.0.4"]},
                             rng=random.Random(5), **kwargs)


def resolve(loop, resolver, qname, qtype=RType.A, wait=20.0):
    results = []
    resolver.resolve(name(qname), qtype, results.append)
    loop.run_until(loop.now + wait)
    assert results, "resolution never completed"
    return results[0]


class TestIterativeResolution:
    def test_full_descent(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        result = resolve(loop, r, "www.ex.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["93.184.216.34"]
        assert result.servers[:2] == ["198.41.0.4", "192.5.6.30"]
        assert result.duration > 0

    def test_caching_avoids_requery(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        resolve(loop, r, "www.ex.net")
        second = resolve(loop, r, "www.ex.net")
        assert second.from_cache
        assert second.queries_sent == 0
        assert second.duration == 0

    def test_delegation_reused_for_sibling_names(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        resolve(loop, r, "www.ex.net")
        sibling = resolve(loop, r, "nodata.ex.net", RType.TXT)
        # Only the authoritative server needed; root/TLD cached.
        assert sibling.servers == ["23.61.199.1"]

    def test_nxdomain_negative_cached(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        first = resolve(loop, r, "missing.ex.net")
        assert first.rcode == RCode.NXDOMAIN
        second = resolve(loop, r, "missing.ex.net")
        assert second.queries_sent == 0

    def test_nodata(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        result = resolve(loop, r, "nodata.ex.net", RType.A)
        assert result.rcode == RCode.NOERROR
        assert not result.addresses()

    def test_cname_chase(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        result = resolve(loop, r, "alias.ex.net")
        assert result.addresses() == ["93.184.216.34"]
        assert result.answers[0].rtype == RType.CNAME

    def test_glueless_referral_chased(self, world):
        loop, net, _, _ = world
        r = make_resolver(loop, net)
        result = resolve(loop, r, "www.glueless.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["10.44.0.99"]
        # The NS target's address was resolved as a sub-query.
        assert "10.44.0.1" in result.servers


class TestFailureHandling:
    def test_timeout_then_servfail(self, world):
        loop, net, machine, speaker = world
        machine.fault = "unresponsive"
        r = make_resolver(loop, net, timeout=0.5)
        result = resolve(loop, r, "www.ex.net", wait=40.0)
        assert result.rcode == RCode.SERVFAIL
        assert result.timeouts > 0

    def test_servfail_retries_other_server(self, world):
        loop, net, machine, speaker = world
        machine.fault = "wrong_answer"  # SERVFAIL from the only auth
        r = make_resolver(loop, net, timeout=0.5)
        result = resolve(loop, r, "www.ex.net", wait=30.0)
        assert result.failed
        assert result.queries_sent >= 2  # tried, retried

    def test_unreachable_authoritative(self, world):
        loop, net, machine, speaker = world
        speaker.withdraw_all()
        loop.run_until(loop.now + 30)
        r = make_resolver(loop, net, timeout=0.5)
        result = resolve(loop, r, "www.ex.net", wait=40.0)
        assert result.rcode == RCode.SERVFAIL


class TestSelectionStrategies:
    def test_uniform_spreads(self):
        rng = random.Random(1)
        s = UniformSelection()
        picks = [s.choose(["a", "b", "c"], rng) for _ in range(300)]
        assert all(picks.count(x) > 50 for x in "abc")

    def test_rtt_weighted_prefers_fast(self):
        rng = random.Random(1)
        s = RTTWeightedSelection()
        s.observe_rtt("fast", 0.005)
        s.observe_rtt("slow", 0.200)
        picks = [s.choose(["fast", "slow"], rng) for _ in range(300)]
        assert picks.count("fast") > 220

    def test_rtt_smoothing(self):
        s = RTTWeightedSelection(alpha=0.5, initial_rtt=0.1)
        s.observe_rtt("x", 0.2)
        s.observe_rtt("x", 0.1)
        assert s.srtt("x") == pytest.approx(0.15)

    def test_fixed_selection(self):
        s = FixedSelection()
        assert s.choose(["a", "b"], random.Random(0)) == "a"


class TestSourcePorts:
    def test_random_ports_by_default(self, world):
        loop, net, _, _ = world
        ports = []
        original_send = net.send

        def spy(dgram):
            if isinstance(dgram, Datagram) and dgram.dst != "resolver-0":
                ports.append(dgram.src_port)
            original_send(dgram)

        net.send = spy
        r = make_resolver(loop, net)
        resolve(loop, r, "www.ex.net")
        assert len(set(ports)) > 1

    def test_fixed_port_honored(self, world):
        loop, net, _, _ = world
        ports = []
        original_send = net.send

        def spy(dgram):
            if isinstance(dgram, Datagram) and dgram.dst != "resolver-0":
                ports.append(dgram.src_port)
            original_send(dgram)

        net.send = spy
        r = make_resolver(loop, net, fixed_source_port=5353)
        resolve(loop, r, "www.ex.net")
        assert set(ports) == {5353}
