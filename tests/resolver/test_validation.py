"""Integration tests for the resolver's opt-in DNSSEC validation."""

import random

import pytest

from repro.dnscore import RCode, RType, name, parse_zone_text
from repro.dnssec.keys import KeyRing
from repro.dnssec.sign import SigningPolicy, ZoneSigner
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.resolver import RecursiveResolver
from repro.server import (
    AuthoritativeEngine,
    HostNameserver,
    MachineBGPSpeaker,
    MachineConfig,
    NameserverMachine,
    PoP,
    ZoneStore,
)

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
@ IN SOA a.root. admin.root. 1 2 3 4 300
@ IN NS a.root.
a.root. IN A 198.41.0.4
net. IN NS a.gtld.net.
a.gtld.net. IN A 192.5.6.30
"""

TLD_ZONE = """\
$ORIGIN net.
$TTL 86400
@ IN SOA a.gtld.net. admin.net. 1 2 3 4 300
@ IN NS a.gtld.net.
a.gtld.net. IN A 192.5.6.30
ex.net. IN NS use1.akam.net.
use1.akam.net. IN A 23.61.199.1
"""

EX_ZONE = """\
$ORIGIN ex.net.
$TTL 300
@ IN SOA use1.akam.net. admin.ex.net. 1 2 3 4 60
@ IN NS use1.akam.net.
www IN A 93.184.216.34
"""


def mk_machine(loop, zones, mid):
    store = ZoneStore()
    for z in zones:
        store.add(z)
    return NameserverMachine(
        loop, mid, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))


def build_world(policy=None):
    """Root/TLD unsigned, ex.net signed with ``policy``."""
    rng = random.Random(17)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=24))
    pop_id = attach_pop(inet, rng)
    for host in ("198.41.0.4", "192.5.6.30", "resolver-0"):
        attach_host(inet, rng, host_id=host)
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    HostNameserver(loop, net, "198.41.0.4",
                   mk_machine(loop, [parse_zone_text(ROOT_ZONE)], "root-m"))
    HostNameserver(loop, net, "192.5.6.30",
                   mk_machine(loop, [parse_zone_text(TLD_ZONE)], "tld-m"))
    ex = parse_zone_text(EX_ZONE)
    keys = KeyRing(3, name("ex.net"))
    ZoneSigner(keys, policy).sign(ex, 0.0)
    pop = PoP(loop, net, pop_id)
    machine = mk_machine(loop, [ex], "akam-m0")
    pop.add_machine(machine)
    speaker = MachineBGPSpeaker(pop, "akam-m0", ["23.61.199.1"])
    speaker.advertise_all()
    loop.run_until(25)
    return loop, net


def make_resolver(loop, net, **kwargs):
    return RecursiveResolver(loop, net, "resolver-0",
                             {name("."): ["198.41.0.4"]},
                             rng=random.Random(5), **kwargs)


def resolve(loop, resolver, qname, qtype=RType.A, wait=120.0):
    results = []
    resolver.resolve(name(qname), qtype, results.append)
    loop.run_until(loop.now + wait)
    assert results, "resolution never completed"
    return results[0]


@pytest.fixture(scope="module")
def fresh_world():
    return build_world()


@pytest.fixture(scope="module")
def expired_world():
    # Signatures minted at t=0 lapse at t=5; the world is warmed to
    # t=25, so every served RRSIG is already expired.
    return build_world(SigningPolicy(sig_validity=5.0, inception_skew=0.0))


class TestValidatingResolver:
    def test_signed_answer_validates(self, fresh_world):
        loop, net = fresh_world
        r = make_resolver(loop, net, validate_dnssec=True)
        result = resolve(loop, r, "www.ex.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["93.184.216.34"]
        assert r.dnskey_fetches >= 1
        assert r.validations_ok >= 1
        assert r.validation_failures == 0

    def test_signed_denial_validates(self, fresh_world):
        loop, net = fresh_world
        r = make_resolver(loop, net, validate_dnssec=True)
        result = resolve(loop, r, "absent.ex.net")
        assert result.rcode == RCode.NXDOMAIN
        assert r.validations_ok >= 1
        assert r.validation_failures == 0

    def test_unsigned_zones_pass_opportunistically(self, fresh_world):
        loop, net = fresh_world
        r = make_resolver(loop, net, validate_dnssec=True)
        result = resolve(loop, r, "a.gtld.net")
        assert result.rcode == RCode.NOERROR
        assert r.validation_failures == 0


class TestBogusData:
    def test_expired_signatures_flagged_bogus(self, expired_world):
        loop, net = expired_world
        r = make_resolver(loop, net, validate_dnssec=True)
        result = resolve(loop, r, "www.ex.net")
        assert r.validation_failures >= 1
        # Bogus data never reaches the client as a clean answer.
        assert result.rcode != RCode.NOERROR or not result.addresses()

    def test_invisible_to_non_validating_clients(self, expired_world):
        loop, net = expired_world
        r = make_resolver(loop, net)
        result = resolve(loop, r, "www.ex.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["93.184.216.34"]
        assert r.validation_failures == 0
