"""End-to-end wire-format tests: size limits, truncation, TCP retry."""

import random

import pytest

from repro.dnscore import RCode, RType, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    build_internet,
)
from repro.resolver import RecursiveResolver
from repro.server import (
    AuthoritativeEngine,
    HostNameserver,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)

# A zone whose apex TXT answer cannot fit a 512-octet UDP response.
BIG_ZONE = (
    "$ORIGIN wire.example.\n$TTL 300\n"
    "@ IN SOA ns1.wire.example. admin.wire.example. 1 2 3 4 300\n"
    "@ IN NS ns1.wire.example.\n"
    "small IN A 10.0.0.1\n"
    + "".join(f'big IN TXT "{"x" * 120}{i:03d}"\n' for i in range(8)))


@pytest.fixture
def world():
    rng = random.Random(29)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=20))
    attach_host(inet, rng, host_id="10.77.0.1")
    attach_host(inet, rng, host_id="wire-resolver")
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    store = ZoneStore()
    store.add(parse_zone_text(BIG_ZONE))
    machine = NameserverMachine(
        loop, "wire-ns", AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(),
        MachineConfig(staleness_threshold=float("inf"),
                      wire_responses=True))
    HostNameserver(loop, net, "10.77.0.1", machine)
    # EDNS disabled: the classic 512-octet UDP limit applies, which is
    # what the truncation tests exercise.
    resolver = RecursiveResolver(
        loop, net, "wire-resolver",
        {name("wire.example"): ["10.77.0.1"]},
        rng=random.Random(5), edns_payload=None)
    return loop, resolver


def resolve(loop, resolver, qname, qtype):
    results = []
    resolver.resolve(name(qname), qtype, results.append)
    loop.run_until(loop.now + 20)
    assert results
    return results[0]


class TestWireMode:
    def test_small_answer_over_udp(self, world):
        loop, resolver = world
        result = resolve(loop, resolver, "small.wire.example", RType.A)
        assert result.rcode == RCode.NOERROR
        assert result.tcp_retries == 0
        assert result.addresses() == ["10.0.0.1"]

    def test_big_answer_truncates_then_tcp(self, world):
        loop, resolver = world
        result = resolve(loop, resolver, "big.wire.example", RType.TXT)
        assert result.rcode == RCode.NOERROR
        assert result.tcp_retries == 1
        # The full RRset arrived over TCP.
        assert len(result.answers[-1]) == 8

    def test_tcp_retry_costs_a_round_trip(self, world):
        loop, resolver = world
        small = resolve(loop, resolver, "small.wire.example", RType.A)
        resolver.cache.flush()
        big = resolve(loop, resolver, "big.wire.example", RType.TXT)
        assert big.queries_sent == small.queries_sent + 1
        assert big.duration > small.duration

    def test_edns_payload_size_avoids_truncation(self, world):
        loop, resolver = world
        # Advertising a modern payload size makes the big answer fit UDP
        # (this is also the resolver default).
        resolver.edns_payload = 4096
        result = resolve(loop, resolver, "big.wire.example", RType.TXT)
        assert result.rcode == RCode.NOERROR
        assert result.tcp_retries == 0
        assert len(result.answers[-1]) == 8

    def test_wire_bytes_actually_flow(self, world):
        loop, resolver = world
        captured = []
        original = resolver.handle_datagram

        def spy(dgram):
            captured.append(dgram.payload.wire)
            original(dgram)

        resolver.handle_datagram = spy
        resolve(loop, resolver, "small.wire.example", RType.A)
        assert captured and all(isinstance(w, bytes) for w in captured)
