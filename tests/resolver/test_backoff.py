"""Retry backoff, deterministic jitter, and the resolution deadline."""

import random

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim import EventLoop
from repro.resolver import RecursiveResolver
from repro.resolver.resolver import (
    BACKOFF_FACTOR,
    JITTER,
    MAX_BACKOFF_MULTIPLE,
    _Resolution,
)


class NullNetwork:
    """Swallows every datagram: the always-unresponsive Internet."""

    def __init__(self):
        self.sent = []

    def attach_endpoint(self, host_id, endpoint):
        pass

    def send(self, dgram):
        self.sent.append(dgram)


def make_resolver(loop=None, host_id="resolver-0", **kwargs):
    loop = loop or EventLoop()
    return RecursiveResolver(loop, NullNetwork(), host_id,
                             {name("."): ["198.41.0.4"]},
                             rng=random.Random(1), **kwargs)


def timeout_for_attempt(resolver, attempt):
    resolution = _Resolution(resolver, name("www.ex.net"), RType.A,
                             lambda r: None)
    resolution.attempts = attempt
    return resolver._attempt_timeout(resolution)


class TestBackoff:
    def test_first_attempt_is_exactly_the_base_timeout(self):
        resolver = make_resolver(timeout=2.0)
        assert timeout_for_attempt(resolver, 1) == 2.0

    def test_retries_grow_geometrically_within_jitter_bounds(self):
        resolver = make_resolver(timeout=2.0)
        for attempt in range(2, 9):
            scale = min(BACKOFF_FACTOR ** (attempt - 1),
                        MAX_BACKOFF_MULTIPLE)
            timeout = timeout_for_attempt(resolver, attempt)
            assert 2.0 * scale * (1 - JITTER) <= timeout \
                <= 2.0 * scale * (1 + JITTER)

    def test_backoff_caps_at_max_multiple(self):
        resolver = make_resolver(timeout=2.0)
        ceiling = 2.0 * MAX_BACKOFF_MULTIPLE * (1 + JITTER)
        assert timeout_for_attempt(resolver, 20) <= ceiling

    def test_jitter_is_deterministic_per_host(self):
        a = make_resolver(host_id="resolver-a")
        b = make_resolver(host_id="resolver-a")
        assert [timeout_for_attempt(a, n) for n in range(1, 8)] == \
            [timeout_for_attempt(b, n) for n in range(1, 8)]

    def test_jitter_desynchronizes_different_hosts(self):
        a = make_resolver(host_id="resolver-a")
        b = make_resolver(host_id="resolver-b")
        ours = [timeout_for_attempt(a, n) for n in range(2, 8)]
        theirs = [timeout_for_attempt(b, n) for n in range(2, 8)]
        assert ours != theirs

    def test_backoff_consumes_no_rng(self):
        # Jitter must come from a hash, not the RNG stream, so adding
        # retries anywhere cannot perturb unrelated random draws.
        resolver = make_resolver()
        state = resolver.rng.getstate()
        for attempt in range(1, 10):
            timeout_for_attempt(resolver, attempt)
        assert resolver.rng.getstate() == state


class TestResolutionDeadline:
    def test_attempt_timeout_clamped_to_remaining_budget(self):
        resolver = make_resolver(timeout=2.0, resolution_deadline=30.0)
        resolution = _Resolution(resolver, name("www.ex.net"), RType.A,
                                 lambda r: None)
        resolution.attempts = 5
        resolution.result.started_at = -29.0   # 1 s of budget left
        assert resolver._attempt_timeout(resolution) == pytest.approx(1.0)
        resolution.result.started_at = -40.0   # budget exhausted
        assert resolver._attempt_timeout(resolution) == pytest.approx(0.05)

    def test_unresponsive_world_servfails_at_the_deadline(self):
        loop = EventLoop()
        resolver = make_resolver(loop, timeout=2.0,
                                 resolution_deadline=10.0)
        results = []
        resolver.resolve(name("www.ex.net"), RType.A, results.append)
        loop.run_until(120.0)
        assert len(results) == 1
        result = results[0]
        assert result.rcode == RCode.SERVFAIL
        assert result.timeouts >= 2
        # Finishes at the deadline, not after exhausting a full
        # un-clamped retry ladder.
        assert result.duration == pytest.approx(10.0, abs=0.2)

    def test_fast_failure_paths_unchanged_by_deadline(self):
        # A single lost query still fails over after exactly the base
        # timeout — backoff only shapes the later attempts.
        loop = EventLoop()
        resolver = make_resolver(loop, timeout=2.0,
                                 resolution_deadline=30.0)
        network = resolver.network
        resolver.resolve(name("www.ex.net"), RType.A, lambda r: None)
        assert len(network.sent) == 1
        loop.run_until(2.0)
        assert len(network.sent) == 2
