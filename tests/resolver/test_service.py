"""Tests for the end-user resolver service and stub clients."""

import random

import pytest

from repro.dnscore import RCode, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    build_internet,
)
from repro.resolver import RecursiveResolver
from repro.resolver.service import ResolverService, StubClient
from repro.server import (
    AuthoritativeEngine,
    HostNameserver,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)

AUTH_ZONE = """\
$ORIGIN svc.example.
$TTL 300
@ IN SOA ns1.svc.example. admin.svc.example. 1 2 3 4 60
@ IN NS ns1.svc.example.
www IN A 10.0.0.1
"""


@pytest.fixture
def world():
    rng = random.Random(77)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=24))
    for host in ("10.99.0.1", "svc-resolver", "user-1", "user-2",
                 "user-3"):
        attach_host(inet, rng, host_id=host)
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    store = ZoneStore()
    store.add(parse_zone_text(AUTH_ZONE))
    machine = NameserverMachine(
        loop, "svc-auth", AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))
    HostNameserver(loop, net, "10.99.0.1", machine)
    resolver = RecursiveResolver(
        loop, net, "svc-resolver",
        {name("svc.example"): ["10.99.0.1"]}, rng=random.Random(5))
    service = ResolverService(resolver)
    clients = [StubClient(loop, net, f"user-{i}", "svc-resolver",
                          rng=random.Random(100 + i))
               for i in (1, 2, 3)]
    return loop, service, clients, machine


class TestResolverService:
    def test_end_user_lookup(self, world):
        loop, service, clients, _ = world
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(10)
        result = clients[0].results[0]
        assert result.rcode == RCode.NOERROR
        assert result.latency > 0
        assert service.stats.recursions == 1

    def test_cache_hit_is_faster(self, world):
        loop, service, clients, _ = world
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(10)
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(20)
        cold, warm = clients[0].results
        assert warm.latency < cold.latency
        assert service.stats.cache_answers == 1

    def test_cached_ttl_is_aged(self, world):
        loop, service, clients, _ = world
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(100)
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(110)
        warm = clients[0].results[1]
        assert warm.answers[0].ttl < 300

    def test_concurrent_identical_queries_coalesce(self, world):
        loop, service, clients, _ = world
        for client in clients:
            client.lookup(name("www.svc.example"))
        loop.run_until(10)
        assert service.stats.client_queries == 3
        assert service.stats.recursions == 1
        assert service.stats.coalesced == 2
        for client in clients:
            assert client.results[0].rcode == RCode.NOERROR

    def test_negative_answers_served_and_cached(self, world):
        loop, service, clients, _ = world
        clients[0].lookup(name("nope.svc.example"))
        loop.run_until(10)
        assert clients[0].results[0].rcode == RCode.NXDOMAIN
        clients[1].lookup(name("nope.svc.example"))
        loop.run_until(20)
        assert clients[1].results[0].rcode == RCode.NXDOMAIN
        assert service.stats.cache_answers == 1

    def test_upstream_failure_servfails_clients(self, world):
        loop, service, clients, machine = world
        machine.fault = "unresponsive"
        service.resolver.timeout = 0.5
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(40)
        assert clients[0].results[0].rcode == RCode.SERVFAIL
        assert service.stats.servfails == 1

    def test_recursion_available_flag_set(self, world):
        loop, service, clients, _ = world
        clients[0].lookup(name("www.svc.example"))
        loop.run_until(10)
        # The stub stored grouped answers; check the RA bit via a spy.
        captured = []
        original = clients[1].handle_datagram

        def spy(dgram):
            captured.append(dgram.payload.message)
            original(dgram)

        clients[1].handle_datagram = spy
        clients[1].lookup(name("www.svc.example"))
        loop.run_until(20)
        assert captured[0].flags.ra
        assert not captured[0].flags.aa
