"""Determinism: every experiment is a pure function of its seed."""

import json

import pytest

from repro.experiments import (
    anycast_quality,
    fig2_skew,
    fig8_failover,
    fig9_decision_tree,
    fig11_speedup,
)
from repro.netsim.builder import InternetParams


def small_fig8():
    return fig8_failover.run(fig8_failover.Fig8Params(
        n_pops=6, n_vantage=8, trials=1,
        internet=InternetParams(n_tier1=4, n_tier2=8, n_stub=24),
        measure_window=15.0, converge_time=15.0))


class TestDeterminism:
    def test_fig2(self):
        assert fig2_skew.run(seed=5, n_resolvers=4_000).metrics == \
            fig2_skew.run(seed=5, n_resolvers=4_000).metrics

    def test_fig8(self):
        assert small_fig8().metrics == small_fig8().metrics

    def test_fig9(self):
        assert fig9_decision_tree.run(seed=5).metrics == \
            fig9_decision_tree.run(seed=5).metrics

    def test_fig11(self):
        params = fig11_speedup.Fig11Params(
            n_probes=40, n_edges=30, n_resolvers=1_000,
            internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=40))
        assert fig11_speedup.run(params).metrics == \
            fig11_speedup.run(params).metrics

    def test_anycast_quality(self):
        params = anycast_quality.AnycastQualityParams(
            n_pops=8, n_clients=30,
            internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=40))
        assert anycast_quality.run(params).metrics == \
            anycast_quality.run(params).metrics

    def test_different_seeds_differ(self):
        a = fig2_skew.run(seed=5, n_resolvers=4_000).metrics
        b = fig2_skew.run(seed=6, n_resolvers=4_000).metrics
        assert a != b

    def test_serialized_results_byte_identical(self):
        # The reprolint contract made concrete: the FULL serialized
        # result of a failover experiment — every metric, every series
        # point, every paper-claim verdict — is byte-for-byte identical
        # across two runs with the same seed. Metrics equality above
        # would miss ordering drift inside series; bytes cannot.
        blobs = [
            json.dumps(small_fig8().to_dict(include_series=True),
                       sort_keys=True).encode("utf-8")
            for _ in range(2)
        ]
        assert blobs[0] == blobs[1]
