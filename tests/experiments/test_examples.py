"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their run"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3
