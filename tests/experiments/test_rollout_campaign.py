"""The rollout campaigns: containment holds and runs are deterministic."""

import json

from repro.experiments import resilience_scorecard as scorecard

PARAMS = scorecard.ScorecardParams.fast()


def suite():
    deployment = scorecard.build_deployment(PARAMS)
    return scorecard.standard_campaigns(deployment, PARAMS.seed)


def index_of(name):
    for i, (campaign, _slo) in enumerate(suite()):
        if campaign.name == name:
            return i
    raise AssertionError(f"campaign {name!r} not in the standard suite")


def serialized(result):
    return json.dumps(result.to_dict(include_series=True),
                      sort_keys=True).encode("utf-8")


class TestContainmentCampaign:
    def test_double_run_is_byte_identical(self):
        index = index_of("rollout-containment")
        first = scorecard.run_unit(PARAMS, index)
        second = scorecard.run_unit(PARAMS, index)
        assert serialized(first) == serialized(second)
        assert first.all_hold

    def test_blast_radius_confined_to_canaries(self):
        index = index_of("rollout-containment")
        campaign, slo = suite()[index]
        assert slo.rollout and slo.contain_blast
        outcome = scorecard.run_campaign(PARAMS, campaign, slo)
        hit = set(outcome.blast)
        assert hit, "the corruption never reached a canary"
        assert hit <= set(outcome.canary_ids), \
            f"blast escaped the cohort: {hit - set(outcome.canary_ids)}"
        assert outcome.rollback_complete_seconds is not None
        assert outcome.rollback_complete_seconds <= scorecard.ROLLOUT_SOAK


class TestValidationCampaign:
    def test_all_bad_releases_rejected_without_blast(self):
        index = index_of("rollout-validation")
        result = scorecard.run_unit(PARAMS, index)
        assert result.all_hold
        assert result.metrics["rollout-validation.rejections"] == 3.0


class TestCampaignFilter:
    def test_only_substring_selects_campaigns(self):
        result = scorecard.run(PARAMS, only="rollout-validation")
        names = {comp.metric.split(":")[0] for comp in result.comparisons}
        assert names == {"rollout-validation"}

    def test_unknown_filter_exits(self):
        import pytest
        with pytest.raises(SystemExit):
            scorecard.run(PARAMS, only="no-such-campaign")
