"""End-to-end equivalence: the fast-path core never changes results.

Two independent switches must be invisible in experiment output:

* the anycast route cache (``Network.route_cache_default``), proven on a
  full failover experiment — per-vantage records and all — not just on
  synthetic traffic;
* the parallel runner's unit split (``--jobs``), proven by pushing
  real experiment units through a process pool and comparing the merged
  results byte for byte with the serial composition.
"""

import json
import multiprocessing

import pytest

from repro.experiments import fig8_failover, parallel, resilience_scorecard
from repro.netsim.builder import InternetParams
from repro.netsim.network import Network


def small_fig8_result():
    return fig8_failover.run(fig8_failover.Fig8Params(
        n_pops=6, n_vantage=8, trials=1,
        internet=InternetParams(n_tier1=4, n_tier2=8, n_stub=24),
        measure_window=15.0, converge_time=15.0))


def serialized(result) -> bytes:
    return json.dumps(result.to_dict(include_series=True),
                      sort_keys=True).encode("utf-8")


class TestRouteCacheOnExperiments:
    def test_fig8_identical_with_and_without_cache(self, monkeypatch):
        monkeypatch.setattr(Network, "route_cache_default", True)
        cached = serialized(small_fig8_result())
        monkeypatch.setattr(Network, "route_cache_default", False)
        uncached = serialized(small_fig8_result())
        assert cached == uncached

    def test_resilience_unit_identical_with_and_without_cache(
            self, monkeypatch):
        params = resilience_scorecard.ScorecardParams.fast()
        monkeypatch.setattr(Network, "route_cache_default", True)
        cached = serialized(resilience_scorecard.run_unit(params, 0))
        monkeypatch.setattr(Network, "route_cache_default", False)
        uncached = serialized(resilience_scorecard.run_unit(params, 0))
        assert cached == uncached


#: Cheap figures only — the point is split/merge/pickling correctness,
#: not suite coverage (the full --jobs run is exercised by `make bench`
#: and the runner's own CLI).
_SMALL_ORDER = ("fig2", "fig8", "fig9", "resilience", "anycast-quality")


@pytest.fixture
def small_suite(monkeypatch):
    monkeypatch.setattr(parallel, "JOB_ORDER", _SMALL_ORDER)


class TestParallelRunner:
    def test_serial_and_parallel_byte_identical(self, small_suite):
        serial = [serialized(r) for r in parallel.run_serial(True)]
        with_pool = [serialized(r) for r in parallel.run_parallel(True, 3)]
        assert serial == with_pool

    def test_parallel_double_run_byte_identical(self, small_suite):
        a = [serialized(r) for r in parallel.run_parallel(True, 4)]
        b = [serialized(r) for r in parallel.run_parallel(True, 4)]
        assert a == b

    def test_work_units_cover_job_order(self, small_suite):
        units = parallel.work_units(True)
        assert [u[0] for u in units if u[1] == 0] == list(_SMALL_ORDER)
        # fig8 splits into exactly two cases, resilience into one unit
        # per campaign; everything else is a single unit.
        assert sum(1 for u in units if u[0] == "fig8") == 2
        n_campaigns = resilience_scorecard.unit_count(
            resilience_scorecard.ScorecardParams.fast())
        assert sum(1 for u in units if u[0] == "resilience") == n_campaigns

    def test_unit_payloads_are_picklable(self):
        import pickle
        payload = parallel.run_unit(("fig8", 0), True)
        assert pickle.loads(pickle.dumps(payload)) is not None

    def test_progress_callback_fires_in_figure_order(self, small_suite):
        seen = []
        parallel.run_serial(True, lambda label, _r: seen.append(label))
        assert seen == list(_SMALL_ORDER)


class TestDecomposition:
    def test_fig8_run_equals_assembled_cases(self):
        params = fig8_failover.Fig8Params(
            n_pops=6, n_vantage=8, trials=1,
            internet=InternetParams(n_tier1=4, n_tier2=8, n_stub=24),
            measure_window=15.0, converge_time=15.0)
        direct = serialized(fig8_failover.run(params))
        assembled = serialized(fig8_failover.assemble(
            params,
            fig8_failover.run_case(params, 0),
            fig8_failover.run_case(params, 1)))
        assert direct == assembled

    def test_resilience_run_equals_assembled_units(self):
        params = resilience_scorecard.ScorecardParams.fast()
        direct = serialized(resilience_scorecard.run(params))
        fragments = [resilience_scorecard.run_unit(params, i)
                     for i in range(resilience_scorecard.unit_count(params))]
        assembled = serialized(resilience_scorecard.assemble(fragments))
        assert direct == assembled

    def test_pool_matches_in_process_units(self):
        params = fig8_failover.Fig8Params(
            n_pops=6, n_vantage=8, trials=1,
            internet=InternetParams(n_tier1=4, n_tier2=8, n_stub=24),
            measure_window=15.0, converge_time=15.0)
        local = [fig8_failover.run_case(params, i) for i in range(2)]
        with multiprocessing.Pool(2) as pool:
            remote = pool.starmap(fig8_failover.run_case,
                                  [(params, 0), (params, 1)])
        assert serialized(fig8_failover.assemble(params, *local)) == \
            serialized(fig8_failover.assemble(params, *remote))
