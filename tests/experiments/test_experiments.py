"""Smoke tests for every experiment module at reduced scale.

Each test checks that the experiment runs, produces its series, and that
its headline shape checks hold (where they are statistically robust at
small scale). The benchmarks run the full-scale versions.
"""

import pytest

from repro.experiments import (
    fig1_qps,
    fig2_skew,
    fig3_per_resolver,
    fig4_stability,
    fig8_failover,
    fig9_decision_tree,
    fig10_nxdomain,
    fig11_speedup,
    fig12_restime,
    text_stats,
)
from repro.netsim.builder import InternetParams


class TestFig1:
    def test_shape_checks(self):
        result = fig1_qps.run()
        assert result.all_hold
        times, rates = result.series["qps"]
        assert len(times) == len(rates) > 100

    def test_deterministic(self):
        a = fig1_qps.run(seed=9)
        b = fig1_qps.run(seed=9)
        assert a.metrics == b.metrics


class TestFig2:
    def test_shape_checks(self):
        result = fig2_skew.run(n_resolvers=8_000)
        assert result.all_hold
        for label in ("ips", "asns", "zones"):
            fractions, shares = result.series[label]
            assert shares[-1] == pytest.approx(1.0)


class TestFig3:
    def test_runs_small(self):
        result = fig3_per_resolver.run(n_resolvers=4_000)
        assert "avg" in result.series and "max" in result.series
        # Key shape at any scale: bursts far exceed averages.
        assert result.metrics["highest_max_qps"] > \
            result.metrics["highest_avg_qps"] * 2


class TestFig4:
    def test_runs_small(self):
        result = fig4_stability.run(n_resolvers=4_000)
        assert 0.3 <= result.metrics["weighted_within_10pct"] <= 0.9


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_failover.run(fig8_failover.Fig8Params(
            n_pops=8, n_vantage=10, trials=2,
            internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
            measure_window=20.0, converge_time=20.0))

    def test_produces_four_series(self, result):
        assert len(result.series) == 4

    def test_advertise_mostly_fast(self, result):
        assert result.metrics["advertise2_under_1s"] >= 0.3

    def test_samples_collected(self, result):
        times, cdf = result.series["advertise 2 PoPs"]
        assert len(times) >= 5


class TestFig9:
    def test_all_hold(self):
        result = fig9_decision_tree.run()
        assert result.all_hold
        assert result.metrics["tree_rows_matching"] == 8


class TestFig10:
    def test_three_regions(self):
        params = fig10_nxdomain.Fig10Params(
            attack_rates=(0.0, 500.0, 1_500.0, 3_400.0, 6_000.0),
            measure_seconds=6.0, warmup_seconds=3.0)
        result = fig10_nxdomain.run(params)
        with_filter = result.series["w/ filter"][1]
        without = result.series["w/o filter"][1]
        # Region 1: both fine; region 2: filter wins decisively.
        assert with_filter[0] > 0.95 and without[0] > 0.95
        assert with_filter[2] > without[2] + 0.2


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_speedup.run(fig11_speedup.Fig11Params(
            n_probes=60, n_edges=50, n_resolvers=2_000,
            internet=InternetParams(n_tier1=4, n_tier2=14, n_stub=60)))

    def test_four_series(self, result):
        assert len(result.series) == 4

    def test_queries_dominate_resolvers(self, result):
        assert result.metrics["queries_speedup_avg"] >= \
            result.metrics["resolvers_speedup_avg"]

    def test_rt_weighting(self, result):
        assert result.metrics["weighted_mean_rt"] < \
            result.metrics["mean_rt"]


class TestFig12:
    def test_orderings(self):
        result = fig12_restime.run(fig11_speedup.Fig11Params(
            n_probes=60, n_edges=50, n_resolvers=2_000,
            internet=InternetParams(n_tier1=4, n_tier2=14, n_stub=60)))
        assert result.metrics["twotier_mean_ms_avg"] < \
            result.metrics["toplevel_mean_ms_avg"]
        assert result.metrics["twotier_mean_ms_wgt"] < \
            result.metrics["toplevel_mean_ms_wgt"]


class TestTextStats:
    @pytest.fixture(scope="class")
    def result(self):
        return text_stats.run()

    def test_nxdomain_share(self, result):
        assert 0.001 <= result.metrics["nxdomain_share_legit"] <= 0.02

    def test_ttl_consistency(self, result):
        assert result.metrics["ttl_any_variation"] < 0.2

    def test_rt_monotone(self, result):
        assert result.metrics["rt_busy"] < result.metrics["rt_medium"] \
            < result.metrics["rt_idle"]


class TestTaxonomy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import taxonomy
        return taxonomy.run(phase_seconds=3.0)

    def test_all_five_classes_run(self, result):
        labels, goodputs = result.series["goodput"]
        assert len(labels) == 5

    def test_goodput_protected(self, result):
        _, goodputs = result.series["goodput"]
        assert all(g >= 0.85 for g in goodputs)

    def test_expected_filters_engage(self, result):
        engaged = [c for c in result.comparisons
                   if "filter engages" in c.metric]
        assert len(engaged) == 5
        assert all(c.holds for c in engaged)


class TestAnycastQuality:
    def test_shape_checks(self):
        from repro.experiments import anycast_quality
        result = anycast_quality.run()
        assert result.all_hold
        assert 0.0 < result.metrics["nearest_pop_fraction"] < 1.0
        assert result.metrics["median_rtt_inflation"] >= 1.0


class TestEndUserLatency:
    def test_shape_checks(self):
        from repro.experiments import enduser_latency
        result = enduser_latency.run(enduser_latency.EndUserParams(
            clients_per_resolver=2, lookups_per_client=30))
        assert result.metrics["cache_hit_ratio"] >= 0.4
        assert result.metrics["median_hit_ms"] < \
            result.metrics["median_miss_ms"]
