"""Gray-failure scorecard campaigns: SLO grading plus prober passivity.

Two properties carry the PR's acceptance criteria: the opt-in
``--gray`` campaigns must grade green on the fast platform, and an
enabled prober with *no* gray faults must be a pure observer — the
SLO probe's measurements are indistinguishable from a run without the
prober, and no verdict ever moves off healthy.
"""

from repro.chaos import Campaign
from repro.experiments import resilience_scorecard as rs


class TestGrayCorruptionCampaign:
    def test_conviction_probation_and_detection_all_grade_green(self):
        params = rs.ScorecardParams.fast()
        suite = rs.gray_campaigns(rs.build_deployment(params),
                                  params.seed)
        index = next(i for i, (c, _) in enumerate(suite)
                     if c.name == "gray-corruption")
        result = rs.run_unit(params, index, suite=suite)
        assert result.all_hold, result.render()
        assert result.metrics["gray-corruption.gray_convictions"] >= 1
        assert result.metrics["gray-corruption.gray_suspensions"] >= 1
        assert result.metrics["gray-corruption.gray_rejoins"] >= 1
        # Detection latency is a first-class scorecard output.
        assert "gray-corruption.gray_ttd_s" in result.metrics
        assert "gray-corruption.gray_evidence_to_conviction_s" \
            in result.metrics


class TestGrayQuorumGuardCampaign:
    def test_mass_gray_failure_degrades_but_keeps_serving(self):
        params = rs.ScorecardParams.fast()
        suite = rs.gray_campaigns(rs.build_deployment(params),
                                  params.seed)
        index = next(i for i, (c, _) in enumerate(suite)
                     if c.name == "gray-quorum-guard")
        result = rs.run_unit(params, index, suite=suite)
        assert result.all_hold, result.render()
        budget = result.metrics["gray-quorum-guard.gray_suspensions"]
        assert budget <= result.metrics[
            "gray-quorum-guard.gray_convictions"]
        assert result.metrics["gray-quorum-guard.gray_denials"] >= 1
        assert result.metrics[
            "gray-quorum-guard.gray_window_availability"] >= 0.5


class TestProberPassivity:
    def test_idle_prober_changes_no_slo_measurement(self):
        params = rs.ScorecardParams.fast()
        idle = Campaign("idle", duration=30.0, seed=params.seed)
        base = rs.run_campaign(params, idle)
        probed = rs.run_campaign(params, idle, rs.CampaignSLO(gray=True))
        for attr in ("overall_availability", "worst_window_availability",
                     "total_servfails", "total_timeouts"):
            assert getattr(probed.report, attr) \
                == getattr(base.report, attr)
        assert probed.gray_convictions == 0
        assert probed.gray_suspensions == 0
        assert set(probed.gray_final_verdicts) == {"healthy"}
