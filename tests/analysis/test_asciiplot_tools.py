"""Tests for ASCII plotting and the dig tool."""

import pytest

from repro.analysis import PlotConfig, ascii_cdf, ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot({"line": ([0, 1, 2], [0.0, 0.5, 1.0])},
                          title="T", x_label="x")
        assert "T" in text
        assert "* line" in text
        assert text.count("\n") > 10

    def test_multiple_series_distinct_marks(self):
        text = ascii_plot({"a": ([0, 1], [0, 1]),
                           "b": ([0, 1], [1, 0])})
        assert "* a" in text and "o b" in text

    def test_log_x(self):
        text = ascii_cdf({"cdf": ([0.1, 1.0, 10.0, 100.0],
                                  [0.25, 0.5, 0.75, 1.0])}, log_x=True)
        assert "0.1" in text and "100" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": ([], [])})

    def test_deterministic(self):
        series = {"s": ([0, 5, 9], [1, 4, 2])}
        assert ascii_plot(series) == ascii_plot(series)

    def test_custom_canvas(self):
        text = ascii_plot({"s": ([0, 1], [0, 1])},
                          config=PlotConfig(width=20, height=5))
        rows = [r for r in text.splitlines() if "|" in r]
        assert len(rows) == 5


class TestDigTool:
    @pytest.fixture(scope="class")
    def deployment(self):
        from repro.tools.dig import default_deployment
        return default_deployment(seed=11)

    def test_lookup_adhs(self, deployment):
        from repro.dnscore import RCode
        from repro.tools.dig import lookup
        result = lookup(deployment, "www.acme.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["203.0.113.10"]

    def test_format_includes_sections(self, deployment):
        from repro.tools.dig import format_result, lookup
        result = lookup(deployment, "cdn.acme.net")
        text = format_result(result, trace=True)
        assert ";; QUESTION: cdn.acme.net. A" in text
        assert ";; TRACE:" in text
        assert "CNAME acme.edgesuite.net." in text

    def test_nxdomain_formatting(self, deployment):
        from repro.dnscore import RCode
        from repro.tools.dig import format_result, lookup
        result = lookup(deployment, "missing.acme.net")
        assert result.rcode == RCode.NXDOMAIN
        assert "no such name" in format_result(result)
