"""CLI entry-point tests: dig tool and the experiment runner's flags."""

import json

import pytest


class TestDigMain:
    def test_main_resolves_and_exits_zero(self, capsys):
        from repro.tools.dig import main
        code = main(["www.acme.net", "A", "--seed", "11"])
        out = capsys.readouterr().out
        assert code == 0
        assert ";; QUESTION: www.acme.net. A" in out
        assert "203.0.113.10" in out

    def test_main_trace_flag(self, capsys):
        from repro.tools.dig import main
        code = main(["www.acme.net", "--trace", "--seed", "11"])
        out = capsys.readouterr().out
        assert code == 0
        assert ";; TRACE:" in out
        assert "198.41.0.4" in out

    def test_unknown_qtype_rejected(self):
        from repro.tools.dig import main
        with pytest.raises(ValueError):
            main(["www.acme.net", "BOGUS"])


class TestRunnerJSON:
    def test_json_export_roundtrips(self, tmp_path):
        # Use one cheap experiment directly to keep the test fast, then
        # exercise the same serialization path the runner's --json uses.
        from repro.experiments import fig1_qps
        result = fig1_qps.run()
        path = tmp_path / "out.json"
        path.write_text(json.dumps(
            [result.to_dict(include_series=True)], indent=2))
        loaded = json.loads(path.read_text())
        assert loaded[0]["experiment_id"] == "fig1"
        assert loaded[0]["all_hold"] is True
        assert len(loaded[0]["series"]["qps"][0]) > 100


class TestFiguresTool:
    def test_render_markdown(self):
        from repro.experiments import fig1_qps
        from repro.tools.figures import render_markdown
        doc = render_markdown([fig1_qps.run()])
        assert "## fig1" in doc
        assert "```" in doc
        assert "* qps" in doc
