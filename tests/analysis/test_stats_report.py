"""Tests for statistics helpers and experiment reporting."""

import numpy as np
import pytest

from repro.analysis import (
    Comparison,
    ExperimentResult,
    SeriesSummary,
    cdf_points,
    fraction_at_least,
    fraction_below,
    pdf_histogram,
    quantile,
    render_results,
)


class TestCDF:
    def test_unweighted(self):
        x, y = cdf_points([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(y) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_weighted(self):
        x, y = cdf_points([1.0, 2.0], weights=[1.0, 3.0])
        assert list(y) == pytest.approx([0.25, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestFractions:
    def test_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5

    def test_below_weighted(self):
        assert fraction_below([1, 10], 5, weights=[9, 1]) == \
            pytest.approx(0.9)

    def test_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == 0.5

    def test_quantile(self):
        assert quantile(range(101), 0.5) == 50.0


class TestHistogramAndSummary:
    def test_pdf_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        centers, density = pdf_histogram(rng.normal(0, 1, 5_000), bins=40)
        width = centers[1] - centers[0]
        assert float(np.sum(density) * width) == pytest.approx(1.0,
                                                               abs=0.02)

    def test_summary(self):
        s = SeriesSummary.of([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert "n=5" in str(s)

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesSummary.of([])


class TestReporting:
    def test_compare_and_render(self):
        result = ExperimentResult("figX", "Test figure")
        result.metrics["value"] = 3.14
        result.compare("first", "1.0", "1.1", True)
        result.compare("second", "2.0", "9.9", False)
        text = result.render()
        assert "figX" in text and "ok " in text and "MISS" in text
        assert not result.all_hold

    def test_all_hold(self):
        result = ExperimentResult("figY", "t")
        result.compare("only", "x", "x", True)
        assert result.all_hold

    def test_render_results_summary(self):
        a = ExperimentResult("a", "A")
        a.compare("m", "p", "v", True)
        b = ExperimentResult("b", "B")
        b.compare("m", "p", "v", False)
        text = render_results([a, b])
        assert "1/2 experiments" in text

    def test_comparison_row_format(self):
        row = Comparison("metric", "10", "11", True).row()
        assert row.startswith("  [ok ]")


class TestJSONExport:
    def test_to_dict_basic(self):
        result = ExperimentResult("figZ", "Z")
        result.metrics["m"] = 1.5
        result.compare("c", "1", "2", False)
        data = result.to_dict()
        assert data["experiment_id"] == "figZ"
        assert data["metrics"] == {"m": 1.5}
        assert data["comparisons"][0]["holds"] is False
        assert data["all_hold"] is False

    def test_to_dict_with_numeric_series(self):
        import json
        result = ExperimentResult("figZ", "Z")
        result.series["line"] = ([1, 2], [0.5, 1.0])
        result.series["labels"] = (["a", "b"], [1, 2])  # non-numeric axis
        data = result.to_dict(include_series=True)
        assert data["series"]["line"] == [[1.0, 2.0], [0.5, 1.0]]
        assert "labels" not in data["series"]
        json.dumps(data)  # fully serializable
