"""Call-graph construction: naming, resolution, reachability."""

from .flowutil import load_model, module_name_for


def model():
    return load_model("graphcase", packages=("graphcase",))


class TestModuleNaming:
    def test_src_layout(self):
        assert module_name_for("src/repro/netsim/clock.py") \
            == "repro.netsim.clock"

    def test_package_init(self):
        assert module_name_for("src/repro/netsim/__init__.py") \
            == "repro.netsim"

    def test_non_python(self):
        assert module_name_for("src/repro/data.json") is None

    def test_invalid_identifier(self):
        assert module_name_for("src/repro/not-a-module.py") is None

    def test_no_src_prefix(self):
        assert module_name_for("benchmarks/bench.py") == \
            "benchmarks.bench"


class TestResolution:
    def test_reexport_through_init(self):
        m = model()
        assert m.resolve_dotted("graphcase.helper") == \
            ("func", "graphcase.impl:helper")

    def test_direct_module_symbol(self):
        m = model()
        assert m.resolve_dotted("graphcase.impl.helper") == \
            ("func", "graphcase.impl:helper")

    def test_class_and_method(self):
        m = model()
        assert m.resolve_dotted("graphcase.impl.Child") == \
            ("class", "graphcase.impl:Child")
        assert m.resolve_dotted("graphcase.impl.Child.ping") == \
            ("func", "graphcase.impl:Base.ping")

    def test_external_name_is_none(self):
        assert model().resolve_dotted("os.path.join") is None

    def test_method_lookup_walks_bases(self):
        m = model()
        assert m.lookup_method("graphcase.impl:Child", "ping") == \
            "graphcase.impl:Base.ping"
        assert m.lookup_method("graphcase.impl:Child", "run") == \
            "graphcase.impl:Child.run"
        assert m.lookup_method("graphcase.impl:Child", "nope") is None

    def test_attr_type_from_annotated_param(self):
        m = model()
        assert m.attr_type("graphcase.impl:Holder", "child") == \
            "graphcase.impl:Child"


class TestCallEdges:
    def test_aliased_imports_resolve(self):
        m = model()
        caller = m.functions["graphcase.use:caller"]
        callees = {s.callee for s in caller.sites if s.kind == "call"}
        # Both the `from graphcase import helper as h` alias and the
        # `import graphcase as gc` attribute path land on impl.helper.
        assert "graphcase.impl:helper" in callees

    def test_method_call_on_inferred_instance(self):
        m = model()
        caller = m.functions["graphcase.use:caller"]
        callees = {s.callee for s in caller.sites}
        assert "graphcase.impl:Child.run" in callees

    def test_self_dispatch_through_mro(self):
        m = model()
        run = m.functions["graphcase.impl:Child.run"]
        assert {s.callee for s in run.sites} == \
            {"graphcase.impl:Base.ping"}
        ping = m.functions["graphcase.impl:Base.ping"]
        assert {s.callee for s in ping.sites} == \
            {"graphcase.impl:Base.pong"}

    def test_attr_typed_receiver(self):
        m = model()
        kick = m.functions["graphcase.impl:Holder.kick"]
        assert {s.callee for s in kick.sites} == \
            {"graphcase.impl:Child.run"}

    def test_nested_def_gets_ref_edge(self):
        m = model()
        assert "graphcase.use:outer.emit" in m.functions
        outer = m.functions["graphcase.use:outer"]
        refs = {s.callee for s in outer.sites if s.kind == "ref"}
        assert "graphcase.use:outer.emit" in refs


class TestReachability:
    def test_witness_chains(self):
        m = model()
        chains = m.reachable_from(["graphcase.use:caller"])
        assert chains["graphcase.use:caller"] == \
            ("graphcase.use:caller",)
        assert chains["graphcase.impl:Base.pong"] == (
            "graphcase.use:caller", "graphcase.impl:Child.run",
            "graphcase.impl:Base.ping", "graphcase.impl:Base.pong")

    def test_ref_edges_extend_reachability(self):
        m = model()
        chains = m.reachable_from(["graphcase.use:outer"])
        assert "graphcase.use:outer.emit" in chains
        # The callback's own calls are reachable too.
        assert "graphcase.impl:helper" in chains

    def test_match_functions_fnmatch(self):
        m = model()
        assert m.match_functions(("graphcase.impl:Base.*",)) == [
            "graphcase.impl:Base.ping", "graphcase.impl:Base.pong"]
        assert m.match_functions(("nope.*:run",)) == []

    def test_deterministic_across_builds(self):
        a, b = model(), model()
        ra = a.reachable_from(a.match_functions(("graphcase.use:*",)))
        rb = b.reachable_from(b.match_functions(("graphcase.use:*",)))
        assert ra == rb
