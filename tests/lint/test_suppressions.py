"""Inline suppression semantics: same-line, next-line, file-wide."""

from repro.lint import lint_source
from repro.lint.suppress import parse_suppressions

VIOLATION = "import time\nt = time.time()\n"


def codes(source):
    return [f.code for f in lint_source(source)]


class TestInlineDisable:
    def test_same_line(self):
        src = "import time\nt = time.time()  # reprolint: disable=DET001\n"
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # reprolint: disable=LOOP001\n"
        assert codes(src) == ["DET001"]

    def test_multiple_codes(self):
        src = ("import time\n"
               "t = time.time()  # reprolint: disable=LOOP001,DET001\n")
        assert codes(src) == []

    def test_all_keyword(self):
        src = "import time\nt = time.time()  # reprolint: disable=all\n"
        assert codes(src) == []

    def test_only_that_line(self):
        src = ("import time\n"
               "a = time.time()  # reprolint: disable=DET001\n"
               "b = time.time()\n")
        findings = lint_source(src)
        assert [f.code for f in findings] == ["DET001"]
        assert findings[0].line == 3


class TestDisableNext:
    def test_next_line(self):
        src = ("import time\n"
               "# reprolint: disable-next=DET001\n"
               "t = time.time()\n")
        assert codes(src) == []

    def test_skips_blank_lines(self):
        src = ("import time\n"
               "# reprolint: disable-next=DET001\n"
               "\n"
               "t = time.time()\n")
        assert codes(src) == []

    def test_does_not_leak_past_target(self):
        src = ("import time\n"
               "# reprolint: disable-next=DET001\n"
               "a = time.time()\n"
               "b = time.time()\n")
        assert codes(src) == ["DET001"]


class TestDisableFile:
    def test_file_wide(self):
        src = ("# reprolint: disable-file=DET001\n"
               "import time\n"
               "a = time.time()\n"
               "b = time.time()\n")
        assert codes(src) == []

    def test_file_wide_other_rules_still_fire(self):
        src = ("# reprolint: disable-file=DET001\n"
               "import time\n"
               "import random\n"
               "a = time.time()\n"
               "b = random.random()\n")
        assert codes(src) == ["DET002"]


class TestParser:
    def test_parse_map(self):
        lines = ["x = 1  # reprolint: disable=DET001, DET002",
                 "# reprolint: disable-file=LOOP001"]
        smap = parse_suppressions(lines)
        assert smap.is_suppressed("DET001", 1)
        assert smap.is_suppressed("DET002", 1)
        assert not smap.is_suppressed("DET001", 2)
        assert smap.is_suppressed("LOOP001", 99)

    def test_non_directive_comments_ignored(self):
        smap = parse_suppressions(["x = 1  # normal comment"])
        assert not smap.is_suppressed("DET001", 1)
