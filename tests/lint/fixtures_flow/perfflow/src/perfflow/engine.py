"""Hot-path fixture: constructions PERF001 must and must not flag."""

from .dnslike import Message, make_query


class Engine:
    def respond(self, query):
        header = Message(query)
        return self._build(header)

    def _build(self, header):
        probe = make_query(header.msg_id)
        ack = Message(0)  # reprolint: disable=PERF001
        return probe, ack

    def admin(self):
        # Cold path: not reachable from respond, must stay silent.
        return Message(99)
