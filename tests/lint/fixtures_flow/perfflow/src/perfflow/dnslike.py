"""Wire-object stand-ins playing the Message/make_query roles."""


class Message:
    def __init__(self, msg_id):
        self.msg_id = msg_id


def make_query(msg_id):
    # Constructs the costly object itself: flagged unless the module
    # is listed in perf_exempt (the real config exempts repro.dnscore).
    return Message(msg_id)
