"""PERF001 fixture: costly wire-object construction on hot paths."""
