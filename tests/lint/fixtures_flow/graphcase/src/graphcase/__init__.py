"""Call-graph edge-case fixture; re-exports ``helper``."""

from .impl import helper

__all__ = ["helper"]
