"""Classes and helpers resolved through every lookup path."""


def helper():
    return 1


class Base:
    def ping(self):
        return self.pong()

    def pong(self):
        return 0


class Child(Base):
    def run(self):
        return self.ping()


class Holder:
    def __init__(self, child: Child):
        self.child = child

    def kick(self):
        return self.child.run()
