"""Call sites through aliases, re-exports, and nested defs."""

import graphcase as gc
from graphcase import helper as h

from .impl import Child


def caller():
    h()                   # aliased re-export of impl.helper
    gc.helper()           # module alias + __init__ re-export
    child = Child()
    return child.run()    # inferred instance type


def outer(schedule):
    def emit():
        return h()

    schedule(emit)        # nested def handed out as a callback
