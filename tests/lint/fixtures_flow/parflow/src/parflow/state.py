"""Guarded session holder — the sanctioned pattern (allowlisted)."""

ACTIVE = None


def activate(session):
    global ACTIVE
    ACTIVE = session
