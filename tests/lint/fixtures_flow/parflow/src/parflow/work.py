"""Work units: one leaking through a module global, one clean."""

from . import state

_RESULTS = {}


def run_unit(params):
    _RESULTS[params] = _compute(params)   # leaks across workers
    state.activate(params)                # allowlisted session write
    return _RESULTS[params]


def run_clean(params):
    local = {}
    local[params] = _compute(params)      # unit-local: fine
    return local[params]


def _compute(params):
    return params * 2
