"""FLOW003 fixture: parallel safety of work units."""
