"""Bench CLI with a deliberate fixed seed."""

import random


def bench():
    return random.Random(99)
