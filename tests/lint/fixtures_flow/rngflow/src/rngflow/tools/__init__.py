"""Offline tooling subtree (exercises the rng_exempt knob)."""
