"""FLOW001 fixture: seed provenance through call hops."""
