"""Helpers two call hops from the entry point.

Parameter names deliberately do NOT look like seeds (``value``), so
the analysis must judge each helper by what its callers pass it.
"""

import random


def make_good(value):
    return random.Random(value)


def fork_good(value):
    return make_good(value + 1)


def make_bad(value):
    return random.Random(value)


def fork_bad(value):
    return make_bad(value * 2)
