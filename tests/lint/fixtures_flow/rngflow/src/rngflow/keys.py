"""A key-derivation helper registrable as a FLOW001 seed root."""


def derive_key(seed, label, index=0):
    return (seed * 31 + index, label)
