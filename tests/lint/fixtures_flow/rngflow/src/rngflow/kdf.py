"""Callers of the registered seed root, good and bad."""

from .keys import derive_key


def mint_good(seed):
    return derive_key(seed, "zone")


def mint_bad():
    return derive_key(1234, "zone")


def mint_kw_bad():
    return derive_key(label="zone", seed=99)
