"""Entry points feeding the seed helpers."""

import random

from .seeds import fork_bad, fork_good


def run(seed):
    good = fork_good(seed)        # clean: SEED reaches make_good
    bad = fork_bad(12345)         # tainted: CONST reaches make_bad
    unseeded = random.Random()    # no argument: DET006's case, not FLOW001
    direct = random.Random(42)    # tainted: direct constant
    return good, bad, unseeded, direct


def run_suppressed():
    keep = random.Random(7)  # reprolint: disable=FLOW001
    return keep
