"""A miniature respond path: one impure chain, one pure one."""

from .stats import tally


class Engine:
    def respond(self, query, loop):
        # Scheduled callback: reachability must flow through the ref
        # edge even though the loop's type is unknown.
        loop.call_later(0.1, self._emit)
        return self._lookup(query)

    def _lookup(self, query):
        return tally(query)

    def _emit(self):
        print("late answer")

    def probe(self):
        return self._static_answer()

    def _static_answer(self):
        return 42
