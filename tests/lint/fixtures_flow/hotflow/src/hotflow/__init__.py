"""FLOW002 fixture: hot-path purity."""
