"""Counter helper that (wrongly) reads the wall clock."""

import time


def tally(query):
    stamp = time.time()
    return (query, stamp)
