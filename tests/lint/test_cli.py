"""CLI behavior: exit codes, JSON schema, baseline workflow."""

import json

import pytest

from repro.lint.cli import JSON_SCHEMA_VERSION, main

CLEAN = "x = 1\n"
DIRTY = "import time\nt = time.time()\n"


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A miniature repo layout; cwd is moved into it."""
    pkg = tmp_path / "src" / "repro" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "dirty.py").write_text(DIRTY)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        (tree / "src/repro/demo/dirty.py").write_text(CLEAN)
        assert main(["src"]) == 0

    def test_findings_exit_one(self, tree, capsys):
        assert main(["src"]) == 1

    def test_unknown_rule_code_exits_two(self, tree, capsys):
        assert main(["src", "--select", "NOPE999"]) == 2

    def test_missing_baseline_exits_two(self, tree, capsys):
        assert main(["src", "--baseline", "nope.json"]) == 2

    def test_select_subset(self, tree, capsys):
        # Only LOOP001 selected: the wall-clock finding is invisible.
        assert main(["src", "--select", "LOOP001"]) == 0


class TestJsonOutput:
    def test_schema(self, tree, capsys):
        assert main(["src", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 2
        assert set(payload["counts"]) == {
            "error", "warning", "advice", "grandfathered",
            "stale_baseline"}
        assert payload["counts"]["error"] == 1
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "code",
                                "severity", "message", "source",
                                "witness"}
        assert finding["code"] == "DET001"
        assert finding["witness"] == []
        assert finding["path"].endswith("dirty.py")
        assert finding["severity"] in ("error", "warning")

    def test_clean_json(self, tree, capsys):
        (tree / "src/repro/demo/dirty.py").write_text(CLEAN)
        assert main(["src", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestBaselineWorkflow:
    def test_update_then_clean(self, tree, capsys):
        assert main(["src", "--update-baseline"]) == 0
        assert (tree / "reprolint.baseline.json").exists()
        # Grandfathered finding no longer fails the run...
        assert main(["src"]) == 0
        # ...but a fresh violation still does.
        (tree / "src/repro/demo/clean.py").write_text(
            "import random\nrandom.seed(1)\n")
        assert main(["src"]) == 1

    def test_stale_entry_reported(self, tree, capsys):
        assert main(["src", "--update-baseline"]) == 0
        (tree / "src/repro/demo/dirty.py").write_text(CLEAN)
        assert main(["src"]) == 0
        out = capsys.readouterr().out
        assert "stale" in out
        assert main(["src", "--strict-baseline"]) == 1

    def test_no_baseline_flag_ignores_file(self, tree, capsys):
        assert main(["src", "--update-baseline"]) == 0
        assert main(["src", "--no-baseline"]) == 1


class TestListRules:
    def test_catalogue_lists_every_code(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                     "DET006", "LOOP001", "LOOP002", "API001",
                     "FLOW001", "FLOW002", "FLOW003"):
            assert code in out


FLOW_DIRTY = (
    "import random\n"
    "\n"
    "\n"
    "def helper(value):\n"
    "    return random.Random(value)\n"
    "\n"
    "\n"
    "def run(seed):\n"
    "    helper(1234)\n"
    "    return random.Random(seed)\n"
)


@pytest.fixture
def flow_tree(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "repro" / "demo"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "app.py").write_text(FLOW_DIRTY)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestFlowMode:
    def test_off_by_default(self, flow_tree, capsys):
        assert main(["src"]) == 0

    def test_flow_flag_finds_tainted_helper(self, flow_tree, capsys):
        assert main(["src", "--flow"]) == 1
        out = capsys.readouterr().out
        assert "FLOW001" in out
        assert "via: repro.demo.app:run -> repro.demo.app:helper" in out

    def test_selecting_flow_code_implies_flow(self, flow_tree, capsys):
        assert main(["src", "--select", "FLOW001"]) == 1
        # A selection naming only per-file codes runs no flow rule.
        assert main(["src", "--select", "DET001"]) == 0

    def test_json_carries_witness(self, flow_tree, capsys):
        assert main(["src", "--flow", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        flow = [f for f in payload["findings"]
                if f["code"] == "FLOW001"]
        assert flow
        assert flow[0]["witness"] == [
            "repro.demo.app:run", "repro.demo.app:helper"]

    def test_flow_findings_baseline_like_any_other(self, flow_tree,
                                                   capsys):
        assert main(["src", "--flow", "--update-baseline"]) == 0
        assert main(["src", "--flow"]) == 0
        assert main(["src", "--flow", "--no-baseline"]) == 1
