"""Tier-1 gate: the shipped tree satisfies the determinism contract.

Runs the full reprolint rule set over ``src/repro`` (and the test
trees) against the checked-in baseline and fails on any non-baselined
finding. This is the machine-checked form of the platform's headline
claim: experiments and chaos campaigns are byte-identical under a
fixed seed, and nothing in the tree can silently break that.
"""

import json
from pathlib import Path

from repro.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "reprolint.baseline.json"


def run_full_lint():
    baseline = Baseline.load(BASELINE_PATH)
    return lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        baseline=baseline, root=REPO_ROOT, flow=True)


class TestCodebaseClean:
    def test_no_new_findings(self):
        result = run_full_lint()
        assert result.files_checked > 150
        rendered = "\n".join(f.render() for f in result.all_new_findings)
        assert result.clean, (
            f"reprolint found non-baselined violations — fix them or "
            f"add an inline `# reprolint: disable=CODE` with "
            f"justification:\n{rendered}")

    def test_baseline_is_empty(self):
        # The determinism debt burned down to zero in PR 2; keep it
        # there. If you must grandfather a finding, this assertion is
        # the conversation-starter.
        raw = json.loads(BASELINE_PATH.read_text())
        assert raw["findings"] == []

    def test_no_stale_baseline_entries(self):
        result = run_full_lint()
        assert result.stale_baseline == []

    def test_flow_analyses_actually_ran(self):
        # Guard against the flow layer silently matching zero entry
        # points (a renamed hot root would make FLOW002/003 vacuous).
        import ast

        from repro.lint.core import ModuleContext
        from repro.lint.engine import iter_python_files
        from repro.lint.flow import DEFAULT_CONFIG
        from repro.lint.flow.graph import build_model

        contexts = []
        for path in iter_python_files([REPO_ROOT / "src"]):
            logical = path.relative_to(REPO_ROOT).as_posix()
            source = path.read_text(encoding="utf-8")
            contexts.append(ModuleContext(
                path=logical, tree=ast.parse(source, filename=logical),
                source_lines=source.splitlines()))
        model = build_model(contexts, DEFAULT_CONFIG.packages)
        hot = model.match_functions(DEFAULT_CONFIG.hot_roots)
        units = model.match_functions(DEFAULT_CONFIG.workunit_roots)
        assert len(hot) == len(DEFAULT_CONFIG.hot_roots), (
            "a configured hot root no longer names a real function — "
            "update FlowConfig.hot_roots")
        assert len(units) >= len(DEFAULT_CONFIG.workunit_roots)
        # The analyses cover a substantial slice of the tree.
        assert len(model.reachable_from(hot)) > 50
        assert len(model.reachable_from(units)) > 100
