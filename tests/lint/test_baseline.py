"""Baseline round-trip, matching, and staleness detection."""

import json

import pytest

from repro.lint import Baseline, fingerprint, lint_source
from repro.lint.baseline import BASELINE_VERSION

VIOLATING = "import time\nt = time.time()\n"


def make_findings():
    return lint_source(VIOLATING)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        findings = make_findings()
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.counts == baseline.counts
        new, matched = loaded.filter(findings)
        assert new == []
        assert matched == findings

    def test_serialized_shape(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings(make_findings()).save(path)
        raw = json.loads(path.read_text())
        assert raw["version"] == BASELINE_VERSION
        entry = raw["findings"][0]
        assert set(entry) >= {"fingerprint", "path", "code", "count"}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestMatching:
    def test_line_drift_does_not_invalidate(self):
        baseline = Baseline.from_findings(make_findings())
        drifted = lint_source("import time\n\n\nt = time.time()\n")
        assert drifted[0].line != make_findings()[0].line
        new, matched = baseline.filter(drifted)
        assert new == []
        assert len(matched) == 1

    def test_duplicate_beyond_count_is_new(self):
        # Baseline records ONE occurrence of `t = time.time()`; a copy
        # of the identical line shares its fingerprint but exceeds the
        # recorded count, so exactly one of the two is new.
        baseline = Baseline.from_findings(make_findings())
        doubled = lint_source(
            "import time\nt = time.time()\nt = time.time()\n")
        new, matched = baseline.filter(doubled)
        assert len(matched) == 1
        assert len(new) == 1

    def test_empty_baseline_passes_everything_through(self):
        baseline = Baseline()
        findings = make_findings()
        new, matched = baseline.filter(findings)
        assert new == findings
        assert matched == []

    def test_stale_entries(self):
        baseline = Baseline.from_findings(make_findings())
        clean = lint_source("x = 1\n")
        assert baseline.stale_entries(clean) == \
            sorted(baseline.counts)
        assert baseline.stale_entries(make_findings()) == []


class TestFingerprint:
    def test_stable_across_runs(self):
        a, b = make_findings(), make_findings()
        assert fingerprint(a[0]) == fingerprint(b[0])

    def test_distinguishes_code_and_path(self):
        finding = make_findings()[0]
        other = lint_source(VIOLATING, path="src/repro/other.py")[0]
        assert fingerprint(finding) != fingerprint(other)


def make_flow_finding(line=5, witness=("pkg.app:run", "pkg.lib:fn")):
    from repro.lint import Finding, Severity
    return Finding(path="src/pkg/lib.py", line=line, col=12,
                   code="FLOW001", severity=Severity.ERROR,
                   message="seed is not derived from the deployment "
                           "seed", source="rng = random.Random(x)",
                   witness=witness)


class TestWitnessFingerprint:
    def test_witnessless_fingerprint_unchanged(self):
        # Per-file findings keep their PR-2 fingerprints byte-for-byte
        # (the witness segment only appears when non-empty), so an
        # existing baseline file stays valid.
        import hashlib
        plain = make_findings()[0]
        assert plain.witness == ()
        key = f"{plain.path}::{plain.code}::{plain.source}"
        assert fingerprint(plain) == \
            hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def test_line_drift_does_not_invalidate(self):
        a = make_flow_finding(line=5)
        b = make_flow_finding(line=50)
        assert fingerprint(a) == fingerprint(b)

    def test_rewired_call_chain_invalidates(self):
        a = make_flow_finding()
        b = make_flow_finding(
            witness=("pkg.other:entry", "pkg.lib:fn"))
        assert fingerprint(a) != fingerprint(b)

    def test_round_trip_preserves_witness(self, tmp_path):
        finding = make_flow_finding()
        baseline = Baseline.from_findings([finding])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        raw = json.loads(path.read_text())
        assert raw["findings"][0]["witness"] == list(finding.witness)
        loaded = Baseline.load(path)
        new, matched = loaded.filter([make_flow_finding(line=99)])
        assert new == []
        assert len(matched) == 1
