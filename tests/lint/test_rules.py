"""Per-rule fixtures: positive, negative, and suppressed variants.

Every rule code must (a) fire on a deliberately seeded violation,
(b) stay silent on the idiomatic fix, and (c) honor an inline
suppression — the acceptance contract for the rule set.
"""

import pytest

from repro.lint import ALL_RULES, lint_source, rule_by_code
from repro.lint.core import Severity

SIM_PATH = "src/repro/netsim/fake.py"
EXPERIMENT_PATH = "src/repro/experiments/fake.py"


def codes(source, path="src/repro/fake.py"):
    return [f.code for f in lint_source(source, path=path)]


class TestWallClock:
    def test_time_time(self):
        assert codes("import time\nt = time.time()\n") == ["DET001"]

    def test_perf_counter_from_import(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert codes(src) == ["DET001"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(src) == ["DET001"]

    def test_datetime_module_spelling(self):
        src = "import datetime\nd = datetime.datetime.utcnow()\n"
        assert codes(src) == ["DET001"]

    def test_aliased_import(self):
        assert codes("import time as t\nx = t.monotonic()\n") == \
            ["DET001"]

    def test_simulated_clock_is_fine(self):
        src = ("from repro.netsim.clock import EventLoop\n"
               "loop = EventLoop()\n"
               "t = loop.now\n")
        assert codes(src) == []

    def test_local_variable_named_time_is_fine(self):
        # `time` here is a float, not the module: must not resolve.
        assert codes("def f(time):\n    return time\n") == []


class TestGlobalRandom:
    def test_module_level_call(self):
        assert codes("import random\nx = random.random()\n") == \
            ["DET002"]

    def test_from_import(self):
        src = "from random import shuffle\nshuffle([1, 2])\n"
        assert codes(src) == ["DET002"]

    def test_global_seed_is_flagged(self):
        assert codes("import random\nrandom.seed(7)\n") == ["DET002"]

    def test_numpy_legacy_global(self):
        assert codes("import numpy as np\nnp.random.seed(1)\n") == \
            ["DET002"]
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == \
            ["DET002"]

    def test_seeded_instances_are_fine(self):
        src = ("import random\n"
               "import numpy as np\n"
               "rng = random.Random(42)\n"
               "x = rng.random()\n"
               "gen = np.random.default_rng(42)\n"
               "y = gen.normal()\n")
        assert codes(src) == []

    def test_instance_method_not_confused_with_module(self):
        src = ("import random\n"
               "class C:\n"
               "    def __init__(self, seed):\n"
               "        self.rng = random.Random(seed)\n"
               "    def draw(self):\n"
               "        return self.rng.choice([1, 2])\n")
        assert codes(src) == []

    def test_applies_in_tests_tree(self):
        src = "import random\nx = random.randint(0, 9)\n"
        assert codes(src, path="tests/test_fake.py") == ["DET002"]


class TestEntropy:
    @pytest.mark.parametrize("src", [
        "import os\nb = os.urandom(16)\n",
        "import uuid\nu = uuid.uuid4()\n",
        "import uuid\nu = uuid.uuid1()\n",
        "import secrets\nt = secrets.token_hex(8)\n",
        "import random\nr = random.SystemRandom()\n",
    ])
    def test_entropy_sources_flagged(self, src):
        assert codes(src) == ["DET003"]

    def test_uuid5_is_deterministic_and_fine(self):
        src = ("import uuid\n"
               "u = uuid.uuid5(uuid.NAMESPACE_DNS, 'example.com')\n")
        assert codes(src) == []


class TestHashOrdering:
    def test_hash_as_sort_key(self):
        src = "order = sorted(names, key=lambda n: hash(n))\n"
        assert codes(src) == ["DET004"]

    def test_hash_for_partitioning(self):
        src = "def shard(name, n):\n    return hash(name) % n\n"
        assert codes(src) == ["DET004"]

    def test_allowed_inside_hash_defining_class(self):
        src = ("class Name:\n"
               "    def __init__(self, labels):\n"
               "        self._hash = hash(labels)\n"
               "    def __hash__(self):\n"
               "        return self._hash\n")
        assert codes(src) == []

    def test_class_without_dunder_hash_still_flagged(self):
        src = ("class Router:\n"
               "    def shard(self, name):\n"
               "        return hash(name) % 4\n")
        assert codes(src) == ["DET004"]


class TestSetIteration:
    def test_for_over_set_call(self):
        src = "def f(xs):\n    for x in set(xs):\n        use(x)\n"
        assert codes(src) == ["DET005"]

    def test_comprehension_over_frozenset(self):
        src = "def f(xs):\n    return [x for x in frozenset(xs)]\n"
        assert codes(src) == ["DET005"]

    def test_set_literal(self):
        src = "for x in {1, 2, 3}:\n    use(x)\n"
        assert codes(src) == ["DET005"]

    def test_sorted_wrapper_is_fine(self):
        src = "def f(xs):\n    return [x for x in sorted(set(xs))]\n"
        assert codes(src) == []

    def test_severity_is_warning(self):
        findings = lint_source("for x in set(ys):\n    pass\n")
        assert findings[0].severity is Severity.WARNING


class TestUnseededRng:
    def test_unseeded_random(self):
        assert codes("import random\nr = random.Random()\n") == \
            ["DET006"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert codes(src) == ["DET006"]

    def test_seeded_constructors_are_fine(self):
        src = ("import random\n"
               "import numpy as np\n"
               "a = random.Random(1)\n"
               "b = np.random.default_rng(seed=2)\n")
        assert codes(src) == []


class TestSleep:
    def test_time_sleep(self):
        assert codes("import time\ntime.sleep(0.5)\n") == ["LOOP001"]

    def test_event_loop_delay_is_fine(self):
        src = ("def retry(loop, action):\n"
               "    loop.call_later(0.5, action)\n")
        assert codes(src) == []


class TestLoopBypass:
    @pytest.mark.parametrize("src", [
        "import threading\n",
        "import asyncio\n",
        "import socket\n",
        "import subprocess\n",
        "from concurrent.futures import ThreadPoolExecutor\n",
        "import sched\n",
    ])
    def test_bypass_imports_flagged_in_sim_code(self, src):
        assert codes(src, path=SIM_PATH) == ["LOOP002"]

    def test_not_applied_outside_sim_packages(self):
        # Offline analysis/tools may talk to the real world.
        assert codes("import subprocess\n",
                     path="src/repro/tools/fake.py") == []

    def test_heapq_is_fine(self):
        assert codes("import heapq\n", path=SIM_PATH) == []


class TestSeedParam:
    def test_run_without_seed(self):
        src = "def run(n_resolvers=100):\n    return n_resolvers\n"
        assert codes(src, path=EXPERIMENT_PATH) == ["API001"]

    def test_run_with_seed(self):
        src = "def run(seed=42):\n    return seed\n"
        assert codes(src, path=EXPERIMENT_PATH) == []

    def test_run_with_params_object(self):
        src = "def run(params=None):\n    return params\n"
        assert codes(src, path=EXPERIMENT_PATH) == []

    def test_only_applies_to_experiments(self):
        src = "def run():\n    pass\n"
        assert codes(src, path="src/repro/server/fake.py") == []

    def test_nested_run_not_an_entry_point(self):
        src = ("def run(seed=42):\n"
               "    def run():\n"
               "        pass\n"
               "    return run\n")
        assert codes(src, path=EXPERIMENT_PATH) == []


class TestBarePrint:
    def test_print_in_library_code(self):
        src = "def emit(x):\n    print(x)\n"
        assert codes(src, path=SIM_PATH) == ["OBS001"]

    def test_print_with_kwargs_still_flagged(self):
        src = ("import sys\n"
               "def emit(x):\n"
               "    print(x, file=sys.stderr)\n")
        assert codes(src, path=SIM_PATH) == ["OBS001"]

    def test_entry_points_exempt(self):
        src = "def main():\n    print('report')\n"
        for path in ("src/repro/tools/dig.py",
                     "src/repro/lint/cli.py",
                     "src/repro/experiments/runner.py",
                     "src/repro/experiments/resilience_scorecard.py"):
            assert codes(src, path=path) == []

    def test_non_entry_point_experiment_flagged(self):
        src = "def run(seed=0):\n    print(seed)\n"
        assert codes(src, path=EXPERIMENT_PATH) == ["OBS001"]

    def test_shadowed_print_is_fine(self):
        # A locally imported/defined `print` is not the builtin.
        src = ("from repro.fake import print\n"
               "def emit(x):\n"
               "    print(x)\n")
        assert codes(src, path=SIM_PATH) == []

    def test_tests_out_of_scope(self):
        assert codes("print('debug')\n", path="tests/fake.py") == []


class TestZoneInstall:
    def test_store_add_flagged(self):
        src = ("from repro.server import ZoneStore\n"
               "store = ZoneStore()\n"
               "store.add(zone)\n")
        assert codes(src, path=SIM_PATH) == ["ROB001"]

    def test_attribute_store_add_flagged(self):
        src = "def f(engine, zone):\n    engine.store.add(zone)\n"
        assert codes(src, path=SIM_PATH) == ["ROB001"]

    def test_guarded_install_is_fine(self):
        src = "def f(machine, zone):\n    machine.install_zone(zone)\n"
        assert codes(src, path=SIM_PATH) == []

    def test_unrelated_add_is_fine(self):
        src = "def f(pipeline, x):\n    pipeline.add(x)\n    items.add(x)\n"
        assert codes(src, path=SIM_PATH) == []

    def test_rollout_module_exempt(self):
        src = "def f(store, zone):\n    store.add(zone)\n"
        assert codes(src, path="src/repro/control/rollout.py") == []

    def test_tests_out_of_scope(self):
        src = "def f(store, zone):\n    store.add(zone)\n"
        assert codes(src, path="tests/server/fake.py") == []

    def test_inline_suppression(self):
        src = ("def f(store, zone):\n"
               "    # reprolint: disable-next=ROB001 -- bootstrap\n"
               "    store.add(zone)\n")
        assert codes(src, path=SIM_PATH) == []


class TestMitigatorEngage:
    def test_direct_engage_flagged(self):
        src = "def f(mitigator, alert):\n    mitigator.engage(alert)\n"
        assert codes(src, path=SIM_PATH) == ["ROB002"]

    def test_stand_down_flagged(self):
        src = "def f(nx_arm, alert):\n    nx_arm.stand_down(alert)\n"
        assert codes(src, path=SIM_PATH) == ["ROB002"]

    def test_rung_attribute_receiver_flagged(self):
        src = "def f(self, now):\n    self.rung.engage(now)\n"
        assert codes(src, path=SIM_PATH) == ["ROB002"]

    def test_suffixed_receiver_flagged(self):
        src = "def f(firewall_rung, now):\n    firewall_rung.engage(now)\n"
        assert codes(src, path=SIM_PATH) == ["ROB002"]

    def test_tests_in_scope(self):
        src = "def f(mitigator, alert):\n    mitigator.engage(alert)\n"
        assert codes(src, path="tests/telemetry/fake.py") == ["ROB002"]

    def test_defense_module_exempt(self):
        src = "def f(rung, now):\n    rung.engage(now)\n"
        assert codes(src, path="src/repro/control/defense.py") == []

    def test_mitigation_module_exempt(self):
        src = "def f(mitigator, alert):\n    mitigator.engage(alert)\n"
        assert codes(src, path="src/repro/telemetry/mitigation.py") == []

    def test_unrelated_receiver_is_fine(self):
        src = ("def f(clutch, gear):\n"
               "    clutch.engage(gear)\n"
               "    gear.stand_down(clutch)\n")
        assert codes(src, path=SIM_PATH) == []

    def test_armed_controller_is_fine(self):
        src = "def f(controller, telemetry):\n    controller.arm(telemetry)\n"
        assert codes(src, path=SIM_PATH) == []

    def test_inline_suppression(self):
        src = ("def f(mitigator, alert):\n"
               "    # reprolint: disable-next=ROB002 -- exercised directly\n"
               "    mitigator.engage(alert)\n")
        assert codes(src, path=SIM_PATH) == []


class TestSuspensionPath:
    def test_direct_suspend_flagged(self):
        src = "def f(machine):\n    machine.suspend()\n"
        assert codes(src, path=SIM_PATH) == ["ROB003"]

    def test_direct_resume_flagged(self):
        src = "def f(machine):\n    machine.resume()\n"
        assert codes(src, path=SIM_PATH) == ["ROB003"]

    def test_attribute_receiver_flagged(self):
        src = "def f(self):\n    self.machine.suspend()\n"
        assert codes(src, path=SIM_PATH) == ["ROB003"]

    def test_suffixed_receiver_flagged(self):
        src = "def f(gray_machine):\n    gray_machine.resume()\n"
        assert codes(src, path=SIM_PATH) == ["ROB003"]

    def test_grayfail_module_exempt(self):
        src = "def f(machine):\n    machine.suspend()\n"
        assert codes(src, path="src/repro/control/grayfail.py") == []

    def test_recovery_module_exempt(self):
        src = "def f(machine):\n    machine.resume()\n"
        assert codes(src, path="src/repro/control/recovery.py") == []

    def test_tests_out_of_scope(self):
        src = "def f(machine):\n    machine.suspend()\n"
        assert codes(src, path="tests/server/fake.py") == []

    def test_unrelated_receiver_is_fine(self):
        src = ("def f(task, job):\n"
               "    task.suspend()\n"
               "    job.resume()\n")
        assert codes(src, path=SIM_PATH) == []

    def test_coordinator_request_is_fine(self):
        src = ("def f(coordinator, mid, now):\n"
               "    coordinator.request_suspension(mid, now)\n")
        assert codes(src, path=SIM_PATH) == []

    def test_inline_suppression(self):
        src = ("def f(self):\n"
               "    # reprolint: disable-next=ROB003 -- quorum granted\n"
               "    self.machine.suspend()\n")
        assert codes(src, path=SIM_PATH) == []


class TestRuleCatalogue:
    def test_codes_unique(self):
        all_codes = [r.code for r in ALL_RULES]
        assert len(all_codes) == len(set(all_codes))

    def test_every_rule_documented(self):
        for rule in ALL_RULES:
            assert rule.code and rule.name and rule.description
            assert rule.scopes

    def test_rule_by_code(self):
        assert rule_by_code("DET001").name == "wall-clock-read"
        with pytest.raises(KeyError):
            rule_by_code("NOPE999")

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n")
        assert [f.code for f in findings] == ["E999"]
