"""FLOW rule behavior on the fixture packages: true positives, true
negatives, witness chains, config knobs, and inline suppression."""

from repro.lint.core import Severity
from repro.lint.flow import FlowConfig, analyze

from .flowutil import load_contexts


def rng_config(exempt=(), seed_roots=()):
    return FlowConfig(packages=("rngflow",), rng_exempt=exempt,
                      seed_roots=seed_roots, hot_roots=(),
                      workunit_roots=(), state_allowlist=())


def hot_config(roots):
    return FlowConfig(packages=("hotflow",), rng_exempt=(),
                      hot_roots=roots, workunit_roots=(),
                      state_allowlist=())


def par_config(allowlist=("parflow.state",)):
    return FlowConfig(packages=("parflow",), rng_exempt=(),
                      hot_roots=(),
                      workunit_roots=("parflow.work:run_unit",
                                      "parflow.work:run_clean"),
                      state_allowlist=allowlist)


class TestRngProvenance:
    def findings(self, exempt=()):
        return analyze(load_contexts("rngflow"),
                       config=rng_config(exempt))

    def test_tainted_chain_flagged_clean_chain_not(self):
        found = self.findings()
        flagged_lines = {(f.path, f.line) for f in found}
        contexts = {c.path: c for c in load_contexts("rngflow")}
        seeds = contexts["src/rngflow/seeds.py"].source_lines
        # make_bad's construction flags; make_good's (same expression,
        # different callers) must not: only call-site taint separates
        # them.
        bad_line = next(i for i, t in enumerate(seeds, 1)
                        if "random.Random(value)" in t
                        and any(f.line == i for f in found
                                if f.path.endswith("seeds.py")))
        good_lines = [i for i, t in enumerate(seeds, 1)
                      if "random.Random(value)" in t and i != bad_line]
        assert ("src/rngflow/seeds.py", bad_line) in flagged_lines
        for line in good_lines:
            assert ("src/rngflow/seeds.py", line) not in flagged_lines

    def test_witness_spans_the_call_chain(self):
        found = self.findings()
        helper = next(f for f in found if f.path.endswith("seeds.py"))
        assert helper.witness[0] == "rngflow.app:run"
        assert helper.witness[-1] == "rngflow.seeds:make_bad"

    def test_direct_constant_flagged(self):
        found = self.findings()
        direct = [f for f in found if f.path.endswith("app.py")]
        assert len(direct) == 1
        assert "Random(42)" in direct[0].message
        assert direct[0].witness == ("rngflow.app:run",)

    def test_no_arg_constructor_is_not_flow001(self):
        # DET006's case: FLOW001 only judges seeds that exist.
        found = self.findings()
        assert not any("Random()" in f.message for f in found)

    def test_all_errors_carry_code(self):
        for finding in self.findings():
            assert finding.code == "FLOW001"

    def test_exempt_modules_skipped(self):
        with_tools = self.findings()
        assert any(f.path.endswith("tools/bench.py")
                   for f in with_tools)
        without = self.findings(exempt=("rngflow.tools.",))
        assert not any(f.path.endswith("tools/bench.py")
                       for f in without)

    def test_inline_suppression_honored(self):
        found = self.findings()
        assert not any("Random(7)" in f.message for f in found)


class TestSeedRoots:
    """Registered project-internal functions (``FlowConfig.seed_roots``)
    are judged exactly like RNG constructors — the contract the DNSSEC
    ``derive_keypair`` root carries in the real tree."""

    ROOT = ("rngflow.keys:derive_key",)

    def findings(self, seed_roots=ROOT):
        return analyze(load_contexts("rngflow"),
                       config=rng_config(seed_roots=seed_roots))

    def kdf_findings(self, **kwargs):
        return [f for f in self.findings(**kwargs)
                if f.path.endswith("kdf.py")]

    def test_constant_seed_to_root_flags(self):
        found = self.kdf_findings()
        assert any("derive_key(1234)" in f.message for f in found)
        for finding in found:
            assert finding.code == "FLOW001"
            assert finding.severity is Severity.ERROR

    def test_keyword_seed_spelling_judged_too(self):
        found = self.kdf_findings()
        assert any("derive_key(99)" in f.message for f in found)

    def test_seed_derived_caller_is_clean(self):
        lines = {f.line for f in self.kdf_findings()}
        contexts = {c.path: c for c in load_contexts("rngflow")}
        source = contexts["src/rngflow/kdf.py"].source_lines
        good = next(i for i, t in enumerate(source, 1)
                    if "derive_key(seed" in t)
        assert good not in lines

    def test_root_body_not_judged_against_itself(self):
        assert not any(f.path.endswith("keys.py")
                       for f in self.findings())

    def test_unregistered_root_is_ignored(self):
        assert self.kdf_findings(seed_roots=()) == []


class TestHotPathPurity:
    def test_impure_chain_flagged_with_witness(self):
        found = analyze(
            load_contexts("hotflow"),
            config=hot_config(("hotflow.engine:Engine.respond",)))
        assert {f.code for f in found} == {"FLOW002"}
        by_path = {f.path: f for f in found}
        wall = by_path["src/hotflow/stats.py"]
        assert "wall-clock" in wall.message
        assert wall.witness == (
            "hotflow.engine:Engine.respond",
            "hotflow.engine:Engine._lookup",
            "hotflow.stats:tally")

    def test_ref_edge_reaches_scheduled_callback(self):
        found = analyze(
            load_contexts("hotflow"),
            config=hot_config(("hotflow.engine:Engine.respond",)))
        emit = next(f for f in found if f.path.endswith("engine.py"))
        assert "console I/O" in emit.message
        assert emit.witness == ("hotflow.engine:Engine.respond",
                                "hotflow.engine:Engine._emit")

    def test_pure_root_is_clean(self):
        found = analyze(
            load_contexts("hotflow"),
            config=hot_config(("hotflow.engine:Engine.probe",)))
        assert found == []


class TestParallelSafety:
    def test_global_mutation_flagged_local_state_not(self):
        found = analyze(load_contexts("parflow"), config=par_config())
        assert len(found) == 1
        leak = found[0]
        assert leak.code == "FLOW003"
        assert "parflow.work._RESULTS" in leak.message
        assert leak.witness == ("parflow.work:run_unit",)

    def test_allowlist_covers_guarded_session(self):
        # Without the allowlist the sanctioned state.ACTIVE rebind
        # flags too — proving the allowlist is what excuses it.
        found = analyze(load_contexts("parflow"),
                        config=par_config(allowlist=()))
        assert len(found) == 2
        rebind = next(f for f in found if f.path.endswith("state.py"))
        assert "parflow.state.ACTIVE" in rebind.message
        assert rebind.witness == ("parflow.work:run_unit",
                                  "parflow.state:activate")


def perf_config(roots, exempt=()):
    return FlowConfig(packages=("perfflow",), rng_exempt=(),
                      hot_roots=roots, workunit_roots=(),
                      state_allowlist=(),
                      perf_costly=("perfflow.dnslike:Message",
                                   "perfflow.dnslike:make_query"),
                      perf_exempt=exempt)


class TestHotPathConstruction:
    def findings(self, roots=("perfflow.engine:Engine.respond",),
                 exempt=("perfflow.dnslike.",)):
        return analyze(load_contexts("perfflow"),
                       config=perf_config(roots, exempt))

    def test_direct_and_chained_construction_flagged(self):
        found = self.findings()
        assert {f.code for f in found} == {"PERF001"}
        labels = sorted(f.message.split("`")[1] for f in found)
        assert labels == ["Message", "make_query"]
        assert all(f.path == "src/perfflow/engine.py" for f in found)

    def test_witness_spans_the_call_chain(self):
        found = self.findings()
        chained = next(f for f in found if "make_query" in f.message)
        assert chained.witness == ("perfflow.engine:Engine.respond",
                                   "perfflow.engine:Engine._build")

    def test_advisory_severity(self):
        for finding in self.findings():
            assert finding.severity is Severity.ADVICE

    def test_cold_path_not_flagged(self):
        found = self.findings()
        contexts = {c.path: c for c in load_contexts("perfflow")}
        engine = contexts["src/perfflow/engine.py"].source_lines
        cold = next(i for i, t in enumerate(engine, 1)
                    if "Message(99)" in t)
        assert not any(f.line == cold for f in found)

    def test_inline_suppression_honored(self):
        found = self.findings()
        assert not any("Message(0)" in (f.source or "")
                       for f in found)

    def test_exempt_modules_skipped(self):
        # Without the exemption the factory's own construction flags
        # too — the real config's repro.dnscore. entry is what keeps
        # the protocol package itself out of scope.
        with_exempt = self.findings()
        assert not any(f.path.endswith("dnslike.py")
                       for f in with_exempt)
        without = self.findings(exempt=())
        assert any(f.path.endswith("dnslike.py") for f in without)

    def test_no_hot_roots_no_findings(self):
        assert self.findings(roots=()) == []


class TestFindingPlumbing:
    def test_witness_in_render_and_dict(self):
        found = analyze(
            load_contexts("hotflow"),
            config=hot_config(("hotflow.engine:Engine.respond",)))
        wall = next(f for f in found if f.path.endswith("stats.py"))
        rendered = wall.render()
        assert "via: hotflow.engine:Engine.respond -> " in rendered
        payload = wall.to_dict()
        assert payload["witness"] == list(wall.witness)

    def test_codes_filter_restricts_rules(self):
        contexts = load_contexts("parflow")
        none = analyze(contexts, config=par_config(),
                       codes={"FLOW001"})
        assert none == []
        some = analyze(contexts, config=par_config(),
                       codes={"FLOW003"})
        assert len(some) == 1

    def test_findings_sorted(self):
        found = analyze(load_contexts("rngflow"), config=rng_config())
        assert found == sorted(found, key=type(found[0]).sort_key)
