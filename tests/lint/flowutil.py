"""Shared loader for the flow-analysis fixture packages."""

import ast
from pathlib import Path

from repro.lint.core import ModuleContext
from repro.lint.flow.graph import build_model, module_name_for

FIXTURES = Path(__file__).parent / "fixtures_flow"


def load_contexts(fixture: str) -> list[ModuleContext]:
    """Parse one fixture tree into ModuleContexts.

    Paths are made relative to the fixture root, so each file gets the
    ``src/<pkg>/...`` logical path that :func:`module_name_for`
    expects — exactly what the engine produces for the real tree.
    """
    root = FIXTURES / fixture
    contexts = []
    for path in sorted(root.rglob("*.py")):
        logical = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        contexts.append(ModuleContext(
            path=logical, tree=ast.parse(source, filename=logical),
            source_lines=source.splitlines()))
    return contexts


def load_model(fixture: str, packages: tuple[str, ...]):
    return build_model(load_contexts(fixture), packages)


__all__ = ["FIXTURES", "load_contexts", "load_model", "module_name_for"]
