"""Property-based tests on simulation-core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import EventLoop, GeoPoint
from repro.netsim.bgp import LOCAL, Route


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_event_loop_fires_in_time_order(times):
    loop = EventLoop()
    fired = []
    for t in times:
        loop.call_at(t, lambda t=t: fired.append(t))
    loop.run()
    assert fired == sorted(times)
    assert loop.events_processed == len(times)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30),
       st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_run_until_boundary(times, deadline):
    loop = EventLoop()
    fired = []
    for t in times:
        loop.call_at(t, lambda t=t: fired.append(t))
    loop.run_until(deadline)
    assert all(t <= deadline for t in fired)
    assert sorted(fired) == sorted(t for t in times if t <= deadline)
    assert loop.now >= deadline


coords = st.tuples(st.floats(min_value=-85, max_value=85),
                   st.floats(min_value=-180, max_value=180))


@given(coords, coords)
def test_geo_distance_symmetric(a, b):
    pa, pb = GeoPoint(*a), GeoPoint(*b)
    assert abs(pa.distance_km(pb) - pb.distance_km(pa)) < 1e-6


@given(coords, coords, coords)
@settings(max_examples=150)
def test_geo_triangle_inequality(a, b, c):
    pa, pb, pc = GeoPoint(*a), GeoPoint(*b), GeoPoint(*c)
    assert pa.distance_km(pc) <= \
        pa.distance_km(pb) + pb.distance_km(pc) + 1e-6


@given(coords, coords)
def test_latency_positive_and_monotone_with_distance(a, b):
    pa, pb = GeoPoint(*a), GeoPoint(*b)
    assert pa.latency_ms(pb) >= 0.2


routes = st.builds(
    Route,
    prefix=st.just("p"),
    as_path=st.lists(st.integers(1, 1000), max_size=6).map(tuple),
    next_hop=st.sampled_from(["r1", "r2", "r3", LOCAL]),
    local_pref=st.sampled_from([100, 200, 300, 400]),
    med=st.integers(0, 10),
)


@given(st.lists(routes, min_size=1, max_size=10))
def test_route_selection_deterministic_total_order(candidates):
    best_a = max(candidates, key=Route.preference_key)
    best_b = max(list(reversed(candidates)), key=Route.preference_key)
    assert best_a.preference_key() == best_b.preference_key()


@given(routes, routes)
def test_higher_local_pref_always_wins(a, b):
    if a.local_pref > b.local_pref:
        assert a.preference_key() > b.preference_key()


@given(routes, routes)
def test_shorter_path_wins_at_equal_pref(a, b):
    if a.local_pref == b.local_pref and len(a.as_path) < len(b.as_path):
        assert a.preference_key() > b.preference_key()
