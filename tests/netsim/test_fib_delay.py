"""Tests for FIB programming delay semantics (churn-gated, FIFO)."""

import random

import pytest

from repro.netsim import (
    EventLoop,
    GeoPoint,
    LinkRelation,
    Network,
    Node,
    NodeKind,
    Topology,
)


@pytest.fixture
def net():
    t = Topology()
    for i in range(3):
        t.add_node(Node(f"r{i}", 100 + i, NodeKind.TRANSIT,
                        GeoPoint(0, i)))
    t.connect("r0", "r1", LinkRelation.CUSTOMER)
    t.connect("r1", "r2", LinkRelation.CUSTOMER)
    loop = EventLoop()
    network = Network(loop, t, random.Random(1))
    network.build_speakers()
    return loop, network


class TestFIBDelay:
    def test_announcements_program_immediately(self, net):
        loop, network = net
        network.fib_delay_for = lambda r: 5.0
        network.speaker("r2").originate("p")
        loop.run_until(2.0)
        # Announce-driven changes skip the delay.
        assert network.fib_entry("r1", "p") == "r2"

    def test_withdrawals_pay_the_delay(self, net):
        loop, network = net
        network.speaker("r2").originate("p")
        loop.run_until(5.0)
        network.fib_delay_for = lambda r: 10.0
        network.speaker("r2").withdraw_origin("p")
        loop.run_until(7.0)
        # r1's RIB already lost the route, but its FIB still points at
        # the withdrawn origin: the blackhole window.
        assert network.speaker("r1").best_route("p") is None
        assert network.fib_entry("r1", "p") == "r2"
        loop.run_until(30.0)
        assert network.fib_entry("r1", "p") is None

    def test_newer_decision_wins_over_pending(self, net):
        loop, network = net
        network.speaker("r2").originate("p")
        loop.run_until(5.0)
        network.fib_delay_for = lambda r: 10.0
        # Withdraw then immediately re-announce: the delayed removal
        # must not clobber the re-announced entry once both settle.
        network.speaker("r2").withdraw_origin("p")
        loop.run_until(5.5)
        network.speaker("r2").originate("p")
        loop.run_until(40.0)
        assert network.fib_entry("r1", "p") == "r2"
        assert network.fib_entry("r2", "p") is not None

    def test_no_delay_without_configuration(self, net):
        loop, network = net
        network.speaker("r2").originate("p")
        loop.run_until(5.0)
        network.speaker("r2").withdraw_origin("p")
        loop.run_until(7.0)
        assert network.fib_entry("r1", "p") is None
