"""Fast-path/slow-path equivalence for the anycast route cache.

The route cache is a pure optimization: with it on or off, every
datagram must be delivered at the same simulated instant, with the same
hop trace and TTL, and the NetworkStats counters must match bit for
bit — across clean forwarding, FIB churn, link failures, gray
degradation, and congestion. These tests run each scenario twice, once
per mode, and compare everything observable.
"""

import random

import pytest

from repro.netsim import (
    Datagram,
    EventLoop,
    Network,
    attach_host,
    attach_pop,
    build_internet,
    InternetParams,
)


def build_world(route_cache: bool):
    rng = random.Random(1234)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=10,
                                              n_stub=30))
    pops = [attach_pop(inet, rng) for _ in range(3)]
    vps = [attach_host(inet, rng, host_id=f"vp-{i}") for i in range(6)]
    loop = EventLoop()
    net = Network(loop, inet.topology, rng, route_cache=route_cache)
    net.build_speakers()
    return inet, pops, vps, loop, net


def stats_dict(net):
    s = net.stats
    return {f: getattr(s, f) for f in s.__dataclass_fields__}


def run_scenario(route_cache: bool, scenario):
    """Run one scripted scenario; returns (deliveries, stats)."""
    inet, pops, vps, loop, net = build_world(route_cache)
    deliveries = []
    for p in pops:
        net.register_local_delivery(
            p, "acast",
            lambda d, p=p: deliveries.append(
                (loop.now, p, d.ip_ttl, d.hops, d.payload)))
        net.speaker(p).originate("acast")
    loop.run_until(20)
    scenario(inet, pops, vps, loop, net)
    loop.run()
    return deliveries, stats_dict(net)


def assert_equivalent(scenario):
    fast = run_scenario(True, scenario)
    slow = run_scenario(False, scenario)
    assert fast[0] == slow[0]  # timestamps, PoP, TTL, hop traces
    assert fast[1] == slow[1]  # every NetworkStats counter


def burst(vps, net, loop, start=21.0, n=40):
    for i in range(n):
        loop.call_at(start + 0.01 * i, net.send,
                     Datagram(src=vps[i % len(vps)], dst="acast",
                              payload=i, src_port=i))


class TestRouteCacheEquivalence:
    def test_clean_forwarding(self):
        def scenario(inet, pops, vps, loop, net):
            burst(vps, net, loop)
        assert_equivalent(scenario)

    def test_link_down_mid_burst(self):
        def scenario(inet, pops, vps, loop, net):
            burst(vps, net, loop)
            router = pops[0]
            neighbor = inet.topology.neighbors(router)[0]
            loop.call_at(21.15, net.set_link_up, router, neighbor, False)
            burst(vps, net, loop, start=30.0)
        assert_equivalent(scenario)

    def test_gray_degradation(self):
        def scenario(inet, pops, vps, loop, net):
            router = pops[1]
            neighbor = inet.topology.neighbors(router)[0]
            loop.call_at(21.1, lambda: net.set_link_degraded(
                router, neighbor, loss=0.3, extra_latency_ms=15.0))
            burst(vps, net, loop, n=60)
            # Heal mid-run: the cache must re-engage correctly.
            loop.call_at(21.4, lambda: net.set_link_degraded(
                router, neighbor, loss=0.0, extra_latency_ms=0.0))
        assert_equivalent(scenario)

    def test_congestion(self):
        def scenario(inet, pops, vps, loop, net):
            router = pops[0]
            neighbor = inet.topology.neighbors(router)[0]
            link = inet.topology.link(router, neighbor)
            link.capacity_pps = 50.0
            burst(vps, net, loop, n=80)
        assert_equivalent(scenario)

    def test_fib_churn_with_inflight_packets(self):
        def scenario(inet, pops, vps, loop, net):
            burst(vps, net, loop, n=40)
            # Withdraw one PoP while the burst is in flight, forcing
            # cached routes to re-materialize as hop-by-hop packets.
            loop.call_at(21.2, net.speaker(pops[0]).withdraw_origin, "acast")
            loop.call_at(35.0, net.speaker(pops[0]).originate, "acast")
            burst(vps, net, loop, start=50.0)
        assert_equivalent(scenario)


class TestRouteCacheInternals:
    def test_epoch_bumps_on_fib_change(self):
        inet, pops, vps, loop, net = build_world(True)
        net.register_local_delivery(pops[0], "acast", lambda d: None)
        net.speaker(pops[0]).originate("acast")
        before = net.route_epoch
        loop.run_until(20)
        assert net.route_epoch > before

    def test_cache_populated_and_flushed(self):
        inet, pops, vps, loop, net = build_world(True)
        net.register_local_delivery(pops[0], "acast", lambda d: None)
        net.speaker(pops[0]).originate("acast")
        loop.run_until(20)
        net.send(Datagram(src=vps[0], dst="acast", payload=None))
        loop.run()
        assert net._route_cache  # populated by the send
        router = pops[0]
        neighbor = inet.topology.neighbors(router)[0]
        net.set_link_up(router, neighbor, False)
        assert not net._route_cache  # flushed by the epoch bump

    def test_default_mode_is_cached(self):
        inet, pops, vps, loop, net = build_world(Network.route_cache_default)
        assert net.route_cache_enabled


@pytest.mark.parametrize("route_cache", [True, False])
def test_stats_repeatable_within_mode(route_cache):
    """Same mode twice -> identical everything (sanity anchor)."""
    def scenario(inet, pops, vps, loop, net):
        burst(vps, net, loop, n=30)
    a = run_scenario(route_cache, scenario)
    b = run_scenario(route_cache, scenario)
    assert a == b
