"""The event loop's slim heap entries: counters, compaction, varargs."""

import pytest

from repro.netsim.clock import EventLoop


class TestPendingCounter:
    def test_pending_tracks_schedule_and_fire(self):
        loop = EventLoop()
        handles = [loop.call_at(float(i + 1), int) for i in range(10)]
        assert loop.pending == 10
        handles[3].cancel()
        assert loop.pending == 9
        loop.run_until(5.0)
        assert loop.pending == 5  # events at t=6..10 remain
        loop.run()
        assert loop.pending == 0

    def test_pending_is_o1_not_a_scan(self):
        # The counter must not degrade with queue size: compare the
        # attribute's value, which a scan could get wrong after lazy
        # compaction removed cancelled entries from the heap.
        loop = EventLoop()
        handles = [loop.call_at(float(i + 1), int) for i in range(500)]
        for h in handles[::2]:
            h.cancel()
        assert loop.pending == 250
        assert loop.pending == len(
            [e for e in loop._queue if e[4] == 0])

    def test_double_cancel_counts_once(self):
        loop = EventLoop()
        h = loop.call_at(1.0, int)
        other = loop.call_at(2.0, int)
        h.cancel()
        h.cancel()
        assert loop.pending == 1
        loop.run()
        assert not other.cancelled


class TestLazyCompaction:
    def test_cancelled_entries_are_purged_in_bulk(self):
        loop = EventLoop()
        handles = [loop.call_at(float(i + 1), int) for i in range(200)]
        # Cancel enough that dead (>=64) outnumbers alive: compaction
        # must shrink the physical heap while preserving live entries.
        for h in handles[:150]:
            h.cancel()
        assert loop.pending == 50
        # Compaction fired once dead outnumbered alive (at the 101st
        # cancellation), purging every entry cancelled up to then.
        assert len(loop._queue) < 150
        loop.run()
        assert loop.events_processed == 200 - 150

    def test_firing_order_survives_compaction(self):
        loop = EventLoop()
        fired = []
        keep = []
        for i in range(200):
            handle = loop.call_at(float(i + 1), fired.append, i)
            if i % 4:
                handle.cancel()
            else:
                keep.append(i)
        loop.run()
        assert fired == keep

    def test_small_cancel_counts_do_not_compact(self):
        loop = EventLoop()
        handles = [loop.call_at(float(i + 1), int) for i in range(10)]
        handles[0].cancel()
        # Below the compaction threshold the dead entry lingers in the
        # heap (dropped on pop), but pending is already correct.
        assert len(loop._queue) == 10
        assert loop.pending == 9


class TestHandleSemantics:
    def test_cancel_after_fire_reads_cancelled(self):
        # Historical contract: cancelling a handle whose event already
        # ran is a no-op for execution but the handle reads cancelled.
        loop = EventLoop()
        fired = []
        h = loop.call_at(1.0, fired.append, "x")
        loop.run()
        assert fired == ["x"]
        assert not h.cancelled
        h.cancel()
        assert h.cancelled
        assert loop.pending == 0  # no double-decrement

    def test_handle_time(self):
        loop = EventLoop()
        assert loop.call_at(2.5, int).time == 2.5


class TestVarargsScheduling:
    def test_call_at_passes_bound_args(self):
        loop = EventLoop()
        got = []
        loop.call_at(1.0, lambda *a: got.append(a), 1, "two", None)
        loop.run()
        assert got == [(1, "two", None)]

    def test_call_later_passes_bound_args(self):
        loop = EventLoop()
        got = []
        loop.call_later(0.5, got.append, 42)
        loop.run()
        assert got == [42]

    def test_rejects_past_and_negative(self):
        loop = EventLoop()
        loop.call_at(5.0, int)
        loop.run()
        with pytest.raises(ValueError):
            loop.call_at(4.0, int)
        with pytest.raises(ValueError):
            loop.call_later(-0.1, int)
