"""Tests for data-plane catchment measurement and packet helpers."""

import random

import pytest

from repro.netsim import (
    AnycastCloud,
    Datagram,
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
    measure_catchments,
)


@pytest.fixture
def world():
    rng = random.Random(61)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=10,
                                              n_stub=30))
    pops = [attach_pop(inet, rng) for _ in range(3)]
    hosts = [attach_host(inet, rng, host_id=f"mc-{i}") for i in range(8)]
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    cloud = AnycastCloud("mc-prefix", net)
    delivered = []
    for pop in pops:
        net.register_local_delivery(pop, "mc-prefix", delivered.append)
        cloud.advertise(pop)
    loop.run_until(40)
    return loop, net, cloud, pops, hosts, delivered


class TestMeasureCatchments:
    def test_agrees_with_fib_walk_when_converged(self, world):
        loop, net, cloud, pops, hosts, delivered = world
        control = cloud.catchments(hosts)
        data = measure_catchments(net, hosts, "mc-prefix")
        assert control == data

    def test_probes_do_not_leak_to_real_handler(self, world):
        loop, net, cloud, pops, hosts, delivered = world
        measure_catchments(net, hosts, "mc-prefix")
        assert not delivered

    def test_real_traffic_still_delivered_after_measurement(self, world):
        loop, net, cloud, pops, hosts, delivered = world
        measure_catchments(net, hosts, "mc-prefix")
        net.send(Datagram(src=hosts[0], dst="mc-prefix",
                          payload="real-query"))
        loop.run_until(loop.now + 5)
        assert len(delivered) == 1
        assert delivered[0].payload == "real-query"

    def test_unreachable_prefix_measures_none(self, world):
        loop, net, cloud, pops, hosts, delivered = world
        for pop in pops:
            cloud.withdraw(pop)
        loop.run_until(loop.now + 60)
        data = measure_catchments(net, hosts, "mc-prefix")
        assert all(v is None for v in data.values())


class TestDatagramHelpers:
    def test_decremented(self):
        d = Datagram(src="a", dst="b", payload=None, ip_ttl=10)
        moved = d.decremented("r1")
        assert moved.ip_ttl == 9
        assert moved.hops == ("r1",)
        assert d.ip_ttl == 10  # original untouched

    def test_reply_template_swaps_endpoints(self):
        d = Datagram(src="client", dst="server", payload="q",
                     src_port=5353, dst_port=53)
        reply = d.reply_template()
        assert (reply.src, reply.dst) == ("server", "client")
        assert (reply.src_port, reply.dst_port) == (53, 5353)

    def test_flow_key(self):
        d = Datagram(src="a", dst="b", payload=None, src_port=1, dst_port=2)
        assert d.flow_key == ("a", 1, "b", 2)
