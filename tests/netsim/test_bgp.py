"""Tests for BGP route selection, propagation, policy, and withdrawal."""

import random

import pytest

from repro.netsim import (
    EventLoop,
    GeoPoint,
    LinkRelation,
    LOCAL,
    Network,
    Node,
    NodeKind,
    Topology,
)


def build_line(*relations):
    """r0 - r1 - ... with given relations (from left node's perspective)."""
    t = Topology()
    n = len(relations) + 1
    for i in range(n):
        t.add_node(Node(f"r{i}", 100 + i, NodeKind.TRANSIT,
                        GeoPoint(0, i * 2)))
    for i, rel in enumerate(relations):
        t.connect(f"r{i}", f"r{i+1}", rel)
    return t


def make_network(topology, seed=1):
    loop = EventLoop()
    net = Network(loop, topology, random.Random(seed))
    net.build_speakers()
    return loop, net


class TestPropagation:
    def test_customer_route_reaches_everyone(self):
        # r0 --customer-- r1 --customer-- r2: r2 originates, is customer
        # of r1 which is customer of r0.
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        assert net.speaker("r0").best_route("p") is not None
        assert net.fib_entry("r0", "p") == "r1"
        assert net.fib_entry("r2", "p") == LOCAL

    def test_valley_free_blocks_peer_to_peer_transit(self):
        # r0 --peer-- r1 --peer-- r2: r2's route must not cross r1 to r0.
        t = build_line(LinkRelation.PEER, LinkRelation.PEER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        assert net.speaker("r1").best_route("p") is not None
        assert net.speaker("r0").best_route("p") is None

    def test_provider_route_goes_to_customers(self):
        # r0 is provider of r1; r1 is provider of r2. r0 originates:
        # the route flows down the customer chain.
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r0").originate("p")
        loop.run_until(10)
        assert net.speaker("r2").best_route("p") is not None

    def test_as_path_grows_per_hop(self):
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        assert len(net.speaker("r0").best_route("p").as_path) == 2
        assert len(net.speaker("r1").best_route("p").as_path) == 1

    def test_loop_detection(self):
        # Triangle of customers: no route should ever contain its own AS.
        t = Topology()
        for i in range(3):
            t.add_node(Node(f"r{i}", 200 + i, NodeKind.TRANSIT,
                            GeoPoint(0, i)))
        t.connect("r0", "r1", LinkRelation.PEER)
        t.connect("r1", "r2", LinkRelation.CUSTOMER)
        t.connect("r2", "r0", LinkRelation.PROVIDER)
        loop, net = make_network(t)
        net.speaker("r0").originate("p")
        loop.run_until(30)
        for r in ("r0", "r1", "r2"):
            best = net.speaker(r).best_route("p")
            if best is not None:
                assert t.node(r).asn not in best.as_path


class TestSelection:
    def test_customer_preferred_over_peer(self):
        # dest reachable from r1 via customer r2 and via peer r3; both
        # advertise. Customer route wins despite equal path length.
        t = Topology()
        for node_id, asn in [("r1", 1), ("r2", 2), ("r3", 3), ("dst", 4)]:
            t.add_node(Node(node_id, asn, NodeKind.TRANSIT, GeoPoint(0, asn)))
        t.connect("r1", "r2", LinkRelation.CUSTOMER)
        t.connect("r1", "r3", LinkRelation.PEER)
        t.connect("r2", "dst", LinkRelation.CUSTOMER)
        t.connect("r3", "dst", LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("dst").originate("p")
        loop.run_until(10)
        assert net.speaker("r1").best_route("p").next_hop == "r2"

    def test_shorter_path_wins_same_pref(self):
        t = Topology()
        for i in range(5):
            t.add_node(Node(f"r{i}", 300 + i, NodeKind.TRANSIT,
                            GeoPoint(0, i)))
        # Short: r0 <- r1 <- dst(r4). Long: r0 <- r2 <- r3 <- dst(r4).
        t.connect("r0", "r1", LinkRelation.CUSTOMER)
        t.connect("r1", "r4", LinkRelation.CUSTOMER)
        t.connect("r0", "r2", LinkRelation.CUSTOMER)
        t.connect("r2", "r3", LinkRelation.CUSTOMER)
        t.connect("r3", "r4", LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r4").originate("p")
        loop.run_until(10)
        assert net.speaker("r0").best_route("p").next_hop == "r1"

    def test_customer_pref_beats_path_length(self):
        # Line r0-r1-r2-r3-r4, each left node the provider of the right.
        # r1 hears r0's origination from its provider and r4's from its
        # customer chain: Gao-Rexford prefers the customer route even
        # though its AS path is longer.
        t = build_line(*[LinkRelation.CUSTOMER] * 4)
        loop, net = make_network(t)
        net.speaker("r0").originate("p")
        net.speaker("r4").originate("p")
        loop.run_until(10)
        assert net.fib_entry("r1", "p") == "r2"

    def test_anycast_two_origins_split(self):
        # Symmetric tree: x has customers y0 and y1, each of which has a
        # customer origin. Each y prefers its own origin (shorter customer
        # path); the split is a true anycast catchment boundary.
        t = Topology()
        for node_id, asn, lon in [("x", 10, 0), ("y0", 11, -1), ("y1", 12, 1),
                                  ("o0", 13, -2), ("o1", 14, 2)]:
            t.add_node(Node(node_id, asn, NodeKind.TRANSIT, GeoPoint(0, lon)))
        t.connect("x", "y0", LinkRelation.CUSTOMER)
        t.connect("x", "y1", LinkRelation.CUSTOMER)
        t.connect("y0", "o0", LinkRelation.CUSTOMER)
        t.connect("y1", "o1", LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("o0").originate("p")
        net.speaker("o1").originate("p")
        loop.run_until(10)
        assert net.fib_entry("y0", "p") == "o0"
        assert net.fib_entry("y1", "p") == "o1"
        assert net.fib_entry("x", "p") in ("y0", "y1")


class TestWithdrawal:
    def test_withdraw_converges_to_no_route(self):
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        net.speaker("r2").withdraw_origin("p")
        loop.run_until(60)
        for r in ("r0", "r1", "r2"):
            assert net.speaker(r).best_route("p") is None
            assert net.fib_entry(r, "p") is None

    def test_withdraw_fails_over_to_other_origin(self):
        t = build_line(*[LinkRelation.CUSTOMER] * 4)
        loop, net = make_network(t)
        net.speaker("r0").originate("p")
        net.speaker("r4").originate("p")
        loop.run_until(10)
        net.speaker("r0").withdraw_origin("p")
        loop.run_until(60)
        # Everyone should now route toward r4.
        hop = net.fib_entry("r0", "p")
        assert hop == "r1"
        assert net.fib_entry("r1", "p") == "r2"

    def test_update_counters_increase(self):
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        sent = sum(s.updates_sent for s in net.speakers().values())
        assert sent >= 2


class TestMRAI:
    def test_mrai_delays_but_preserves_convergence(self):
        t = build_line(*[LinkRelation.CUSTOMER] * 3)
        loop = EventLoop()
        net = Network(loop, t, random.Random(5))
        net.build_speakers(mrai_for=lambda r: 5.0)
        net.speaker("r3").originate("p")
        loop.run_until(0.5)
        # First updates flush immediately; full path needs several hops
        # but each hop's first send is immediate, so convergence is fast
        # even with MRAI armed.
        loop.run_until(30)
        assert net.speaker("r0").best_route("p") is not None
        net.speaker("r3").withdraw_origin("p")
        loop.run_until(120)
        assert net.speaker("r0").best_route("p") is None
