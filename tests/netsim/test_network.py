"""Tests for packet forwarding, local delivery, failures, and anycast."""

import random

import pytest

from repro.netsim import (
    AnycastCloud,
    Datagram,
    EventLoop,
    Network,
    attach_host,
    attach_pop,
    build_internet,
    InternetParams,
)


@pytest.fixture
def small_internet():
    rng = random.Random(11)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=10,
                                              n_stub=30))
    pops = [attach_pop(inet, rng) for _ in range(3)]
    vps = [attach_host(inet, rng, host_id=f"vp-{i}") for i in range(6)]
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    return inet, pops, vps, loop, net


class Collector:
    def __init__(self, loop):
        self.loop = loop
        self.received = []

    def handle_datagram(self, dgram):
        self.received.append((self.loop.now, dgram))


class TestAnycastDelivery:
    def test_query_reaches_one_pop(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        hits = {p: 0 for p in pops}
        for p in pops:
            net.register_local_delivery(p, "acast",
                                        lambda d, p=p: hits.__setitem__(
                                            p, hits[p] + 1))
            net.speaker(p).originate("acast")
        loop.run_until(20)
        for i, vp in enumerate(vps):
            net.send(Datagram(src=vp, dst="acast", payload=i, src_port=i))
        loop.run_until(21)
        assert sum(hits.values()) == len(vps)
        assert net.stats.delivered == len(vps)

    def test_no_route_drops(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        net.send(Datagram(src=vps[0], dst="ghost", payload=None))
        loop.run_until(5)
        assert net.stats.dropped_no_route == 1

    def test_ttl_decrements_along_path(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        got = []
        net.register_local_delivery(pops[0], "acast", got.append)
        net.speaker(pops[0]).originate("acast")
        loop.run_until(20)
        net.send(Datagram(src=vps[0], dst="acast", payload=None))
        loop.run_until(25)
        assert len(got) == 1
        dgram = got[0]
        assert dgram.ip_ttl < 64
        assert 64 - dgram.ip_ttl == len(dgram.hops)

    def test_ttl_exhaustion_drops(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        net.register_local_delivery(pops[0], "acast", lambda d: None)
        net.speaker(pops[0]).originate("acast")
        loop.run_until(20)
        net.send(Datagram(src=vps[0], dst="acast", payload=None, ip_ttl=2))
        loop.run_until(25)
        assert net.stats.dropped_ttl_expired >= 1


class TestUnicast:
    def test_host_to_host(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        sink = Collector(loop)
        net.attach_endpoint(vps[1], sink)
        net.send(Datagram(src=vps[0], dst=vps[1], payload="hi"))
        loop.run_until(5)
        assert len(sink.received) == 1
        arrival, dgram = sink.received[0]
        assert dgram.payload == "hi"
        assert arrival > 0

    def test_rtt_symmetry(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        assert net.unicast_rtt_ms(vps[0], vps[1]) == pytest.approx(
            net.unicast_rtt_ms(vps[1], vps[0]))

    def test_attach_endpoint_requires_host(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        with pytest.raises(ValueError):
            net.attach_endpoint(pops[0], Collector(loop))


class TestLinkFailure:
    def test_failed_access_link_drops(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        router = inet.topology.attachment_router(vps[0])
        net.set_link_up(vps[0], router, False)
        net.send(Datagram(src=vps[0], dst="anything", payload=None))
        loop.run_until(2)
        assert net.stats.dropped_unreachable == 1

    def test_unicast_reroutes_after_failure(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        # Latency may change (or become None) when a transit link dies;
        # the cache must be invalidated either way.
        before = net.unicast_latency(vps[0], vps[1])
        router = inet.topology.attachment_router(vps[0])
        neighbor = inet.topology.bgp_neighbors(router)[0]
        net.set_link_up(router, neighbor, False)
        after = net.unicast_latency(vps[0], vps[1])
        assert after is None or after >= before


class TestCatchments:
    def test_catchments_cover_all_when_advertised(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        cloud = AnycastCloud("acast", net)
        for p in pops:
            net.register_local_delivery(p, "acast", lambda d: None)
            cloud.advertise(p)
        loop.run_until(30)
        catchments = cloud.catchments(vps)
        assert all(c in pops for c in catchments.values())

    def test_catchment_moves_on_withdraw(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        cloud = AnycastCloud("acast", net)
        for p in pops:
            net.register_local_delivery(p, "acast", lambda d: None)
            cloud.advertise(p)
        loop.run_until(30)
        before = cloud.catchments(vps)
        victim = before[vps[0]]
        cloud.withdraw(victim)
        loop.run_until(90)
        after = cloud.catchments(vps)
        assert after[vps[0]] != victim
        assert after[vps[0]] is not None


class TestLinkCongestion:
    def test_capacity_limits_throughput(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        net.register_local_delivery(pops[0], "cong", lambda d: None)
        net.speaker(pops[0]).originate("cong")
        loop.run_until(20)
        # Throttle the victim PoP's access link hard.
        upstream = inet.topology.bgp_neighbors(pops[0])[0]
        inet.topology.link(pops[0], upstream).capacity_pps = 50.0
        sender = vps[0]
        for i in range(1000):
            loop.call_at(20.0 + i * 0.001, lambda i=i: net.send(Datagram(
                src=sender, dst="cong", payload=i, src_port=i % 60000)))
        before_delivered = net.stats.delivered
        loop.run_until(25)
        delivered = net.stats.delivered - before_delivered
        # Only if the flow actually crosses the throttled link does it
        # drop; either way the counters must balance.
        assert delivered + net.stats.dropped_congestion >= 1000 * 0.9
        if net.stats.dropped_congestion:
            assert net.link_drops(pops[0], upstream) == \
                net.stats.dropped_congestion

    def test_uncapped_links_never_congest(self, small_internet):
        inet, pops, vps, loop, net = small_internet
        net.register_local_delivery(pops[1], "free", lambda d: None)
        net.speaker(pops[1]).originate("free")
        loop.run_until(20)
        for i in range(500):
            loop.call_at(20.0 + i * 0.0005, lambda i=i: net.send(Datagram(
                src=vps[1], dst="free", payload=i, src_port=i % 60000)))
        loop.run_until(25)
        assert net.stats.dropped_congestion == 0
