"""Tests for the synthetic Internet generator."""

import random

import pytest

from repro.netsim import (
    AKAMAI_ASN,
    InternetParams,
    LinkRelation,
    NodeKind,
    attach_host,
    attach_pop,
    build_internet,
)


@pytest.fixture(scope="module")
def internet():
    return build_internet(random.Random(41),
                          InternetParams(n_tier1=6, n_tier2=20, n_stub=60))


class TestStructure:
    def test_counts(self, internet):
        assert len(internet.tier1) == 6
        assert len(internet.tier2) == 20
        assert len(internet.stubs) == 60
        assert len(internet.topology) == 86

    def test_tier1_full_mesh_of_peers(self, internet):
        topo = internet.topology
        for i, a in enumerate(internet.tier1):
            for b in internet.tier1[i + 1:]:
                assert topo.has_link(a, b)
                assert topo.link(a, b).relation == LinkRelation.PEER

    def test_tier2_has_providers(self, internet):
        topo = internet.topology
        for t2 in internet.tier2:
            providers = [n for n in topo.bgp_neighbors(t2)
                         if topo.link(t2, n).relation_from(t2)
                         == LinkRelation.PROVIDER]
            assert 1 <= len(providers) <= 3
            assert all(p in internet.tier1 or p in internet.tier2
                       for p in providers)

    def test_stubs_are_customers_only(self, internet):
        topo = internet.topology
        for stub in internet.stubs:
            for neighbor in topo.bgp_neighbors(stub):
                relation = topo.link(stub, neighbor).relation_from(stub)
                assert relation == LinkRelation.PROVIDER

    def test_asns_unique(self, internet):
        asns = [n.asn for n in internet.topology.routers()]
        assert len(set(asns)) == len(asns)

    def test_deterministic(self):
        params = InternetParams(n_tier1=4, n_tier2=8, n_stub=20)
        a = build_internet(random.Random(3), params)
        b = build_internet(random.Random(3), params)
        links_a = sorted((l.a, l.b, round(l.latency_ms, 6))
                         for l in a.topology.links())
        links_b = sorted((l.a, l.b, round(l.latency_ms, 6))
                         for l in b.topology.links())
        assert links_a == links_b


class TestPoPAttachment:
    def test_eyeball_pop_single_homed(self, internet):
        rng = random.Random(50)
        pop = attach_pop(internet, rng, pop_id="pop-eyeball",
                         ixp_probability=0.0)
        topo = internet.topology
        neighbors = topo.bgp_neighbors(pop)
        assert len(neighbors) == 1
        assert neighbors[0] in internet.stubs
        assert topo.node(pop).asn == AKAMAI_ASN
        assert topo.node(pop).kind == NodeKind.POP_ROUTER

    def test_ixp_pop_multi_homed(self, internet):
        rng = random.Random(51)
        pop = attach_pop(internet, rng, pop_id="pop-ixp",
                         ixp_probability=1.0)
        topo = internet.topology
        neighbors = topo.bgp_neighbors(pop)
        assert len(neighbors) >= 3
        relations = {topo.link(pop, n).relation_from(pop)
                     for n in neighbors}
        assert LinkRelation.PROVIDER in relations  # transit upstream
        assert LinkRelation.PEER in relations      # IXP peers

    def test_pop_registered(self, internet):
        before = len(internet.pops)
        attach_pop(internet, random.Random(52))
        assert len(internet.pops) == before + 1


class TestHostAttachment:
    def test_host_gets_access_link(self, internet):
        rng = random.Random(53)
        host = attach_host(internet, rng, host_id="test-host-1")
        topo = internet.topology
        assert topo.node(host).kind == NodeKind.HOST
        router = topo.attachment_router(host)
        assert router in internet.stubs
        assert topo.link(host, router).relation == LinkRelation.ACCESS

    def test_host_inherits_anchor_asn(self, internet):
        rng = random.Random(54)
        stub = internet.stubs[0]
        host = attach_host(internet, rng, host_id="test-host-2",
                           attach_to=stub)
        assert internet.topology.node(host).asn == \
            internet.topology.node(stub).asn
