"""Tests for topology structure and the geo latency model."""

import random

import pytest

from repro.netsim import (
    GeoModel,
    GeoPoint,
    Link,
    LinkRelation,
    Node,
    NodeKind,
    Topology,
    region_weights,
)


def node(node_id, kind=NodeKind.TRANSIT, lat=0.0, lon=0.0, asn=1):
    return Node(node_id, asn, kind, GeoPoint(lat, lon))


class TestGeo:
    def test_haversine_known_distance(self):
        nyc = GeoPoint(40.7, -74.0)
        london = GeoPoint(51.5, -0.1)
        d = nyc.distance_km(london)
        assert 5400 < d < 5700  # ~5570 km

    def test_latency_scales_with_distance(self):
        a = GeoPoint(0, 0)
        assert a.latency_ms(GeoPoint(0, 50)) > a.latency_ms(GeoPoint(0, 5))

    def test_latency_floor(self):
        a = GeoPoint(10, 10)
        assert a.latency_ms(a) >= 0.2

    def test_region_weights_sum_to_one(self):
        assert abs(sum(region_weights().values()) - 1.0) < 1e-9

    def test_geo_model_deterministic(self):
        points1 = [GeoModel(random.Random(7)).random_point()
                   for _ in range(1)]
        points2 = [GeoModel(random.Random(7)).random_point()
                   for _ in range(1)]
        assert points1 == points2

    def test_points_within_bounds(self):
        model = GeoModel(random.Random(3))
        for _ in range(200):
            _, p = model.random_point()
            assert -90 <= p.lat <= 90
            assert -180 <= p.lon <= 180


class TestTopology:
    def test_add_and_query(self):
        t = Topology()
        t.add_node(node("a"))
        t.add_node(node("b", lat=10))
        link = t.connect("a", "b", LinkRelation.CUSTOMER)
        assert t.has_link("a", "b")
        assert t.neighbors("a") == ["b"]
        assert link.latency_ms > 0

    def test_duplicate_node_rejected(self):
        t = Topology()
        t.add_node(node("a"))
        with pytest.raises(ValueError):
            t.add_node(node("a"))

    def test_duplicate_link_rejected(self):
        t = Topology()
        t.add_node(node("a"))
        t.add_node(node("b"))
        t.connect("a", "b")
        with pytest.raises(ValueError):
            t.connect("b", "a")

    def test_self_loop_rejected(self):
        t = Topology()
        t.add_node(node("a"))
        with pytest.raises(ValueError):
            t.add_link(Link("a", "a", 1.0))

    def test_link_to_unknown_node_rejected(self):
        t = Topology()
        t.add_node(node("a"))
        with pytest.raises(KeyError):
            t.connect("a", "ghost")

    def test_relation_perspective(self):
        t = Topology()
        t.add_node(node("provider"))
        t.add_node(node("customer"))
        t.connect("provider", "customer", LinkRelation.CUSTOMER)
        link = t.link("provider", "customer")
        assert link.relation_from("provider") == LinkRelation.CUSTOMER
        assert link.relation_from("customer") == LinkRelation.PROVIDER

    def test_peer_relation_symmetric(self):
        t = Topology()
        t.add_node(node("a"))
        t.add_node(node("b"))
        t.connect("a", "b", LinkRelation.PEER)
        link = t.link("a", "b")
        assert link.relation_from("a") == link.relation_from("b")

    def test_bgp_neighbors_exclude_access(self):
        t = Topology()
        t.add_node(node("r"))
        t.add_node(node("r2"))
        t.add_node(node("h", kind=NodeKind.HOST))
        t.connect("r", "r2", LinkRelation.PEER)
        t.connect("r", "h", LinkRelation.ACCESS)
        assert t.bgp_neighbors("r") == ["r2"]

    def test_attachment_router(self):
        t = Topology()
        t.add_node(node("r"))
        t.add_node(node("h", kind=NodeKind.HOST))
        t.connect("r", "h", LinkRelation.ACCESS)
        assert t.attachment_router("h") == "r"
        t.add_node(node("lonely", kind=NodeKind.HOST))
        with pytest.raises(KeyError):
            t.attachment_router("lonely")

    def test_link_other(self):
        link = Link("a", "b", 1.0)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(KeyError):
            link.other("c")

    def test_hosts_and_routers_partition(self):
        t = Topology()
        t.add_node(node("r"))
        t.add_node(node("p", kind=NodeKind.POP_ROUTER))
        t.add_node(node("h", kind=NodeKind.HOST))
        assert {n.node_id for n in t.routers()} == {"r", "p"}
        assert {n.node_id for n in t.hosts()} == {"h"}
