"""Link failure semantics: session teardown, withdrawal, degradation."""

import random

import pytest

from repro.netsim import (
    EventLoop,
    GeoPoint,
    LinkRelation,
    Network,
    Node,
    NodeKind,
    Topology,
)
from repro.netsim.packet import Datagram


def build_line(*relations):
    t = Topology()
    n = len(relations) + 1
    for i in range(n):
        t.add_node(Node(f"r{i}", 100 + i, NodeKind.TRANSIT,
                        GeoPoint(0, i * 2)))
    for i, rel in enumerate(relations):
        t.connect(f"r{i}", f"r{i+1}", rel)
    return t


def make_network(topology, seed=1):
    loop = EventLoop()
    net = Network(loop, topology, random.Random(seed))
    net.build_speakers()
    return loop, net


class _Sink:
    def __init__(self, loop=None):
        self.loop = loop
        self.received = []
        self.times = []

    def handle_datagram(self, dgram):
        self.received.append(dgram)
        if self.loop is not None:
            self.times.append(self.loop.now)


def two_routers_two_hosts(seed=1):
    """h0 -- r0 -- r1 -- h1, with a sink listening on h1."""
    t = Topology()
    t.add_node(Node("r0", 100, NodeKind.TRANSIT, GeoPoint(0, 0)))
    t.add_node(Node("r1", 101, NodeKind.TRANSIT, GeoPoint(0, 2)))
    t.connect("r0", "r1", LinkRelation.CUSTOMER)
    t.add_node(Node("h0", 0, NodeKind.HOST, GeoPoint(0, 0)))
    t.add_node(Node("h1", 0, NodeKind.HOST, GeoPoint(0, 2)))
    t.connect("h0", "r0", LinkRelation.ACCESS)
    t.connect("h1", "r1", LinkRelation.ACCESS)
    loop = EventLoop()
    net = Network(loop, t, random.Random(seed))
    net.build_speakers()
    sink = _Sink(loop)
    net.attach_endpoint("h1", sink)
    return loop, net, sink


class TestLinkDownTearsSessionDown:
    def test_link_down_withdraws_routes_learned_over_it(self):
        # r0 - r1 - r2, r2 originates. Cutting r1-r2 must withdraw the
        # route everywhere, not just drop datagrams on the floor.
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        assert net.speaker("r0").best_route("p") is not None

        net.set_link_up("r1", "r2", False)
        loop.run_until(70)
        assert not net.speaker("r1").session_is_up("r2")
        assert net.speaker("r1").best_route("p") is None
        assert net.speaker("r0").best_route("p") is None
        assert net.fib_entry("r0", "p") is None

    def test_link_down_fails_over_to_other_origin(self):
        # Anycast from both ends of a line; cut the link toward the
        # preferred origin and traffic must reconverge onto the other.
        t = build_line(*[LinkRelation.CUSTOMER] * 3)
        loop, net = make_network(t)
        net.speaker("r0").originate("p")
        net.speaker("r3").originate("p")
        loop.run_until(10)
        # Gao-Rexford: r1 prefers the customer route toward r3.
        assert net.fib_entry("r1", "p") == "r2"

        net.set_link_up("r2", "r3", False)
        loop.run_until(70)
        # The customer path is gone; traffic reconverges toward r0.
        assert net.fib_entry("r2", "p") == "r1"
        assert net.fib_entry("r1", "p") == "r0"

    def test_link_up_restores_routes(self):
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)
        net.set_link_up("r1", "r2", False)
        loop.run_until(70)
        assert net.speaker("r0").best_route("p") is None

        net.set_link_up("r1", "r2", True)
        loop.run_until(140)
        assert net.speaker("r1").session_is_up("r2")
        assert net.speaker("r0").best_route("p") is not None
        assert net.fib_entry("r0", "p") == "r1"

    def test_set_link_up_is_idempotent(self):
        t = build_line(LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r1").originate("p")
        loop.run_until(10)
        updates_before = sum(s.updates_sent
                             for s in net.speakers().values())
        # Re-asserting the current state must not reset sessions or
        # trigger re-advertisement churn.
        net.set_link_up("r0", "r1", True)
        loop.run_until(20)
        updates_after = sum(s.updates_sent
                            for s in net.speakers().values())
        assert updates_after == updates_before


class TestSessionReset:
    def test_session_down_without_link_down(self):
        # BGP-only failure: the session drops, the link stays usable.
        t = build_line(LinkRelation.CUSTOMER, LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r2").originate("p")
        loop.run_until(10)

        net.speaker("r1").session_down("r2")
        net.speaker("r2").session_down("r1")
        loop.run_until(70)
        assert net.speaker("r0").best_route("p") is None

        net.speaker("r1").session_up("r2")
        net.speaker("r2").session_up("r1")
        loop.run_until(140)
        assert net.speaker("r0").best_route("p") is not None

    def test_updates_in_flight_at_reset_are_dropped(self):
        t = build_line(LinkRelation.CUSTOMER)
        loop, net = make_network(t)
        net.speaker("r1").originate("p")
        # Reset before the initial update can possibly deliver.
        net.speaker("r0").session_down("r1")
        net.speaker("r1").session_down("r0")
        loop.run_until(30)
        assert net.speaker("r0").best_route("p") is None


class TestLinkDegradation:
    def test_total_loss_drops_every_datagram(self):
        loop, net, sink = two_routers_two_hosts()
        loop.run_until(10)
        net.set_link_degraded("h1", "r1", loss=1.0)
        for _ in range(20):
            net.send(Datagram(src="h0", dst="h1", payload="x"))
        loop.run_until(20)
        assert sink.received == []
        assert net.stats.dropped_loss == 20

    def test_partial_loss_is_deterministic_per_seed(self):
        def deliver_count(seed):
            loop, net, sink = two_routers_two_hosts(seed)
            loop.run_until(10)
            net.set_link_degraded("h1", "r1", loss=0.5)
            for _ in range(40):
                net.send(Datagram(src="h0", dst="h1", payload="x"))
            loop.run_until(20)
            return len(sink.received)

        first = deliver_count(3)
        assert first == deliver_count(3)
        assert 0 < first < 40

    def test_extra_latency_slows_delivery(self):
        loop, net, sink = two_routers_two_hosts()
        loop.run_until(10)
        sent = loop.now
        net.send(Datagram(src="h0", dst="h1", payload="x"))
        loop.run_until(sent + 10)
        baseline = sink.times[-1] - sent

        net.set_link_degraded("r0", "r1", extra_latency_ms=200.0)
        sent = loop.now
        net.send(Datagram(src="h0", dst="h1", payload="x"))
        loop.run_until(sent + 10)
        slowed = sink.times[-1] - sent
        assert slowed >= baseline + 0.19

    def test_clearing_degradation_restores_delivery(self):
        loop, net, sink = two_routers_two_hosts()
        loop.run_until(10)
        net.set_link_degraded("h1", "r1", loss=1.0)
        net.send(Datagram(src="h0", dst="h1", payload="x"))
        loop.run_until(20)
        assert sink.received == []
        net.set_link_degraded("h1", "r1")   # back to healthy
        net.send(Datagram(src="h0", dst="h1", payload="y"))
        loop.run_until(40)
        assert [d.payload for d in sink.received] == ["y"]

    def test_loss_validation(self):
        loop, net, sink = two_routers_two_hosts()
        with pytest.raises(ValueError):
            net.set_link_degraded("r0", "r1", loss=1.5)

    def test_degrading_unfaulted_run_unchanged(self):
        # Declaring 0-loss degradation must not perturb the RNG stream:
        # a run that never draws loss is bit-identical to one that
        # never touched the API.
        def run(touch):
            loop, net, sink = two_routers_two_hosts(5)
            loop.run_until(10)
            if touch:
                net.set_link_degraded("r0", "r1", loss=0.0,
                                      extra_latency_ms=0.0)
            for _ in range(10):
                net.send(Datagram(src="h0", dst="h1", payload="x"))
            loop.run_until(20)
            return sink.times

        assert run(False) == run(True)
