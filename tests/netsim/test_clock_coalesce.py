"""Coalesced scheduling: one heap entry per same-tick burst,
observably identical to individual ``call_at`` calls.

The network layer batches same-tick, same-link deliveries through
``call_later_coalesced``; these tests pin the contract that makes the
optimization invisible — firing order, ``pending`` /
``events_processed`` accounting, and cancellation semantics all match
unbatched scheduling.
"""

import pytest

from repro.netsim.clock import EventLoop


class TestCoalescing:
    def test_consecutive_same_tick_share_one_heap_entry(self):
        loop = EventLoop()
        out = []
        h1 = loop.call_later_coalesced(1.0, out.append, "a")
        h2 = loop.call_later_coalesced(1.0, out.append, "b")
        h3 = loop.call_later_coalesced(1.0, out.append, "c")
        assert h1._entry is h2._entry is h3._entry
        assert loop.pending == 3            # logical members, not entries
        loop.run_until(2.0)
        assert out == ["a", "b", "c"]
        assert loop.pending == 0
        assert loop.events_processed == 3   # matches unbatched accounting

    def test_interleaved_schedule_breaks_the_batch(self):
        """A batch may only absorb while its entry is the most recently
        scheduled one — anything scheduled in between could legally fire
        between the members, so coalescing across it would reorder."""
        loop = EventLoop()
        out = []
        h1 = loop.call_later_coalesced(1.0, out.append, "a")
        loop.call_later(1.0, out.append, "x")     # same tick, other action
        h2 = loop.call_later_coalesced(1.0, out.append, "b")
        assert h1._entry is not h2._entry
        loop.run_until(2.0)
        assert out == ["a", "x", "b"]             # scheduling order preserved

    def test_different_time_or_action_never_coalesces(self):
        loop = EventLoop()
        out, other = [], []
        h1 = loop.call_later_coalesced(1.0, out.append, "a")
        h2 = loop.call_later_coalesced(2.0, out.append, "b")
        assert h1._entry is not h2._entry
        h3 = loop.call_later_coalesced(2.0, other.append, "c")
        assert h2._entry is not h3._entry
        loop.run_until(3.0)
        assert out == ["a", "b"] and other == ["c"]

    def test_firing_order_matches_unbatched(self):
        """Mixed coalesced/plain schedules fire in global scheduling
        order at equal timestamps."""
        batched, plain = EventLoop(), EventLoop()
        out_b, out_p = [], []
        for loop, out, coalesce in ((batched, out_b, True),
                                    (plain, out_p, False)):
            sched = (loop.call_later_coalesced if coalesce
                     else lambda d, a, x: loop.call_later(d, a, x))
            sched(1.0, out.append, 1)
            sched(1.0, out.append, 2)
            loop.call_later(1.0, out.append, 3)
            sched(1.0, out.append, 4)
            loop.run_until(2.0)
        assert out_b == out_p == [1, 2, 3, 4]
        assert batched.events_processed == plain.events_processed == 4


class TestBatchCancellation:
    def test_cancel_member_before_batch_runs(self):
        loop = EventLoop()
        out = []
        loop.call_later_coalesced(1.0, out.append, "a")
        victim = loop.call_later_coalesced(1.0, out.append, "b")
        loop.call_later_coalesced(1.0, out.append, "c")
        victim.cancel()
        assert victim.cancelled
        assert loop.pending == 2
        loop.run_until(2.0)
        assert out == ["a", "c"]
        assert loop.events_processed == 2

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        out = []
        loop.call_later_coalesced(1.0, out.append, "a")
        victim = loop.call_later_coalesced(1.0, out.append, "b")
        victim.cancel()
        victim.cancel()
        assert loop.pending == 1
        loop.run_until(2.0)
        assert out == ["a"]

    def test_cancelling_every_member_cancels_the_entry(self):
        loop = EventLoop()
        out = []
        h1 = loop.call_later_coalesced(1.0, out.append, "a")
        h2 = loop.call_later_coalesced(1.0, out.append, "b")
        h1.cancel()
        h2.cancel()
        assert loop.pending == 0
        loop.run_until(2.0)
        assert out == []
        assert loop.events_processed == 0

    def test_mid_batch_cancel_of_later_member(self):
        """A member's action may cancel a member later in the same
        batch; the later member must not run."""
        loop = EventLoop()
        out = []
        handles = {}
        def first(tag):
            out.append(tag)
            handles["b"].cancel()
        loop.call_later_coalesced(1.0, first, "a")
        handles["b"] = loop.call_later_coalesced(1.0, first, "b")
        loop.run_until(2.0)
        assert out == ["a"]

    def test_handle_reads_cancelled_after_run(self):
        # Documented quirk shared with EventHandle semantics: a consumed
        # slot is tombstoned, so .cancelled reads True once it has run.
        loop = EventLoop()
        h = loop.call_later_coalesced(1.0, lambda _: None, "a")
        loop.run_until(2.0)
        assert h.cancelled

    def test_stale_batch_reference_is_not_reused_after_fire(self):
        loop = EventLoop()
        out = []
        loop.call_later_coalesced(1.0, out.append, "a")
        loop.run_until(2.0)
        # Same action and an equal absolute time in the past must not
        # resurrect the fired entry.
        h = loop.call_later_coalesced(0.5, out.append, "b")
        loop.run_until(3.0)
        assert out == ["a", "b"]
        assert h.time == pytest.approx(2.5)


class TestValidation:
    def test_negative_delay_raises(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.call_later_coalesced(-0.1, lambda _: None, "a")

    def test_past_time_raises(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.call_at_coalesced(1.0, lambda _: None, "a")
