"""Tests for the discrete-event engine."""

import pytest

from repro.netsim import EventLoop, PeriodicTask


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        fired = []
        loop.call_at(2.0, lambda: fired.append("b"))
        loop.call_at(1.0, lambda: fired.append("a"))
        loop.call_at(3.0, lambda: fired.append("c"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_equal_times_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.call_at(1.0, lambda i=i: fired.append(i))
        loop.run()
        assert fired == list(range(10))

    def test_call_later(self):
        loop = EventLoop()
        seen = []
        loop.call_later(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_run_until_stops_and_advances(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: fired.append(1))
        loop.call_at(10.0, lambda: fired.append(10))
        loop.run_until(5.0)
        assert fired == [1]
        assert loop.now == 5.0
        loop.run_until(20.0)
        assert fired == [1, 10]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []
        assert handle.cancelled

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.call_at(5.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.call_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.call_later(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.call_later(1.0, lambda: chain(n + 1))

        loop.call_at(0.0, lambda: chain(0))
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 3.0


class TestPeriodicTask:
    def test_fires_at_period(self):
        loop = EventLoop()
        times = []
        task = PeriodicTask(loop, 2.0, lambda: times.append(loop.now))
        loop.run_until(7.0)
        assert times == [0.0, 2.0, 4.0, 6.0]
        task.stop()
        loop.run_until(20.0)
        assert len(times) == 4

    def test_start_delay(self):
        loop = EventLoop()
        times = []
        PeriodicTask(loop, 5.0, lambda: times.append(loop.now),
                     start_delay=1.0)
        loop.run_until(11.5)
        assert times == [1.0, 6.0, 11.0]

    def test_stop_inside_action(self):
        loop = EventLoop()
        count = [0]

        def action():
            count[0] += 1
            if count[0] == 2:
                task.stop()

        task = PeriodicTask(loop, 1.0, action)
        loop.run_until(10.0)
        assert count[0] == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicTask(EventLoop(), 0.0, lambda: None)
