"""Injector adapters against a live (small) deployment."""

import pytest

from repro.chaos import (
    Campaign,
    ChaosEngine,
    FaultKind,
    FaultSpec,
    Schedule,
    default_injectors,
)
from repro.chaos.injectors import ControlInjector, ServerInjector
from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineState


def small_deployment(seed=5):
    deployment = AkamaiDNSDeployment(DeploymentParams(
        seed=seed, n_pops=6, deployed_clouds=6, machines_per_pop=1,
        pops_per_cloud=2, n_edge_servers=6,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False))
    deployment.provision_enterprise("ex", "ex.net",
                                    "www IN A 203.0.113.7\n")
    deployment.settle(30)
    return deployment


@pytest.fixture(scope="module")
def shared():
    """One deployment reused by read-mostly tests (faults cleared)."""
    return small_deployment()


def spec(kind, target, duration=10.0, severity=1.0):
    return FaultSpec(kind, target, Schedule.once(0.0, duration),
                     severity=severity)


class TestDispatchTable:
    def test_every_kind_has_an_injector(self, shared):
        table = default_injectors(shared)
        assert set(table) == set(FaultKind)

    def test_unknown_kind_rejected_at_arm(self, shared):
        table = default_injectors(shared)
        del table[FaultKind.LINK_FLAP]
        engine = ChaosEngine(shared, injectors=table)
        campaign = Campaign("t", duration=10.0)
        campaign.add(spec(FaultKind.LINK_FLAP, "pop-0"))
        with pytest.raises(ValueError):
            engine.arm(campaign)

    def test_unknown_target_raises(self, shared):
        table = default_injectors(shared)
        with pytest.raises(ValueError):
            table[FaultKind.MACHINE_CRASH].inject(
                spec(FaultKind.MACHINE_CRASH, "no-such-pop"))


class TestNetsimInjector:
    def test_link_flap_downs_and_restores(self, shared):
        table = default_injectors(shared)
        injector = table[FaultKind.LINK_FLAP]
        neighbor = shared.internet.topology.bgp_neighbors("pop-0")[0]
        fault = spec(FaultKind.LINK_FLAP, "pop-0")
        injector.inject(fault)
        assert not shared.network.link_is_up("pop-0", neighbor)
        injector.clear(fault)
        assert shared.network.link_is_up("pop-0", neighbor)

    def test_explicit_link_target(self, shared):
        table = default_injectors(shared)
        neighbors = shared.internet.topology.bgp_neighbors("pop-1")
        fault = spec(FaultKind.LINK_FLAP, f"pop-1|{neighbors[0]}")
        table[FaultKind.LINK_FLAP].inject(fault)
        assert not shared.network.link_is_up("pop-1", neighbors[0])
        table[FaultKind.LINK_FLAP].clear(fault)

    def test_partition_downs_every_transit_link(self, shared):
        table = default_injectors(shared)
        fault = spec(FaultKind.PARTITION, "pop-2")
        neighbors = shared.internet.topology.bgp_neighbors("pop-2")
        table[FaultKind.PARTITION].inject(fault)
        assert all(not shared.network.link_is_up("pop-2", n)
                   for n in neighbors)
        table[FaultKind.PARTITION].clear(fault)
        assert all(shared.network.link_is_up("pop-2", n)
                   for n in neighbors)

    def test_bgp_reset_keeps_links_up(self, shared):
        table = default_injectors(shared)
        fault = spec(FaultKind.BGP_RESET, "pop-3")
        neighbors = shared.internet.topology.bgp_neighbors("pop-3")
        table[FaultKind.BGP_RESET].inject(fault)
        speaker = shared.network.speaker("pop-3")
        assert all(not speaker.session_is_up(n) for n in neighbors)
        assert all(shared.network.link_is_up("pop-3", n)
                   for n in neighbors)
        table[FaultKind.BGP_RESET].clear(fault)
        assert all(speaker.session_is_up(n) for n in neighbors)

    def test_link_degrade_severity_maps_to_loss(self, shared):
        table = default_injectors(shared)
        neighbor = shared.internet.topology.bgp_neighbors("pop-4")[0]
        fault = spec(FaultKind.LINK_DEGRADE, "pop-4", severity=0.4)
        table[FaultKind.LINK_DEGRADE].inject(fault)
        loss, extra = shared.network.link_degradation("pop-4", neighbor)
        assert loss == pytest.approx(0.4)
        assert extra == pytest.approx(40.0)
        table[FaultKind.LINK_DEGRADE].clear(fault)
        assert shared.network.link_degradation("pop-4", neighbor) \
            == (0.0, 0.0)


class TestServerInjector:
    def test_machine_crash_targets_pop_regulars_only(self):
        deployment = small_deployment()
        injector = ServerInjector(deployment)
        pop = sorted(deployment.pops)[0]
        injector.inject(spec(FaultKind.MACHINE_CRASH, pop))
        for dep in deployment.deployments_at(pop):
            if dep.input_delayed:
                assert dep.machine.state != MachineState.CRASHED
            else:
                assert dep.machine.state == MachineState.CRASHED

    def test_machine_crash_restart_timer_recovers(self):
        deployment = small_deployment()
        injector = ServerInjector(deployment)
        machine = deployment.regular_deployments()[0].machine
        injector.inject(spec(FaultKind.MACHINE_CRASH,
                             machine.machine_id))
        assert machine.state == MachineState.CRASHED
        deployment.settle(machine.config.restart_delay + 5.0)
        assert machine.state == MachineState.RUNNING

    def test_crash_loop_keeps_machine_down_until_cleared(self):
        deployment = small_deployment()
        injector = ServerInjector(deployment)
        machine = deployment.regular_deployments()[0].machine
        fault = spec(FaultKind.CRASH_LOOP, machine.machine_id)
        injector.inject(fault)
        # Across several restart periods the machine never stays up.
        up_ratio = 0
        for _ in range(6):
            deployment.settle(machine.config.restart_delay)
            if machine.state == MachineState.RUNNING:
                up_ratio += 1
        assert machine.state != MachineState.RUNNING or up_ratio <= 2

        injector.clear(fault)
        deployment.settle(machine.config.restart_delay * 2 + 10.0)
        assert machine.state == MachineState.RUNNING

    def test_slow_io_scales_and_restores_capacity(self):
        deployment = small_deployment()
        injector = ServerInjector(deployment)
        machine = deployment.regular_deployments()[0].machine
        io_before = machine.config.io_capacity_qps
        compute_before = machine.config.compute_capacity_qps
        fault = spec(FaultKind.SLOW_IO, machine.machine_id, severity=0.25)
        injector.inject(fault)
        assert machine.config.io_capacity_qps \
            == pytest.approx(io_before * 0.25)
        injector.clear(fault)
        assert machine.config.io_capacity_qps == pytest.approx(io_before)
        assert machine.config.compute_capacity_qps \
            == pytest.approx(compute_before)

    def test_slow_io_severity_validated(self, shared):
        injector = ServerInjector(shared)
        with pytest.raises(ValueError):
            injector.inject(spec(FaultKind.SLOW_IO, "pop-0",
                                 severity=2.0))


class TestControlInjector:
    def test_pubsub_partition_halts_staleness_clock(self):
        deployment = small_deployment()
        injector = ControlInjector(deployment)
        dep = deployment.regular_deployments()[0]
        fault = spec(FaultKind.PUBSUB_PARTITION, dep.machine.machine_id)

        injector.inject(fault)
        frozen_at = dep.machine.last_input_time
        deployment.settle(3 * deployment.params.metadata_heartbeat)
        assert dep.machine.last_input_time == frozen_at

        injector.clear(fault)
        deployment.settle(deployment.params.metadata_heartbeat + 5.0)
        assert dep.machine.last_input_time > frozen_at

    def test_metadata_freeze_platform_wide(self):
        deployment = small_deployment()
        injector = ControlInjector(deployment)
        fault = spec(FaultKind.METADATA_FREEZE, "platform")
        injector.inject(fault)
        # Messages published just before the freeze are still in
        # flight; drain them before snapshotting the staleness clocks.
        deployment.settle(25.0)
        inputs = [d.machine.last_input_time
                  for d in deployment.regular_deployments()]
        deployment.settle(3 * deployment.params.metadata_heartbeat)
        assert [d.machine.last_input_time
                for d in deployment.regular_deployments()] == inputs

        injector.clear(fault)
        deployment.settle(1.0)
        refreshed = [d.machine.last_input_time
                     for d in deployment.regular_deployments()]
        assert all(after > before
                   for after, before in zip(refreshed, inputs))

    def test_zone_corruption_serves_nxdomain_then_recovers(self):
        deployment = small_deployment()
        injector = ControlInjector(deployment)
        resolver = deployment.add_resolver("corruption-resolver")
        fault = spec(FaultKind.ZONE_CORRUPTION, "ex.net")

        injector.inject(fault)
        deployment.settle(25.0)   # CDN-channel delivery
        results = []
        resolver.resolve(name("www.ex.net"), RType.A, results.append)
        deployment.settle(10.0)
        assert results[0].rcode == RCode.NXDOMAIN

        injector.clear(fault)
        deployment.settle(25.0)
        resolver.cache.flush()
        resolver.resolve(name("www.ex.net"), RType.A, results.append)
        deployment.settle(10.0)
        assert results[1].addresses() == ["203.0.113.7"]

    def test_zone_corruption_unknown_zone_raises(self, shared):
        injector = ControlInjector(shared)
        with pytest.raises(ValueError):
            injector.inject(spec(FaultKind.ZONE_CORRUPTION,
                                 "nonexistent.net"))


class TestEngine:
    def test_events_logged_in_execution_order(self):
        deployment = small_deployment()
        engine = ChaosEngine(deployment)
        campaign = Campaign("order", duration=30.0)
        campaign.add(FaultSpec(FaultKind.LINK_FLAP, "pop-0",
                               Schedule.once(5.0, 10.0)))
        campaign.add(FaultSpec(FaultKind.MACHINE_CRASH, "pop-1",
                               Schedule.once(8.0, 10.0)))
        events = engine.run(campaign)
        kinds = [(e.action, e.spec.kind) for e in events]
        assert kinds == [
            ("inject", FaultKind.LINK_FLAP),
            ("inject", FaultKind.MACHINE_CRASH),
            ("clear", FaultKind.LINK_FLAP),
            ("clear", FaultKind.MACHINE_CRASH),
        ]
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_strict_engine_raises_on_bad_target(self):
        deployment = small_deployment()
        engine = ChaosEngine(deployment)
        campaign = Campaign("bad", duration=10.0)
        campaign.add(FaultSpec(FaultKind.MACHINE_CRASH, "missing-pop",
                               Schedule.once(1.0, 2.0)))
        engine.arm(campaign)
        with pytest.raises(ValueError):
            deployment.run_until(deployment.loop.now + 10.0)

    def test_strict_failure_disarms_remaining_edges(self):
        # A strict abort must cancel its not-yet-fired edges: leftover
        # callbacks would otherwise detonate inside later, unrelated
        # run_until calls on the shared loop.
        deployment = small_deployment()
        engine = ChaosEngine(deployment)
        campaign = Campaign("bad", duration=10.0)
        campaign.add(FaultSpec(FaultKind.MACHINE_CRASH, "missing-pop",
                               Schedule.once(1.0, 2.0)))
        engine.arm(campaign)
        with pytest.raises(ValueError):
            deployment.run_until(deployment.loop.now + 10.0)
        # The clear edge at t=3 was cancelled: advancing further is calm.
        deployment.settle(20.0)

    def test_lenient_engine_records_error_and_continues(self):
        deployment = small_deployment()
        engine = ChaosEngine(deployment, strict=False)
        campaign = Campaign("bad", duration=10.0)
        campaign.add(FaultSpec(FaultKind.MACHINE_CRASH, "missing-pop",
                               Schedule.once(1.0, 2.0)))
        events = engine.run(campaign)
        assert all(e.error for e in events)
        assert engine.clears() == []


class TestAttackInjector:
    def test_flood_requires_victim_zone_note(self, shared):
        from repro.chaos.injectors import AttackInjector
        injector = AttackInjector(shared)
        flood = spec(FaultKind.ATTACK_FLOOD, shared.clouds[0].prefix,
                     severity=100.0)
        with pytest.raises(ValueError):
            injector.inject(flood)

    def test_inject_is_keyed_and_idempotent(self, shared):
        from repro.chaos.injectors import AttackInjector
        injector = AttackInjector(shared)
        flood = FaultSpec(FaultKind.ATTACK_FLOOD, shared.clouds[0].prefix,
                          Schedule.once(0.0, 5.0), severity=100.0,
                          note="ex.net")
        injector.inject(flood)
        injector.inject(flood)      # same (target, note): no second flood
        assert len(injector._attacks) == 1
        injector.clear(flood)
        injector.clear(flood)       # already stopped: no-op
        assert injector._attacks == {}

    def test_flood_traffic_reaches_machines_and_stops(self, shared):
        from repro.chaos.injectors import AttackInjector
        injector = AttackInjector(shared)
        flood = FaultSpec(FaultKind.ATTACK_FLOOD, shared.clouds[0].prefix,
                          Schedule.once(0.0, 5.0), severity=200.0,
                          note="ex.net")
        def attack_received():
            return sum(m.metrics.attack_received
                       for m in shared.machines())

        before = attack_received()
        injector.inject(flood)
        shared.settle(3.0)
        during = attack_received()
        assert during > before
        injector.clear(flood)
        shared.settle(2.0)          # in-flight packets drain
        settled = attack_received()
        shared.settle(3.0)
        assert attack_received() == settled

    def test_sources_are_real_stub_routers(self, shared):
        from repro.chaos.injectors import AttackInjector
        injector = AttackInjector(shared, source_count=4)
        sources = injector.attack_sources()
        assert len(sources) == 4
        assert set(sources) <= set(shared.internet.stubs)
        # Deterministic slice: same deployment, same sources.
        assert sources == AttackInjector(shared, source_count=4) \
            .attack_sources()


class TestGrayInjector:
    def test_machine_target_sets_and_clears_the_seam(self, shared):
        table = default_injectors(shared)
        injector = table[FaultKind.GRAY_CORRUPT]
        machine = shared.regular_deployments()[0].machine
        fault = spec(FaultKind.GRAY_CORRUPT, machine.machine_id)
        injector.inject(fault)
        assert machine.gray_fault == ("corrupt", 1.0)
        injector.clear(fault)
        assert machine.gray_fault is None

    def test_pop_target_covers_all_its_machines(self, shared):
        table = default_injectors(shared)
        injector = table[FaultKind.GRAY_BLACKHOLE]
        fault = spec(FaultKind.GRAY_BLACKHOLE, "pop-0")
        injector.inject(fault)
        hit = [d.machine for d in shared.regular_deployments()
               if d.machine.machine_id.startswith("pop-0-")]
        assert hit
        assert all(m.gray_fault == ("blackhole", 1.0) for m in hit)
        injector.clear(fault)
        assert all(m.gray_fault is None for m in hit)

    def test_partial_drop_severity_must_be_a_fraction(self, shared):
        table = default_injectors(shared)
        injector = table[FaultKind.GRAY_PARTIAL_DROP]
        machine_id = shared.regular_deployments()[0].machine.machine_id
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                injector.inject(spec(FaultKind.GRAY_PARTIAL_DROP,
                                     machine_id, severity=bad))

    def test_health_probe_stays_green_under_gray_fault(self, shared):
        # The defining property: the chaos seam must never leak into
        # the in-process health probe, or the fault would not be gray.
        table = default_injectors(shared)
        injector = table[FaultKind.GRAY_CORRUPT]
        deployment = shared.regular_deployments()[0]
        fault = spec(FaultKind.GRAY_CORRUPT,
                     deployment.machine.machine_id)
        injector.inject(fault)
        try:
            assert deployment.agent.run_suite().healthy
        finally:
            injector.clear(fault)
