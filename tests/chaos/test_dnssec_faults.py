"""Tests for the DNSSEC chaos fault zone builders.

The two builders encode the PR's threat model split: a key mismatch is
statically detectable (the validator must reject it at publish time),
while a short-validity re-sign passes every static check and only goes
bogus as simulation time advances past the expiry horizon.
"""

from repro.chaos.injectors import expiring_signed_copy, mismatched_key_copy
from repro.dnscore import (
    A,
    RType,
    SOA,
    ValidationLimits,
    make_rrset,
    make_zone,
    name,
    validate_update,
)

ORIGIN = name("probe.akam.test")


def base_zone(serial=10):
    z = make_zone(ORIGIN,
                  SOA(name("ns1.akam.test"), name("admin.akam.test"),
                      serial, 7200, 3600, 1209600, 300),
                  [name("a.ns.akam.net")])
    for i in range(4):
        z.add_rrset(make_rrset(name(f"h{i}.probe.akam.test"), RType.A, 300,
                               [A(f"10.1.0.{i + 1}")]))
    return z


class TestExpiringSignedCopy:
    def test_passes_publish_time_validation(self):
        previous = base_zone()
        copy = expiring_signed_copy(previous, seed=5, now=100.0,
                                    validity=15.0)
        report = validate_update(copy, previous=previous,
                                 limits=ValidationLimits(now=100.0))
        assert not report.fatal, report.describe()
        assert copy.serial == previous.serial + 1

    def test_goes_bogus_after_the_validity_window(self):
        previous = base_zone()
        copy = expiring_signed_copy(previous, seed=5, now=100.0,
                                    validity=15.0)
        report = validate_update(copy, previous=previous,
                                 limits=ValidationLimits(now=116.0))
        assert "signature-expired" in report.fatal_rules()

    def test_content_preserved_minus_old_dnssec(self):
        previous = base_zone()
        copy = expiring_signed_copy(previous, seed=5, now=0.0, validity=30.0)
        for i in range(4):
            assert copy.get_rrset(name(f"h{i}.probe.akam.test"),
                                  RType.A) is not None


class TestMismatchedKeyCopy:
    def test_statically_rejected_by_validator(self):
        previous = base_zone()
        copy = mismatched_key_copy(previous, seed=5, now=100.0)
        report = validate_update(copy, previous=previous,
                                 limits=ValidationLimits(now=100.0))
        assert "rrsig-key-mismatch" in report.fatal_rules()

    def test_rejected_even_without_a_clock(self):
        # The mismatch is structural; the machine-side guard (which
        # runs without a clock) must catch it too.
        copy = mismatched_key_copy(base_zone(), seed=5, now=100.0)
        report = validate_update(copy)
        assert "rrsig-key-mismatch" in report.fatal_rules()
