"""Tests for the declarative fault model: schedules and campaigns."""

import random

import pytest

from repro.chaos import Campaign, FaultKind, FaultSpec, Schedule


def rng():
    return random.Random(0)


class TestSchedule:
    def test_once(self):
        s = Schedule.once(10.0, 5.0)
        assert s.windows(rng()) == [(10.0, 15.0)]

    def test_periodic(self):
        s = Schedule.periodic(10.0, period=10.0, duration=4.0, count=3)
        assert s.windows(rng()) == [(10.0, 14.0), (20.0, 24.0),
                                    (30.0, 34.0)]

    def test_periodic_requires_clear_before_refire(self):
        with pytest.raises(ValueError):
            Schedule.periodic(0.0, period=5.0, duration=5.0, count=2)

    def test_random_is_seed_deterministic(self):
        s = Schedule.random(0.0, window=100.0, duration=2.0, count=5)
        assert s.windows(random.Random(9)) == s.windows(random.Random(9))
        assert s.windows(random.Random(9)) != s.windows(random.Random(10))

    def test_random_windows_sorted_and_bounded(self):
        s = Schedule.random(50.0, window=30.0, duration=1.0, count=8)
        windows = s.windows(rng())
        starts = [w[0] for w in windows]
        assert starts == sorted(starts)
        assert all(50.0 <= start < 80.0 for start in starts)

    def test_random_requires_positive_window(self):
        with pytest.raises(ValueError):
            Schedule.random(0.0, window=0.0, duration=1.0, count=1)

    def test_overlapping_windows_merge(self):
        # Random draws can overlap; the expansion must never produce
        # inject-while-injected sequences.
        s = Schedule.random(0.0, window=5.0, duration=10.0, count=4)
        windows = s.windows(rng())
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert start > end


class TestCampaign:
    def spec(self, schedule, kind=FaultKind.LINK_FLAP, target="pop-0"):
        return FaultSpec(kind, target, schedule)

    def test_timeline_sorted_with_clears_first_on_ties(self):
        c = Campaign("t", duration=100.0)
        c.add(self.spec(Schedule.once(10.0, 10.0)))
        c.add(self.spec(Schedule.once(20.0, 10.0), target="pop-1"))
        edges = c.timeline()
        times = [t for t, _, _ in edges]
        assert times == sorted(times)
        at_20 = [(action, s.target) for t, action, s in edges if t == 20.0]
        # pop-0 clears before pop-1 injects at the shared instant.
        assert at_20 == [("clear", "pop-0"), ("inject", "pop-1")]

    def test_timeline_clamps_to_duration(self):
        c = Campaign("t", duration=25.0)
        c.add(self.spec(Schedule.once(20.0, 50.0)))
        c.add(self.spec(Schedule.once(30.0, 5.0), target="pop-1"))
        edges = c.timeline()
        # The second fault starts past the end: dropped entirely.
        assert all(s.target == "pop-0" for _, _, s in edges)
        assert edges[-1] == (25.0, "clear", c.faults[0])

    def test_every_inject_has_a_clear(self):
        c = Campaign("t", duration=60.0, seed=4)
        c.add(self.spec(Schedule.random(0.0, window=55.0, duration=20.0,
                                        count=4)))
        edges = c.timeline()
        injects = sum(1 for _, action, _ in edges if action == "inject")
        clears = sum(1 for _, action, _ in edges if action == "clear")
        assert injects == clears > 0

    def test_timeline_is_pure_function_of_seed(self):
        def build(seed):
            c = Campaign("t", duration=60.0, seed=seed)
            c.add(self.spec(Schedule.random(0.0, window=50.0,
                                            duration=3.0, count=3)))
            return [(t, a) for t, a, _ in c.timeline()]

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_last_clear_time(self):
        c = Campaign("t", duration=100.0)
        assert c.last_clear_time() == 0.0
        c.add(self.spec(Schedule.once(10.0, 5.0)))
        c.add(self.spec(Schedule.once(30.0, 40.0), target="pop-1"))
        assert c.last_clear_time() == 70.0

    def test_describe(self):
        spec = FaultSpec(FaultKind.SLOW_IO, "pop-3-m1",
                         Schedule.once(0.0, 1.0), note="disk brownout")
        assert "slow_io@pop-3-m1" in spec.describe()
        assert "disk brownout" in spec.describe()
