"""Unit tests for the SLO probe: grading, windows, time-to-recovery.

Uses a scripted stand-in for the recursive resolver so outcomes are an
exact function of probe send time — no network, no platform.
"""

import pytest

from repro.chaos import SLOProbe
from repro.dnscore import RCode, RType
from repro.dnscore.rdata import A
from repro.dnscore.records import ResourceRecord, RRset
from repro.dnscore.rrtypes import RClass
from repro.netsim import EventLoop
from repro.resolver.resolver import ResolutionResult


def answer_rrset(qname):
    rrset = RRset(qname, RType.A)
    rrset.add(ResourceRecord(qname, RType.A, RClass.IN, 300,
                             A("203.0.113.9")))
    return rrset


class ScriptedResolver:
    """Answers each probe according to ``mode(sent_at)``.

    Modes: "ok" (fast NOERROR answer), "servfail" (fast SERVFAIL with
    two upstream timeouts), "slow" (NOERROR but far past the deadline).
    """

    def __init__(self, loop, mode=None, latency=0.05):
        self.loop = loop
        self.mode = mode or (lambda sent_at: "ok")
        self.latency = latency

    def resolve(self, qname, qtype, callback):
        sent = self.loop.now
        mode = self.mode(sent)
        delay = 5.0 if mode == "slow" else self.latency

        def finish():
            if mode == "servfail":
                result = ResolutionResult(qname, qtype, RCode.SERVFAIL,
                                          started_at=sent,
                                          finished_at=self.loop.now,
                                          timeouts=2)
            else:
                result = ResolutionResult(qname, qtype, RCode.NOERROR,
                                          answers=[answer_rrset(qname)],
                                          started_at=sent,
                                          finished_at=self.loop.now)
            callback(result)

        self.loop.call_later(delay, finish)


def run_probe(mode=None, until=20.0, period=0.5, window=5.0):
    loop = EventLoop()
    probe = SLOProbe(loop, ScriptedResolver(loop, mode), "probe.net",
                     period=period, window=window)
    probe.start()
    loop.run_until(until)
    probe.stop()
    loop.run_until(until + 6.0)
    return probe.report()


class TestGrading:
    def test_healthy_run_is_fully_available(self):
        report = run_probe()
        assert report.total_probes > 30
        assert report.overall_availability == 1.0
        assert report.worst_window_availability == 1.0
        assert report.total_servfails == 0
        assert report.total_timeouts == 0

    def test_servfails_counted_and_window_dips(self):
        report = run_probe(
            lambda t: "servfail" if 5.0 <= t < 10.0 else "ok")
        assert report.overall_availability < 1.0
        assert report.availability_between(5.0, 10.0) == 0.0
        assert report.availability_between(0.0, 5.0) == 1.0
        assert report.total_servfails == 10
        assert report.total_timeouts == 20
        # Exactly the window covering the outage goes dark.
        availabilities = [w.availability for w in report.windows]
        assert 0.0 in availabilities

    def test_slow_answers_violate_deadline_without_servfail(self):
        # NOERROR past the answer deadline: unavailable to the client,
        # but not an error-code failure.
        report = run_probe(
            lambda t: "slow" if 5.0 <= t < 8.0 else "ok", until=15.0)
        assert report.overall_availability < 1.0
        assert report.total_servfails == 0

    def test_mean_latency_tracks_answers(self):
        report = run_probe()
        graded = [w for w in report.windows if w.total]
        assert all(w.mean_latency == pytest.approx(0.05) for w in graded)


class TestWindows:
    def test_windows_tile_the_run(self):
        report = run_probe(until=12.0, window=5.0)
        assert [(w.start, w.end) for w in report.windows] == \
            [(0.0, 5.0), (5.0, 10.0), (10.0, 15.0)]
        assert report.total_probes == len(report.outcomes)

    def test_empty_report(self):
        loop = EventLoop()
        probe = SLOProbe(loop, ScriptedResolver(loop), "probe.net")
        report = probe.report()
        assert report.windows == []
        assert report.overall_availability == 1.0
        assert report.worst_window_availability == 1.0
        assert report.total_probes == 0

    def test_stop_halts_probing(self):
        loop = EventLoop()
        probe = SLOProbe(loop, ScriptedResolver(loop), "probe.net",
                         period=0.5)
        probe.start()
        loop.run_until(5.0)
        probe.stop()
        loop.run_until(6.0)          # drain in-flight callbacks
        count = len(probe.outcomes)
        loop.run_until(20.0)
        assert len(probe.outcomes) == count

    def test_invalid_cadence_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            SLOProbe(loop, ScriptedResolver(loop), "probe.net", period=0.0)
        with pytest.raises(ValueError):
            SLOProbe(loop, ScriptedResolver(loop), "probe.net", window=-1.0)


class TestTimeToRecovery:
    def outage_report(self):
        # Fail in [5, 15) except one lucky success at exactly t=8.
        return run_probe(
            lambda t: "ok" if t == 8.0 or not 5.0 <= t < 15.0
            else "servfail",
            until=25.0)

    def test_lucky_answer_in_failing_stretch_is_not_recovery(self):
        report = self.outage_report()
        # The t=8 success is followed by failures within stable_for:
        # recovery is the stable stretch starting at t=15.
        assert report.time_to_recovery(5.0) == pytest.approx(10.0)

    def test_recovery_at_clear_instant_is_zero(self):
        report = self.outage_report()
        assert report.time_to_recovery(15.0) == pytest.approx(0.0)

    def test_horizon_bounds_the_search(self):
        report = self.outage_report()
        assert report.time_to_recovery(5.0, until=12.0) is None

    def test_never_recovers_returns_none(self):
        report = run_probe(
            lambda t: "servfail" if t >= 5.0 else "ok", until=25.0)
        assert report.time_to_recovery(5.0) is None
