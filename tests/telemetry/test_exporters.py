"""Exporters: JSONL ordering, Chrome trace validity, dashboard text."""

import io
import json

from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.alerts import GaugeDetector
from repro.telemetry.exporters import (
    chrome_trace,
    dashboard,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)


def _session_with_activity():
    """A hand-built session: two epochs, a trace tree, and one alert."""
    telemetry = Telemetry(TelemetryConfig(trace_sample_rate=1.0))
    telemetry.alerts.add(
        GaugeDetector("queue-depth", window=1.0, threshold=10.0),
        "queue_depth")
    tracer = telemetry.tracer

    tracer.epoch = 1
    telemetry.epoch = 1
    telemetry.alerts.reset_epoch(1)
    root = tracer.start_trace("machine.process", "machine", 0.5)
    child = tracer.start_span(root, "engine.respond", "engine", 0.6)
    tracer.instant(root.trace_id, "net.delivered", "net", 0.55, hops=3)
    tracer.finish(child, 0.7)
    tracer.finish(root, 0.8)
    telemetry.queue_enqueued("m1", 0, 42, 0.65)
    telemetry.query_received("m1", 0.5)
    telemetry.alerts.observe("queue_depth", 0.65, 42.0)

    tracer.epoch = 2
    telemetry.epoch = 2
    telemetry.alerts.reset_epoch(2)
    other = tracer.start_trace("machine.process", "machine", 0.1)
    tracer.finish(other, 0.2)
    telemetry.alerts.observe("queue_depth", 0.5, 42.0)
    telemetry.alerts.finalize(2.0)
    return telemetry


class TestJsonl:
    def test_lines_parse_and_sort_stable(self):
        telemetry = _session_with_activity()
        lines = jsonl_events(telemetry)
        rows = [json.loads(line) for line in lines]
        assert {r["kind"] for r in rows} == {"span", "instant", "alert"}
        keys = [(r["epoch"], r.get("start", r.get("time",
                                                  r.get("raised_at"))))
                for r in rows]
        assert keys == sorted(keys)
        assert lines == jsonl_events(telemetry)  # reproducible

    def test_write_returns_line_count(self):
        telemetry = _session_with_activity()
        stream = io.StringIO()
        count = write_jsonl(telemetry, stream)
        written = stream.getvalue().splitlines()
        assert len(written) == count == len(jsonl_events(telemetry))


class TestChromeTrace:
    def test_document_shape(self):
        telemetry = _session_with_activity()
        doc = chrome_trace(telemetry)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        # One process per epoch; spans carry microsecond durations.
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {1, 2}
        root = next(e for e in spans if e["args"]["parent_id"] is None
                    and e["pid"] == 1)
        assert root["ts"] == 0.5 * 1e6 and root["dur"] == \
            (0.8 - 0.5) * 1e6
        child = next(e for e in spans
                     if e["args"]["parent_id"] == root["args"]["span_id"])
        assert child["cat"] == "engine"
        alerts = [e for e in events if e.get("cat") == "alerts"]
        assert [e["name"] for e in alerts] == ["ALERT queue-depth"]

    def test_thread_metadata_names_components(self):
        doc = chrome_trace(_session_with_activity())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        named = {(e["pid"], e["args"]["name"]) for e in meta}
        assert (1, "machine") in named and (1, "engine") in named

    def test_round_trips_through_json(self):
        telemetry = _session_with_activity()
        stream = io.StringIO()
        count = write_chrome_trace(telemetry, stream)
        parsed = json.loads(stream.getvalue())
        assert len(parsed["traceEvents"]) == count
        assert parsed["otherData"]["source"] == "repro.telemetry"


class TestDashboard:
    def test_renders_counters_and_alerts(self):
        text = dashboard(_session_with_activity())
        assert "== telemetry dashboard ==" in text
        assert "queries_received_total{machine=m1}" in text
        assert "ALERT" not in text          # dashboard is not the trace
        assert "queue-depth" in text        # alert log line

    def test_empty_session_renders(self):
        text = dashboard(Telemetry())
        assert "(none raised)" in text
