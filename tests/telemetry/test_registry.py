"""Metrics registry: counters, gauges, histogram quantile round-trip."""

import math

import pytest

from repro.telemetry.registry import (
    _BUCKET_BASE,
    Histogram,
    MetricsRegistry,
)

#: Quantile readout is the geometric midpoint of the covering bucket,
#: so the relative error is bounded by sqrt(base).
_REL_ERROR = math.sqrt(_BUCKET_BASE)


class TestCounterGauge:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("queries_total").labels()
        c.inc()
        c.inc(3.0)
        assert reg.snapshot()["counters"]["queries_total"] == 4.0

    def test_gauge_tracks_extremes(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth").labels()
        for v in (3.0, 9.0, 1.0):
            g.set(v)
        snap = reg.snapshot()["gauges"]["depth"]
        assert snap == {"value": 1.0, "max": 9.0, "min": 1.0}

    def test_labeled_series_sorted(self):
        reg = MetricsRegistry()
        fam = reg.counter("rcodes", labelnames=("machine", "rcode"))
        fam.labels("m2", "NOERROR").inc()
        fam.labels("m1", "SERVFAIL").inc()
        fam.labels("m1", "NOERROR").inc()
        assert [key for key, _ in fam.items()] == [
            ("m1", "NOERROR"), ("m1", "SERVFAIL"), ("m2", "NOERROR")]
        keys = list(reg.snapshot()["counters"])
        assert keys == sorted(keys)
        assert "rcodes{machine=m1,rcode=NOERROR}" in keys

    def test_label_arity_enforced(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labelnames=("a",))
        with pytest.raises(ValueError):
            fam.labels("x", "y")

    def test_schema_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.gauge("m", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("m", labelnames=("b",))
        # Same schema re-registration returns the same family.
        assert reg.counter("m", labelnames=("a",)) is reg.get("m")


class TestHistogram:
    def test_quantile_round_trip(self):
        """Every recorded value reads back within the bucket error bound."""
        h = Histogram()
        values = [0.0001 * (1.17 ** i) for i in range(80)]  # 100µs..~30s
        for v in values:
            h.record(v)
        values.sort()
        for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99):
            exact = values[min(len(values) - 1,
                               int(q * len(values)))]
            approx = h.quantile(q)
            assert approx / exact < _REL_ERROR * 1.2
            assert exact / approx < _REL_ERROR * 1.2

    def test_extremes_exact(self):
        h = Histogram()
        for v in (2.0, 3.0, 5.0):
            h.record(v)
        assert h.quantile(0.0) == 2.0
        assert h.quantile(1.0) == 5.0

    def test_zero_and_negative_values_counted(self):
        h = Histogram()
        h.record(0.0)
        h.record(1.0)
        assert h.count == 2
        assert h.zeros == 1
        assert h.quantile(0.25) == 0.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.snapshot() == {"count": 0, "sum": 0.0}

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency").labels()
        for v in (0.01, 0.02, 0.04, 0.08):
            h.record(v)
        snap = reg.snapshot()["histograms"]["latency"]
        assert snap["count"] == 4
        assert snap["min"] == 0.01 and snap["max"] == 0.08
        assert snap["p50"] <= snap["p90"] <= snap["p99"]
        assert list(snap["buckets"]) == sorted(snap["buckets"],
                                               key=int)
