"""Tracer: span parenting, deterministic head sampling, span budget."""

from repro.telemetry.trace import Tracer


def _tracer(rate=1.0, **kwargs):
    return Tracer(sample_rate=rate, seed=7, **kwargs)


class TestParenting:
    def test_root_and_children(self):
        t = _tracer()
        root = t.start_trace("resolver.resolve", "resolver", 1.0)
        assert root.parent_id is None
        a = t.start_span(root, "resolver.attempt", "resolver", 1.1)
        b = t.start_span(root, "resolver.attempt", "resolver", 1.4)
        leaf = t.start_span(a, "machine.process", "machine", 1.2)
        for span, end in ((leaf, 1.3), (a, 1.35), (b, 1.6), (root, 1.7)):
            t.finish(span, end)
        assert {s.span_id for s in t.children_of(root)} == \
            {a.span_id, b.span_id}
        assert t.children_of(a) == [leaf]
        assert all(s.trace_id == root.trace_id
                   for s in (a, b, leaf))

    def test_trace_spans_ordered_by_start(self):
        t = _tracer()
        root = t.start_trace("q", "resolver", 5.0)
        late = t.start_span(root, "late", "net", 9.0)
        early = t.start_span(root, "early", "net", 6.0)
        for span in (late, early, root):
            t.finish(span, 10.0)
        names = [s.name for s in t.trace_spans(root.trace_id)]
        assert names == ["q", "early", "late"]

    def test_duration(self):
        t = _tracer()
        span = t.start_trace("q", "machine", 2.0)
        assert span.duration == 0.0
        t.finish(span, 2.5)
        assert span.duration == 0.5


class TestSampling:
    def test_rate_zero_records_nothing(self):
        t = _tracer(rate=0.0)
        assert t.start_trace("q", "machine", 0.0) is None
        assert t.roots_started == 1
        assert t.roots_sampled == 0

    def test_rate_one_keeps_everything(self):
        t = _tracer(rate=1.0)
        for i in range(50):
            assert t.start_trace("q", "machine", float(i)) is not None
        assert t.roots_sampled == 50

    def test_sampling_deterministic_per_seed(self):
        def sampled_set(seed):
            t = Tracer(sample_rate=0.3, seed=seed)
            return [t.start_trace("q", "m", float(i)) is not None
                    for i in range(200)]

        assert sampled_set(7) == sampled_set(7)
        assert sampled_set(7) != sampled_set(8)
        kept = sum(sampled_set(7))
        assert 30 <= kept <= 90  # ~30% of 200

    def test_invalid_rate_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestBudget:
    def test_overflow_counted_not_kept(self):
        t = _tracer(max_spans=3)
        for i in range(5):
            span = t.start_trace("q", "m", float(i))
            t.finish(span, float(i) + 0.1)
        assert len(t.spans) == 3
        assert t.dropped_spans == 2

    def test_instant_overflow(self):
        t = _tracer(max_spans=2)
        for i in range(4):
            t.instant(1, "net.delivered", "net", float(i))
        assert len(t.events) == 2
        assert t.dropped_spans == 2
