"""Enabling telemetry must not change any result, byte for byte.

The passive-observation contract: hooks never schedule events, never
consume simulator RNG streams, never mutate simulator state. These
tests run the same workload with telemetry off and with a full-sampling
session active, and require identical serialized results — on the
synthetic machine path (fig10 testbed: queues, filters, firewall,
engine) and on the full resolver path (deployment: resolver, network,
PoP ECMP, machines).
"""

import json

from repro.dnscore import RType, name
from repro.experiments import fig10_nxdomain
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.telemetry import (
    Telemetry,
    TelemetryConfig,
    standard_detectors,
)
from repro.telemetry import state as telemetry_state


def _full_session():
    telemetry = Telemetry(TelemetryConfig(trace_sample_rate=1.0))
    standard_detectors(telemetry.alerts)
    return telemetry


class TestMachinePath:
    _PARAMS = fig10_nxdomain.Fig10Params(
        attack_rates=(0.0, 1_500.0),
        measure_seconds=4.0, warmup_seconds=2.0)

    @staticmethod
    def _serialize(result):
        return json.dumps(result.to_dict(include_series=True),
                          sort_keys=True).encode()

    def test_fig10_byte_identical_with_full_telemetry(self):
        baseline = self._serialize(fig10_nxdomain.run(self._PARAMS))
        telemetry = _full_session()
        with telemetry_state.session(telemetry):
            observed = self._serialize(fig10_nxdomain.run(self._PARAMS))
        assert observed == baseline
        # ... and the session really watched the run, it didn't no-op.
        assert telemetry.epoch == 4    # one world per (rate, config)
        assert telemetry.tracer.roots_sampled > 0
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["queries_received_total{machine=testbed-ns}"] > 0
        assert telemetry.alerts.first_raise_after(
            0.0, name="nxdomain-ratio") is not None


class TestResolverPath:
    @staticmethod
    def _resolve_all():
        dep = AkamaiDNSDeployment(DeploymentParams(
            seed=5, n_pops=8, deployed_clouds=8, machines_per_pop=1,
            pops_per_cloud=2, n_edge_servers=8,
            internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
            filters_enabled=False))
        dep.provision_enterprise("acme", "acme.net",
                                 "www IN A 203.0.113.10\n")
        dep.settle(30)
        resolver = dep.add_resolver("t-res")
        results = []
        for qname in ("www.acme.net", "missing.acme.net"):
            resolver.resolve(name(qname), RType.A, results.append)
            dep.settle(20)
        return [(r.rcode, round(r.duration, 9), r.timeouts)
                for r in results]

    def test_resolver_path_identical_with_full_telemetry(self):
        baseline = self._resolve_all()
        telemetry = _full_session()
        with telemetry_state.session(telemetry):
            observed = self._resolve_all()
        assert observed == baseline
        # The resolver path produced full span trees: root resolution
        # spans with machine.process children hanging off the attempts.
        roots = [s for s in telemetry.tracer.spans
                 if s.parent_id is None and s.name == "resolver.resolve"]
        assert roots
        components = {s.component for s in telemetry.tracer.spans}
        assert {"resolver", "machine"} <= components
        instants = {e.name for e in telemetry.tracer.events}
        assert {"net.delivered", "pop.ecmp", "engine.respond"} <= instants
