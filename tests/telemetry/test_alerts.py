"""Alert pipeline: hysteresis (no flapping), gap windows, queries."""

import pytest

from repro.telemetry.alerts import (
    AlertManager,
    AlertSeverity,
    GaugeDetector,
    RateDetector,
    RatioDetector,
)


def _managed(detector, key="feed"):
    manager = AlertManager()
    manager.add(detector, key)
    return manager


class TestHysteresis:
    def test_sawtooth_across_threshold_does_not_flap(self):
        """Peak oscillating between raise and band: one alert, no churn.

        Threshold 10, clear floor 8 (default 0.8x): a sawtooth of 11 /
        9 / 11 / 9 ... crosses the raise threshold every other window
        but never drops below the clear floor, so the alert must raise
        exactly once and never clear.
        """
        det = GaugeDetector("depth", window=1.0, threshold=10.0)
        manager = _managed(det)
        for i in range(20):
            manager.observe("feed", i + 0.5, 11.0 if i % 2 == 0 else 9.0)
        manager.finalize(20.0)
        assert len(manager.alerts) == 1
        assert manager.alerts[0].active
        assert det.firing

    def test_clears_only_below_clear_threshold(self):
        det = GaugeDetector("depth", window=1.0, threshold=10.0,
                            clear_windows=2)
        manager = _managed(det)
        values = [12.0, 12.0,          # raise
                  9.0, 9.0, 9.0, 9.0,  # band: still firing
                  5.0, 5.0,            # two calm windows: clear
                  12.0]                # fresh breach: raise again
        for i, value in enumerate(values):
            manager.observe("feed", i + 0.5, value)
        manager.finalize(float(len(values)))
        assert [a.active for a in manager.alerts] == [False, True]
        first = manager.alerts[0]
        assert first.raised_at == 1.0
        assert first.cleared_at == 8.0

    def test_for_windows_debounces_single_spike(self):
        det = RateDetector("qps", window=1.0, threshold=100.0,
                           for_windows=2)
        manager = _managed(det)
        # One hot window surrounded by quiet ones: no alert.
        for i in range(150):
            manager.observe("feed", 3.0 + i * 0.005, 1.0)
        manager.finalize(10.0)
        assert manager.alerts == []
        # Two consecutive hot windows: alert.
        for i in range(300):
            manager.observe("feed", 11.0 + i * 0.006, 1.0)
        manager.finalize(20.0)
        assert len(manager.alerts) == 1

    def test_band_resets_breach_streak(self):
        det = GaugeDetector("depth", window=1.0, threshold=10.0,
                            for_windows=2)
        manager = _managed(det)
        # breach, band, breach, band...: streak never reaches 2.
        for i, value in enumerate([11.0, 9.0, 11.0, 9.0, 11.0, 9.0]):
            manager.observe("feed", i + 0.5, value)
        manager.finalize(6.0)
        assert manager.alerts == []

    def test_invalid_clear_threshold(self):
        with pytest.raises(ValueError):
            GaugeDetector("d", window=1.0, threshold=5.0,
                          clear_threshold=6.0)


class TestWindows:
    def test_silent_gap_clears_rate_alert(self):
        """A stream going quiet must clear a rate alert, not freeze it."""
        det = RateDetector("qps", window=1.0, threshold=5.0)
        manager = _managed(det)
        for i in range(10):
            manager.observe("feed", 0.0 + i * 0.05, 1.0)  # 10/s: breach
        # Next observation lands 6 windows later: the gap windows are
        # judged as zero and the alert clears.
        manager.observe("feed", 7.5, 1.0)
        assert len(manager.alerts) == 1
        assert not manager.alerts[0].active

    def test_ratio_min_count_guards_idle_windows(self):
        det = RatioDetector("nxd", window=1.0, threshold=0.3,
                            min_count=10)
        manager = _managed(det)
        manager.observe("feed", 0.5, 1.0)  # 1 hit alone: not judged 100%
        manager.finalize(2.0)
        assert manager.alerts == []

    def test_finalize_flushes_trailing_window(self):
        det = GaugeDetector("depth", window=1.0, threshold=10.0)
        manager = _managed(det)
        manager.observe("feed", 0.5, 50.0)
        assert manager.alerts == []       # window still open
        manager.finalize(1.0)
        assert len(manager.alerts) == 1


class TestManager:
    def test_feed_routing_and_unknown_keys(self):
        det = GaugeDetector("depth", window=1.0, threshold=10.0)
        manager = _managed(det, "queue_depth")
        manager.observe("other_feed", 0.5, 99.0)  # ignored
        manager.finalize(1.0)
        assert manager.alerts == []

    def test_add_requires_feed_key(self):
        manager = AlertManager()
        with pytest.raises(ValueError):
            manager.add(GaugeDetector("d", window=1.0, threshold=1.0))

    def test_first_raise_after(self):
        manager = AlertManager()
        manager.add(GaugeDetector("a", window=1.0, threshold=10.0), "x")
        manager.add(GaugeDetector("b", window=1.0, threshold=10.0,
                                  severity=AlertSeverity.CRITICAL), "y")
        manager.observe("x", 0.5, 20.0)
        manager.observe("y", 3.5, 20.0)
        manager.finalize(5.0)
        assert manager.first_raise_after(0.0).name == "a"
        assert manager.first_raise_after(0.0, name="b").raised_at == 4.0
        assert manager.first_raise_after(10.0) is None

    def test_callbacks_fire_on_raise_and_clear(self):
        det = GaugeDetector("depth", window=1.0, threshold=10.0,
                            clear_windows=1)
        manager = _managed(det)
        seen = []
        manager.on_raise.append(lambda a: seen.append(("raise", a.name)))
        manager.on_clear.append(lambda a: seen.append(("clear", a.name)))
        for i, value in enumerate([20.0, 1.0]):
            manager.observe("feed", i + 0.5, value)
        manager.finalize(2.0)
        assert seen == [("raise", "depth"), ("clear", "depth")]

    def test_reset_epoch_restarts_windows(self):
        det = RateDetector("qps", window=1.0, threshold=5.0)
        manager = _managed(det)
        for i in range(10):
            manager.observe("feed", 100.0 + i * 0.05, 1.0)
        manager.reset_epoch(2)
        # New epoch's clock restarts at zero; old partial window must
        # not leak into the new world's first window.
        manager.observe("feed", 0.5, 1.0)
        manager.finalize(1.0)
        assert manager.alerts == []
