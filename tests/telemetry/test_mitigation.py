"""Alert-driven mitigation: explicit opt-in, engage/stand-down cycle."""

import pytest

from repro.dnscore import RType, name
from repro.filters.base import ScoringPipeline
from repro.server.firewall import QoDFirewall
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.alerts import GaugeDetector
from repro.telemetry.mitigation import FirewallArm, PipelineArm, arm


class _StubFilter:
    name = "aggressive-nxdomain"

    def score(self, ctx):
        return 0.0


def _telemetry(opt_in):
    telemetry = Telemetry(TelemetryConfig(arm_mitigations=opt_in))
    telemetry.alerts.add(
        GaugeDetector("queue-depth", window=1.0, threshold=10.0,
                      clear_windows=1),
        "queue_depth")
    return telemetry


def _raise_then_clear(telemetry):
    telemetry.alerts.observe("queue_depth", 0.5, 50.0)   # breach
    telemetry.alerts.observe("queue_depth", 1.5, 0.0)    # calm
    telemetry.alerts.finalize(2.0)


class TestOptIn:
    def test_passive_session_refuses_arming(self):
        telemetry = _telemetry(opt_in=False)
        mitigator = PipelineArm("queue-depth", ScoringPipeline(),
                                _StubFilter())
        with pytest.raises(ValueError):
            arm(telemetry, mitigator)
        # Refusal means no callbacks were attached either.
        assert telemetry.alerts.on_raise == []
        assert telemetry.alerts.on_clear == []

    def test_default_config_is_passive(self):
        assert Telemetry().config.arm_mitigations is False


class TestPipelineArm:
    def test_filter_inserted_on_raise_removed_on_clear(self):
        telemetry = _telemetry(opt_in=True)
        pipeline = ScoringPipeline()
        filter_ = _StubFilter()
        mitigator = PipelineArm("queue-depth", pipeline, filter_)
        arm(telemetry, mitigator)

        _raise_then_clear(telemetry)
        assert filter_ not in pipeline.filters
        assert mitigator.engaged == 1
        assert mitigator.stood_down == 1

    def test_other_alerts_ignored(self):
        telemetry = _telemetry(opt_in=True)
        pipeline = ScoringPipeline()
        mitigator = PipelineArm("nxdomain-ratio", pipeline, _StubFilter())
        arm(telemetry, mitigator)
        _raise_then_clear(telemetry)   # raises "queue-depth", not ours
        assert mitigator.engaged == 0
        assert pipeline.filters == []


class TestFirewallArm:
    def test_rule_installed_and_withdrawn(self):
        telemetry = _telemetry(opt_in=True)
        firewall = QoDFirewall(t_qod=300.0)
        qname = name("attack.victim.example")
        mitigator = FirewallArm("queue-depth", firewall, qname, RType.A)
        arm(telemetry, mitigator)

        telemetry.alerts.observe("queue_depth", 0.5, 50.0)
        telemetry.alerts.observe("queue_depth", 1.2, 50.0)  # close win 0
        assert firewall.should_drop(qname, RType.A, 1.1)
        telemetry.alerts.observe("queue_depth", 2.5, 0.0)   # calm window
        telemetry.alerts.finalize(3.0)
        assert not firewall.should_drop(qname, RType.A, 3.1)
        assert mitigator.engaged == 1
        assert mitigator.stood_down == 1


class TestReentrancy:
    """Out-of-step raise/clear edges must not double-apply an arm."""

    @staticmethod
    def alert(name="queue-depth"):
        from repro.telemetry.alerts import Alert, AlertSeverity
        return Alert(name=name, severity=AlertSeverity.WARNING, epoch=0,
                     raised_at=1.0, value=50.0, threshold=10.0,
                     message="test")

    def test_duplicate_raise_engages_once(self):
        pipeline = ScoringPipeline()
        mitigator = PipelineArm("queue-depth", pipeline, _StubFilter())
        mitigator._on_raise(self.alert())
        mitigator._on_raise(self.alert())   # flapping detector, same arm
        assert mitigator.engaged == 1
        assert mitigator.active
        assert len(pipeline.filters) == 1

    def test_clear_without_engage_is_noop(self):
        pipeline = ScoringPipeline()
        mitigator = PipelineArm("queue-depth", pipeline, _StubFilter())
        mitigator._on_clear(self.alert())
        assert mitigator.stood_down == 0
        assert not mitigator.active
        assert pipeline.filters == []

    def test_full_cycle_rearms(self):
        pipeline = ScoringPipeline()
        mitigator = PipelineArm("queue-depth", pipeline, _StubFilter())
        for _ in range(2):
            mitigator._on_raise(self.alert())
            mitigator._on_clear(self.alert())
        assert (mitigator.engaged, mitigator.stood_down) == (2, 2)
        assert pipeline.filters == []

    def test_firewall_arm_survives_duplicate_edges(self):
        firewall = QoDFirewall(t_qod=300.0)
        mitigator = FirewallArm("queue-depth", firewall,
                                name("attack.victim.example"), RType.A)
        mitigator._on_raise(self.alert())
        mitigator._on_raise(self.alert())
        assert firewall.active_rules(2.0) == 1
        mitigator._on_clear(self.alert())
        mitigator._on_clear(self.alert())
        assert firewall.active_rules(2.0) == 0
        assert mitigator.stood_down == 1
