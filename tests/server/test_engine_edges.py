"""Edge-case tests for the engine and agent internals."""

from repro.dnscore import (
    Message,
    RCode,
    RType,
    make_query,
    name,
    parse_zone_text,
)
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    MonitoringAgent,
    NameserverMachine,
    ZoneStore,
)


def mk_zone(origin):
    return parse_zone_text(
        f"$ORIGIN {origin}\n$TTL 300\n"
        f"@ IN SOA ns1.{origin} admin.{origin} 1 2 3 4 300\n"
        f"@ IN NS ns1.{origin}\n")


class TestEngineEdges:
    def test_zero_questions_formerr(self):
        store = ZoneStore()
        store.add(mk_zone("e.example."))
        engine = AuthoritativeEngine(store)
        assert engine.respond(Message()).rcode == RCode.FORMERR

    def test_two_questions_formerr(self):
        store = ZoneStore()
        store.add(mk_zone("e.example."))
        engine = AuthoritativeEngine(store)
        query = make_query(1, name("e.example"), RType.A)
        query.questions.append(query.questions[0])
        assert engine.respond(query).rcode == RCode.FORMERR

    def test_response_observer_called(self):
        store = ZoneStore()
        store.add(mk_zone("e.example."))
        engine = AuthoritativeEngine(store)
        seen = []
        engine.response_observers.append(
            lambda q, r: seen.append((q.question.qname, r.rcode)))
        engine.respond(make_query(1, name("x.e.example"), RType.A))
        assert seen == [(name("x.e.example"), RCode.NXDOMAIN)]


class TestAgentZoneRotation:
    def test_probe_rotation_covers_all_zones(self):
        loop = EventLoop()
        store = ZoneStore()
        origins = [f"z{i}.example." for i in range(10)]
        for origin in origins:
            store.add(mk_zone(origin))
        machine = NameserverMachine(
            loop, "rot", AuthoritativeEngine(store), ScoringPipeline([]),
            QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))
        probed = []
        original = machine.health_probe

        def spy(message):
            probed.append(str(message.question.qname))
            return original(message)

        machine.health_probe = spy

        class NullSpeaker:
            def withdraw_all(self):
                pass

            def advertise_all(self):
                pass

        agent = MonitoringAgent(loop, machine, NullSpeaker(), period=1.0,
                                max_probe_zones=3)
        loop.run_until(10.0)
        # Over successive cycles the rotation reaches every zone.
        assert {f"z{i}.example." for i in range(10)} <= set(probed)
        # But each cycle stays cheap.
        assert agent.metrics.checks_run >= 9
        assert len(probed) <= agent.metrics.checks_run * 3


class TestEventLoopPending:
    def test_pending_counts_uncancelled(self):
        loop = EventLoop()
        h1 = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        assert loop.pending == 2
        h1.cancel()
        assert loop.pending == 1
        loop.run()
        assert loop.pending == 0
