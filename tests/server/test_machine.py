"""Tests for the nameserver machine: capacities, lifecycle, QoD."""

import pytest

from repro.dnscore import RCode, RType, make_query, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import Datagram, EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    MachineState,
    NameserverMachine,
    QueryEnvelope,
    ZoneStore,
)

ZONE = """\
$ORIGIN m.example.
$TTL 300
@ IN SOA ns1.m.example. admin.m.example. 1 7200 3600 1209600 300
@ IN NS ns1.m.example.
www IN A 10.0.0.1
"""


def make_machine(loop, config=None, pipeline=None, responses=None):
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    machine = NameserverMachine(
        loop, "m-test", AuthoritativeEngine(store),
        pipeline or ScoringPipeline([]), QueuePolicy(),
        config or MachineConfig(staleness_threshold=float("inf")))
    if responses is not None:
        machine.respond = lambda dgram, msg: responses.append(msg)
    return machine


def query_dgram(qname="www.m.example", msg_id=1, src="10.1.1.1",
                poison=False, attack=False, port=5000):
    q = make_query(msg_id, name(qname), RType.A)
    return Datagram(src=src, dst="svc",
                    payload=QueryEnvelope(q, is_attack=attack,
                                          poison=poison),
                    src_port=port)


class TestServicePath:
    def test_answers_query(self):
        loop = EventLoop()
        responses = []
        m = make_machine(loop, responses=responses)
        m.receive_query(query_dgram())
        loop.run_until(1.0)
        assert len(responses) == 1
        assert responses[0].rcode == RCode.NOERROR
        assert m.metrics.answered == 1

    def test_service_rate_bounds_throughput(self):
        loop = EventLoop()
        responses = []
        config = MachineConfig(compute_capacity_qps=100.0,
                               io_capacity_qps=100000.0,
                               queue_depth=10000,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config, responses=responses)
        for i in range(500):
            loop.call_at(i * 0.0001,
                         lambda i=i: m.receive_query(query_dgram(msg_id=i)))
        loop.run_until(1.0)
        # 100 qps for ~1 s -> about 100 answers.
        assert 80 <= len(responses) <= 120

    def test_io_saturation_drops_below_application(self):
        loop = EventLoop()
        config = MachineConfig(compute_capacity_qps=1e9,
                               io_capacity_qps=100.0,
                               io_burst_seconds=0.1,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config)
        for i in range(1000):
            loop.call_at(i * 0.0001,
                         lambda i=i: m.receive_query(query_dgram(msg_id=i)))
        loop.run_until(2.0)
        assert m.metrics.dropped_io > 500

    def test_queue_overflow_drops(self):
        loop = EventLoop()
        config = MachineConfig(compute_capacity_qps=1.0,
                               io_capacity_qps=1e9, queue_depth=5,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config)
        for i in range(100):
            m.receive_query(query_dgram(msg_id=i))
        assert m.metrics.dropped_queue > 50

    def test_attack_accounting(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.receive_query(query_dgram(attack=True))
        m.receive_query(query_dgram(msg_id=2))
        loop.run_until(1.0)
        assert m.metrics.attack_received == 1
        assert m.metrics.legit_received == 1


class TestLifecycle:
    def test_suspend_blocks_traffic_but_not_probes(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.suspend()
        m.receive_query(query_dgram())
        loop.run_until(1.0)
        assert m.metrics.dropped_not_running == 1
        probe = m.health_probe(make_query(9, name("m.example"),
                                          RType.SOA))
        assert probe is not None and probe.rcode == RCode.NOERROR

    def test_resume(self):
        loop = EventLoop()
        responses = []
        m = make_machine(loop, responses=responses)
        m.suspend()
        m.resume()
        m.receive_query(query_dgram())
        loop.run_until(1.0)
        assert responses

    def test_crash_loses_queue_and_restarts(self):
        loop = EventLoop()
        config = MachineConfig(compute_capacity_qps=1.0,
                               restart_delay=5.0,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config)
        for i in range(10):
            m.receive_query(query_dgram(msg_id=i))
        m.crash()
        assert m.state == MachineState.CRASHED
        assert m.queues.total_depth() == 0
        loop.run_until(6.0)
        assert m.state == MachineState.RUNNING

    def test_crash_listener_fires(self):
        loop = EventLoop()
        m = make_machine(loop)
        crashed = []
        m.crash_listeners.append(crashed.append)
        m.crash()
        assert crashed == [m]

    def test_qod_crashes_and_firewalls(self):
        loop = EventLoop()
        config = MachineConfig(restart_delay=1.0, t_qod=60.0,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config)
        m.receive_query(query_dgram(qname="boom.m.example", poison=True))
        loop.run_until(0.5)
        assert m.metrics.crashes == 1
        loop.run_until(2.0)  # restarted
        # A similar query is now dropped by the firewall, not crashing.
        m.receive_query(query_dgram(qname="boom2.m.example", poison=True,
                                    msg_id=2))
        loop.run_until(3.0)
        assert m.metrics.crashes == 1
        assert m.metrics.dropped_firewall == 1

    def test_qod_without_firewall_crashloops(self):
        loop = EventLoop()
        config = MachineConfig(restart_delay=1.0,
                               qod_firewall_enabled=False,
                               staleness_threshold=float("inf"))
        m = make_machine(loop, config=config)
        for i in range(3):
            loop.call_at(i * 2.0, lambda i=i: m.receive_query(
                query_dgram(qname="boom.m.example", poison=True,
                            msg_id=i)))
        loop.run_until(10.0)
        assert m.metrics.crashes == 3


class TestStaleness:
    def test_fresh_metadata(self):
        loop = EventLoop()
        m = make_machine(loop, config=MachineConfig(
            staleness_threshold=30.0))
        m.receive_metadata(0.0)
        loop.run_until(10.0)
        assert not m.is_stale(loop.now)
        loop.run_until(50.0)
        assert m.is_stale(loop.now)

    def test_metadata_timestamp_monotonic(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.receive_metadata(100.0)
        m.receive_metadata(50.0)  # late-arriving older input
        assert m.last_input_time == 100.0

    def test_input_delayed_never_stale(self):
        loop = EventLoop()
        m = make_machine(loop, config=MachineConfig(
            staleness_threshold=30.0, input_delayed=True))
        loop.run_until(10_000.0)
        assert not m.is_stale(loop.now)


class TestFaults:
    def test_unresponsive_fault(self):
        loop = EventLoop()
        responses = []
        m = make_machine(loop, responses=responses)
        m.fault = "unresponsive"
        m.receive_query(query_dgram())
        loop.run_until(1.0)
        assert not responses
        assert m.health_probe(make_query(1, name("m.example"),
                                         RType.SOA)) is None

    def test_wrong_answer_fault(self):
        loop = EventLoop()
        responses = []
        m = make_machine(loop, responses=responses)
        m.fault = "wrong_answer"
        m.receive_query(query_dgram())
        loop.run_until(1.0)
        assert responses[0].rcode == RCode.SERVFAIL


class TestDegradedMode:
    """Defense-ladder degraded mode: serve-from-LKG, shed attribution."""

    @staticmethod
    def updated_zone(serial, address):
        text = ZONE.replace("1 7200", f"{serial} 7200") \
                   .replace("10.0.0.1", address)
        return parse_zone_text(text)

    def test_zone_update_deferred_until_exit(self):
        from types import SimpleNamespace
        loop = EventLoop()
        m = make_machine(loop)
        m.enter_degraded("rate-limit")
        m.handle_zone_update(SimpleNamespace(
            payload=self.updated_zone(2, "10.0.0.2")))
        # Still serving last-known-good content under attack.
        assert m.engine.store.get(name("m.example")).serial == 1
        m.exit_degraded()
        assert m.degraded_rung is None
        assert m.engine.store.get(name("m.example")).serial == 2

    def test_only_newest_deferred_update_replays(self):
        from types import SimpleNamespace
        loop = EventLoop()
        m = make_machine(loop)
        installed = []
        original = m.install_zone

        def spying_install(zone, rollback=False):
            installed.append(zone.serial)
            return original(zone, rollback=rollback)

        m.install_zone = spying_install
        m.enter_degraded("qod-firewall")
        for serial in (2, 3):
            m.handle_zone_update(SimpleNamespace(
                payload=self.updated_zone(serial, "10.0.0.9")))
        m.exit_degraded()
        # The intermediate serial was superseded while degraded.
        assert installed == [3]
        assert m.engine.store.get(name("m.example")).serial == 3

    def test_shed_attributed_to_current_rung(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.known_sources.add("10.1.1.1")
        m.enter_degraded("victim-firewall")
        # A firewall rule sheds matching queries; the drop is charged
        # to the rung holding the machine degraded.
        m.firewall.install_rule(name("x.m.example"), RType.A, loop.now)
        m.receive_query(query_dgram(qname="www.m.example"))
        assert m.metrics.shed_by_rung == {"victim-firewall": 1}
        assert m.metrics.known_received == 1
        assert m.metrics.known_answered == 0
        # Re-entering under a new rung relabels the attribution.
        m.enter_degraded("rate-limit")
        m.receive_query(query_dgram(qname="www2.m.example"))
        assert m.metrics.shed_by_rung == {"victim-firewall": 1,
                                          "rate-limit": 1}

    def test_known_source_counters_track_answers(self):
        loop = EventLoop()
        responses = []
        m = make_machine(loop, responses=responses)
        m.known_sources.add("10.1.1.1")
        m.receive_query(query_dgram(src="10.1.1.1"))
        m.receive_query(query_dgram(src="99.9.9.9", msg_id=2))
        loop.run_until(1.0)
        assert len(responses) == 2
        assert m.metrics.known_received == 1
        assert m.metrics.known_answered == 1

    def test_shed_not_counted_when_not_degraded(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.firewall.install_rule(name("x.m.example"), RType.A, loop.now)
        m.receive_query(query_dgram(qname="www.m.example"))
        assert m.metrics.dropped_firewall == 1
        assert m.metrics.shed_by_rung == {}
