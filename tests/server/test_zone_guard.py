"""Tests for the machine's guarded zone-install seam and staleness check."""

from repro.dnscore import (
    A,
    RCode,
    RType,
    SOA,
    Zone,
    ZoneUpdate,
    make_query,
    make_rrset,
    make_zone,
    name,
)
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry import state as telemetry_state

ORIGIN = name("g.example")


def zone_v(serial, address="10.0.0.1"):
    z = make_zone(ORIGIN,
                  SOA(name("ns1.g.example"), name("admin.g.example"),
                      serial, 7200, 3600, 1209600, 300),
                  [name("ns1.akam.net")])
    z.add_rrset(make_rrset(name("www.g.example"), RType.A, 300,
                           [A(address)]))
    return z


def make_machine(loop, guard=True, **config_kwargs):
    machine = NameserverMachine(
        loop, "m-guard", AuthoritativeEngine(ZoneStore()),
        ScoringPipeline([]), QueuePolicy(),
        MachineConfig(zone_guard_enabled=guard,
                      staleness_threshold=config_kwargs.pop(
                          "staleness_threshold", float("inf")),
                      **config_kwargs))
    return machine


class TestGuardedInstall:
    def test_valid_update_installs_and_retains_previous(self):
        m = make_machine(EventLoop())
        v1, v2 = zone_v(1), zone_v(2, "10.0.0.2")
        assert m.install_zone(v1)
        assert m.install_zone(v2)
        assert m.engine.store.get(ORIGIN) is v2
        assert m.last_known_good[ORIGIN] is v1
        assert m.metrics.zone_installs == 2
        assert [a for _, a, _, _ in m.zone_install_log] == \
            ["install", "install"]

    def test_fatal_update_is_rejected(self):
        m = make_machine(EventLoop())
        assert m.install_zone(zone_v(5))
        assert not m.install_zone(zone_v(4))     # serial regression
        assert m.engine.store.get(ORIGIN).serial == 5
        assert m.metrics.zone_rejects == 1
        assert m.zone_install_log[-1][1] == "reject"

    def test_guard_off_installs_anything(self):
        m = make_machine(EventLoop(), guard=False)
        assert m.install_zone(zone_v(5))
        assert m.install_zone(zone_v(4))
        assert m.engine.store.get(ORIGIN).serial == 4

    def test_structurally_invalid_zone_rejected_even_unguarded(self):
        m = make_machine(EventLoop(), guard=False)
        assert not m.install_zone(Zone(ORIGIN))  # no SOA: store refuses
        assert m.metrics.zone_rejects == 1

    def test_rollback_bypasses_validation_and_keeps_lkg(self):
        m = make_machine(EventLoop())
        v1, v2 = zone_v(1), zone_v(2, "10.0.0.2")
        m.install_zone(v1)
        m.install_zone(v2)
        assert m.rollback_zone(ORIGIN)           # v1's serial is older
        assert m.engine.store.get(ORIGIN) is v1
        assert m.metrics.zone_rollbacks == 1
        assert m.zone_install_log[-1][1] == "rollback"
        # The retained version is not clobbered by the rollback itself.
        assert m.last_known_good[ORIGIN] is v1

    def test_rollback_without_history_fails(self):
        m = make_machine(EventLoop())
        assert not m.rollback_zone(ORIGIN)

    def test_rolled_back_zone_actually_serves(self):
        loop = EventLoop()
        m = make_machine(loop)
        m.install_zone(zone_v(1))
        m.install_zone(zone_v(2, "10.0.0.2"))
        m.rollback_zone(ORIGIN)
        response = m.health_probe(
            make_query(7, name("www.g.example"), RType.A))
        assert response is not None
        assert response.rcode is RCode.NOERROR
        assert str(response.answers[0].rdata.address) == "10.0.0.1"


class TestMetadataDispatch:
    def test_zone_update_payload_unwrapped(self):
        m = make_machine(EventLoop())
        m.handle_zone_update(type("Msg", (), {
            "payload": ZoneUpdate(zone_v(1))})())
        assert m.engine.store.get(ORIGIN) is not None

    def test_bare_zone_payload_still_works(self):
        m = make_machine(EventLoop())
        m.handle_zone_update(type("Msg", (), {"payload": zone_v(1)})())
        assert m.engine.store.get(ORIGIN) is not None

    def test_rollback_flag_honoured_from_bus(self):
        m = make_machine(EventLoop())
        m.install_zone(zone_v(5))
        m.handle_zone_update(type("Msg", (), {
            "payload": ZoneUpdate(zone_v(3), rollback=True)})())
        assert m.engine.store.get(ORIGIN).serial == 3


class TestStaleness:
    def test_exactly_at_threshold_is_fresh(self):
        m = make_machine(EventLoop(), staleness_threshold=30.0)
        m.receive_metadata(10.0)
        assert not m.is_stale(40.0)              # exactly 30s old
        assert m.is_stale(40.0001)               # strictly past it

    def test_input_delayed_machines_never_report_stale(self):
        m = make_machine(EventLoop(), staleness_threshold=30.0,
                         input_delayed=True)
        assert not m.is_stale(1e9)

    def test_positive_checks_count_in_telemetry(self):
        telemetry = Telemetry(TelemetryConfig(trace_sample_rate=0.0))
        with telemetry_state.session(telemetry):
            m = make_machine(EventLoop(), staleness_threshold=30.0)
            m.receive_metadata(0.0)
            assert not m.is_stale(30.0)
            assert m.is_stale(31.0)
            assert m.is_stale(32.0)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["machine_stale_total{machine=m-guard}"] == 2.0

    def test_installs_and_rejects_count_in_telemetry(self):
        telemetry = Telemetry(TelemetryConfig(trace_sample_rate=0.0))
        with telemetry_state.session(telemetry):
            m = make_machine(EventLoop())
            m.install_zone(zone_v(5))
            m.install_zone(zone_v(4))            # rejected
        counters = telemetry.registry.snapshot()["counters"]
        assert counters[
            "zone_updates_total{machine=m-guard,action=install}"] == 1.0
        assert counters[
            "zone_updates_total{machine=m-guard,action=reject}"] == 1.0
