"""Tests for the authoritative engine and zone store."""

import pytest

from repro.dnscore import (
    A,
    Opcode,
    RClass,
    RCode,
    RType,
    make_query,
    make_rrset,
    name,
    parse_zone_text,
)
from repro.server.engine import AuthoritativeEngine, ZoneStore

PARENT = """\
$ORIGIN ex.com.
$TTL 300
@ IN SOA ns1.ex.com. admin.ex.com. 1 7200 3600 1209600 300
@ IN NS ns1.ex.com.
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
alias IN CNAME www
ext IN CNAME target.other.org.
child IN NS ns.child.ex.com.
ns.child IN A 192.0.2.54
"""

CHILD = """\
$ORIGIN child.ex.com.
$TTL 300
@ IN SOA ns.child.ex.com. admin.ex.com. 1 7200 3600 1209600 300
@ IN NS ns.child.ex.com.
host IN A 192.0.2.99
"""


@pytest.fixture
def store():
    s = ZoneStore()
    s.add(parse_zone_text(PARENT))
    return s


@pytest.fixture
def engine(store):
    return AuthoritativeEngine(store)


class TestZoneStore:
    def test_longest_match(self, store):
        store.add(parse_zone_text(CHILD))
        assert store.find(name("host.child.ex.com")).origin == \
            name("child.ex.com")
        assert store.find(name("www.ex.com")).origin == name("ex.com")

    def test_find_returns_none_outside(self, store):
        assert store.find(name("nope.org")) is None

    def test_remove(self, store):
        assert store.remove(name("ex.com"))
        assert not store.remove(name("ex.com"))
        assert store.find(name("www.ex.com")) is None

    def test_invalid_zone_rejected(self, store):
        from repro.dnscore import Zone, ZoneError
        with pytest.raises(ZoneError):
            store.add(Zone(name("empty.com")))

    def test_origins_sorted(self, store):
        store.add(parse_zone_text(CHILD))
        assert store.origins() == [name("ex.com"), name("child.ex.com")]


class TestRespond:
    def test_positive_answer(self, engine):
        resp = engine.respond(make_query(1, name("www.ex.com"), RType.A))
        assert resp.rcode == RCode.NOERROR
        assert resp.flags.aa
        assert resp.answers[0].rdata == A("192.0.2.1")

    def test_nxdomain_with_soa(self, engine):
        resp = engine.respond(make_query(2, name("zz.ex.com"), RType.A))
        assert resp.rcode == RCode.NXDOMAIN
        assert resp.authority[0].rtype == RType.SOA
        assert engine.nxdomain_count == 1

    def test_nodata_with_soa(self, engine):
        resp = engine.respond(make_query(3, name("www.ex.com"),
                                         RType.AAAA))
        assert resp.rcode == RCode.NOERROR
        assert not resp.answers
        assert resp.authority[0].rtype == RType.SOA

    def test_cname_chain_in_answer(self, engine):
        resp = engine.respond(make_query(4, name("alias.ex.com"),
                                         RType.A))
        assert [r.rtype for r in resp.answers] == [RType.CNAME, RType.A]

    def test_cname_out_of_zone_left_to_resolver(self, engine):
        resp = engine.respond(make_query(5, name("ext.ex.com"), RType.A))
        assert resp.rcode == RCode.NOERROR
        assert len(resp.answers) == 1
        assert resp.answers[0].rtype == RType.CNAME

    def test_referral(self, engine):
        resp = engine.respond(make_query(6, name("host.child.ex.com"),
                                         RType.A))
        assert resp.rcode == RCode.NOERROR
        assert not resp.flags.aa
        assert resp.authority[0].rtype == RType.NS
        glue = {str(r.name) for r in resp.additional}
        assert "ns.child.ex.com." in glue

    def test_out_of_bailiwick_refused(self, engine):
        resp = engine.respond(make_query(7, name("other.org"), RType.A))
        assert resp.rcode == RCode.REFUSED
        assert not resp.flags.aa

    def test_non_query_opcode_notimpl(self, engine):
        query = make_query(8, name("www.ex.com"), RType.A)
        query.flags.opcode = Opcode.NOTIFY
        assert engine.respond(query).rcode == RCode.NOTIMP

    def test_chaos_class_refused(self, engine):
        query = make_query(9, name("www.ex.com"), RType.A)
        object.__setattr__(query.questions[0], "qclass", RClass.CH)
        assert engine.respond(query).rcode == RCode.REFUSED

    def test_counters(self, engine):
        engine.respond(make_query(1, name("www.ex.com"), RType.A))
        engine.respond(make_query(2, name("x.ex.com"), RType.A))
        assert engine.queries_answered == 2
        assert engine.nxdomain_count == 1


class TestMappingHook:
    def test_dynamic_domain_answered_by_provider(self, store):
        calls = []

        class Provider:
            def answer(self, qname, qtype, client_key):
                calls.append((qname, client_key))
                return make_rrset(qname, RType.A, 20, [A("10.99.0.1")])

        engine = AuthoritativeEngine(
            store, mapping=Provider(),
            dynamic_domains=[name("www.ex.com")])
        resp = engine.respond(make_query(1, name("www.ex.com"), RType.A),
                              client_key="resolver-9")
        assert resp.answers[0].rdata == A("10.99.0.1")
        assert resp.answers[0].ttl == 20
        assert calls == [(name("www.ex.com"), "resolver-9")]

    def test_ecs_overrides_client_key(self, store):
        from repro.dnscore import ClientSubnetOption, EDNSOptions
        seen = []

        class Provider:
            def answer(self, qname, qtype, client_key):
                seen.append(client_key)
                return make_rrset(qname, RType.A, 20, [A("10.99.0.2")])

        engine = AuthoritativeEngine(
            store, mapping=Provider(),
            dynamic_domains=[name("www.ex.com")])
        edns = EDNSOptions(
            client_subnet=ClientSubnetOption.for_client("198.51.100.77"))
        engine.respond(make_query(1, name("www.ex.com"), RType.A,
                                  edns=edns), client_key="resolver-9")
        assert seen == ["198.51.100.0/24"]

    def test_provider_fallthrough_uses_zone(self, store):
        class Provider:
            def answer(self, qname, qtype, client_key):
                return None

        engine = AuthoritativeEngine(
            store, mapping=Provider(),
            dynamic_domains=[name("www.ex.com")])
        resp = engine.respond(make_query(1, name("www.ex.com"), RType.A))
        assert resp.answers[0].rdata == A("192.0.2.1")


class TestDynamicDelegation:
    def test_tailored_referral(self, store):
        from repro.dnscore import NS

        class Tailor:
            def delegation(self, cut, client_key):
                ns = make_rrset(cut, RType.NS, 4000,
                                [NS(name("near.ll.ex.com"))])
                glue = [make_rrset(name("near.ll.ex.com"), RType.A, 4000,
                                   [A("172.31.0.1")])]
                return ns, glue

        engine = AuthoritativeEngine(
            store, dynamic_delegations={name("child.ex.com"): Tailor()})
        resp = engine.respond(make_query(1, name("x.child.ex.com"),
                                         RType.A))
        assert str(resp.authority[0].rdata.target) == "near.ll.ex.com."
        assert resp.additional[0].rdata == A("172.31.0.1")

    def test_provider_none_falls_back_to_static(self, store):
        class Tailor:
            def delegation(self, cut, client_key):
                return None

        engine = AuthoritativeEngine(
            store, dynamic_delegations={name("child.ex.com"): Tailor()})
        resp = engine.respond(make_query(1, name("x.child.ex.com"),
                                         RType.A))
        assert str(resp.authority[0].rdata.target) == "ns.child.ex.com."
