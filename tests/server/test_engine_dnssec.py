"""Engine tests for DO-bit-aware serving of signed zones.

Covers the PR's serving contract: DO=0 responses from a signed zone
are byte-identical to an unsigned zone's, DO=1 responses verify end
to end, both denial modes answer negatives correctly, and the
response-plan fast lane is invalidated by signing passes (the
``Zone.version`` / ``ZoneStore.generation`` regression).
"""

import pytest

from repro.dnscore import (
    A,
    EDNSOptions,
    RCode,
    RType,
    make_query,
    make_rrset,
    name,
    parse_zone_text,
)
from repro.dnssec.denial import DenialMode
from repro.dnssec.keys import KeyRing
from repro.dnssec.sign import SigningPolicy, ZoneSigner, verify_message
from repro.server.engine import AuthoritativeEngine, ZoneStore

ZONE_TEXT = """\
$ORIGIN ex.com.
$TTL 300
@ IN SOA ns1.ex.com. admin.ex.com. 1 7200 3600 1209600 300
@ IN NS ns1.ex.com.
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
alias IN CNAME www
child IN NS ns.child.ex.com.
ns.child IN A 192.0.2.54
"""

ORIGIN = name("ex.com")


def do_query(msg_id, qname, qtype=RType.A, do=True):
    return make_query(msg_id, name(qname), qtype,
                      edns=EDNSOptions(payload_size=1232, dnssec_ok=do))


def signed_setup(policy=None):
    zone = parse_zone_text(ZONE_TEXT)
    zone.add_rrset(make_rrset(name("*.w.ex.com"), RType.A, 300,
                              [A("198.51.100.7")]))
    keys = KeyRing(7, ORIGIN)
    signer = ZoneSigner(keys, policy)
    signer.sign(zone, 0.0)
    store = ZoneStore()
    store.add(zone)
    engine = AuthoritativeEngine(store)
    engine.dnssec.register_keyring(keys, policy)
    return engine, zone, keys, signer


@pytest.fixture
def signed():
    return signed_setup()


def dnskeys_of(zone):
    return [r.rdata for r in zone.get_rrset(ORIGIN, RType.DNSKEY).records]


class TestDo0ByteIdentity:
    """With DO=0 (or no EDNS) a signed zone answers exactly like an
    unsigned one — the acceptance criterion that signing deploys dark."""

    def _unsigned_engine(self):
        zone = parse_zone_text(ZONE_TEXT)
        zone.add_rrset(make_rrset(name("*.w.ex.com"), RType.A, 300,
                                  [A("198.51.100.7")]))
        store = ZoneStore()
        store.add(zone)
        return AuthoritativeEngine(store)

    @pytest.mark.parametrize("qname,qtype", [
        ("www.ex.com", RType.A),        # positive
        ("alias.ex.com", RType.A),      # CNAME chain
        ("www.ex.com", RType.AAAA),     # NODATA
        ("nope.ex.com", RType.A),       # NXDOMAIN
        ("host.child.ex.com", RType.A),  # referral
        ("q.w.ex.com", RType.A),        # wildcard synthesis
    ])
    def test_wire_identical_without_do(self, signed, qname, qtype):
        engine, _, _, _ = signed
        unsigned = self._unsigned_engine()
        for msg_id, edns in ((1, None),
                             (2, EDNSOptions(payload_size=1232,
                                             dnssec_ok=False))):
            query = make_query(msg_id, name(qname), qtype, edns=edns)
            a = engine.respond(query)
            b = unsigned.respond(query)
            assert a.to_wire() == b.to_wire()

    def test_do0_never_counts_signed_responses(self, signed):
        engine, _, _, _ = signed
        engine.respond(make_query(1, name("www.ex.com"), RType.A))
        engine.respond(do_query(2, "www.ex.com", do=False))
        assert engine.signed_responses == 0


class TestDo1Responses:
    def test_positive_answer_carries_verifying_rrsig(self, signed):
        engine, zone, _, _ = signed
        resp = engine.respond(do_query(1, "www.ex.com"))
        assert resp.rcode == RCode.NOERROR
        assert any(r.rtype is RType.RRSIG for r in resp.answers)
        assert verify_message(resp, dnskeys_of(zone), 1.0) == []
        assert engine.signed_responses == 1

    def test_do_bit_echoed_in_response(self, signed):
        engine, _, _, _ = signed
        resp = engine.respond(do_query(1, "www.ex.com"))
        assert resp.edns is not None and resp.edns.dnssec_ok

    def test_nxdomain_chain_proof_verifies(self, signed):
        engine, zone, _, _ = signed
        resp = engine.respond(do_query(2, "nope.ex.com"))
        assert resp.rcode == RCode.NXDOMAIN
        types = [r.rtype for r in resp.authority]
        assert RType.SOA in types and RType.NSEC in types
        assert verify_message(resp, dnskeys_of(zone), 1.0) == []

    def test_nodata_proof_verifies(self, signed):
        engine, zone, _, _ = signed
        resp = engine.respond(do_query(3, "www.ex.com", RType.AAAA))
        assert resp.rcode == RCode.NOERROR and not resp.answers
        assert any(r.rtype is RType.NSEC for r in resp.authority)
        assert verify_message(resp, dnskeys_of(zone), 1.0) == []

    def test_wildcard_expansion_proof_verifies(self, signed):
        engine, zone, _, _ = signed
        resp = engine.respond(do_query(4, "q.w.ex.com"))
        assert resp.rcode == RCode.NOERROR
        answers = [r for r in resp.answers if r.rtype is RType.A]
        assert answers and answers[0].name == name("q.w.ex.com")
        # RFC 4035 3.1.3.3: expansion comes with a denial for the qname.
        assert any(r.rtype is RType.NSEC for r in resp.authority)
        assert verify_message(resp, dnskeys_of(zone), 1.0) == []

    def test_referral_stays_unsigned_with_nsec_at_cut(self, signed):
        engine, _, _, _ = signed
        resp = engine.respond(do_query(5, "host.child.ex.com"))
        assert not resp.flags.aa
        ns = [r for r in resp.authority if r.rtype is RType.NS]
        nsec = [r for r in resp.authority if r.rtype is RType.NSEC]
        assert ns and nsec
        assert nsec[0].name == name("child.ex.com")


class TestCompactMode:
    def test_negative_answers_become_nodata(self, signed):
        engine, zone, _, _ = signed
        engine.dnssec.denial_mode = DenialMode.COMPACT
        resp = engine.respond(do_query(1, "nope.ex.com"))
        assert resp.rcode == RCode.NOERROR          # black lies
        assert not resp.answers
        nsec = [r for r in resp.authority if r.rtype is RType.NSEC]
        assert nsec[0].name == name("nope.ex.com")
        assert verify_message(resp, dnskeys_of(zone), 1.0) == []

    def test_do0_still_sees_real_nxdomain(self, signed):
        engine, _, _, _ = signed
        engine.dnssec.denial_mode = DenialMode.COMPACT
        resp = engine.respond(make_query(1, name("nope.ex.com"), RType.A))
        assert resp.rcode == RCode.NXDOMAIN

    def test_unique_qname_flood_keeps_negative_state_bounded(self, signed):
        engine, _, _, _ = signed
        engine.dnssec.denial_mode = DenialMode.COMPACT
        for i in range(64):
            resp = engine.respond(do_query(i, f"atk{i}.ex.com"))
            assert resp.rcode == RCode.NOERROR
        # One per-zone skeleton; no per-qname DO=1 negative plans.
        assert len(engine._signed_neg_plans) == 1
        assert not any(do for (_, _, do) in engine._plan_cache)

    def test_chain_mode_floods_churn_the_plan_cache_instead(self, signed):
        engine, _, _, _ = signed
        assert engine.dnssec.denial_mode is DenialMode.NSEC_CHAIN
        for i in range(64):
            engine.respond(do_query(i, f"atk{i}.ex.com"))
        signed_neg = [k for k in engine._plan_cache if k[2]]
        assert len(signed_neg) == 64
        assert not engine._signed_neg_plans


class TestPlanInvalidation:
    """Satellite regression: a signing pass bumps ``Zone.version`` and
    the fast lane drops its cached plans for both DO populations."""

    def test_resign_after_edit_flushes_cached_plans(self, signed):
        engine, zone, _, signer = signed
        q0 = do_query(1, "www.ex.com")
        plain = make_query(2, name("www.ex.com"), RType.A)
        first_signed = engine.respond(q0)
        first_plain = engine.respond(plain)
        assert (name("www.ex.com"), RType.A, True) in engine._plan_cache
        assert (name("www.ex.com"), RType.A, False) in engine._plan_cache

        version_before = zone.version
        zone.add_rrset(make_rrset(name("www.ex.com"), RType.A, 300,
                                  [A("192.0.2.99")]))
        signer.resign(zone, 10.0)
        assert zone.version > version_before

        fresh_signed = engine.respond(do_query(3, "www.ex.com"))
        fresh_plain = engine.respond(make_query(4, name("www.ex.com"),
                                                RType.A))
        for resp, old in ((fresh_signed, first_signed),
                          (fresh_plain, first_plain)):
            addresses = {r.rdata for r in resp.answers
                         if r.rtype is RType.A}
            assert addresses == {A("192.0.2.99")}
            assert addresses != {r.rdata for r in old.answers
                                 if r.rtype is RType.A}
        assert verify_message(fresh_signed, dnskeys_of(zone), 10.0) == []

    def test_store_replacement_bumps_generation(self, signed):
        engine, zone, keys, signer = signed
        engine.respond(do_query(1, "www.ex.com"))
        generation = engine.store.generation
        replacement = parse_zone_text(ZONE_TEXT.replace(
            "www IN A 192.0.2.1", "www IN A 203.0.113.5"))
        signer.sign(replacement, 20.0)
        engine.store.add(replacement)
        assert engine.store.generation > generation
        resp = engine.respond(do_query(2, "www.ex.com"))
        addresses = {r.rdata for r in resp.answers
                     if r.rtype is RType.A}
        assert addresses == {A("203.0.113.5")}

    def test_signing_an_unsigned_zone_invalidates_do1_plans(self):
        zone = parse_zone_text(ZONE_TEXT)
        store = ZoneStore()
        store.add(zone)
        engine = AuthoritativeEngine(store)
        resp = engine.respond(do_query(1, "www.ex.com"))
        assert not any(r.rtype is RType.RRSIG for r in resp.answers)
        keys = KeyRing(7, ORIGIN)
        ZoneSigner(keys).sign(zone, 0.0)
        engine.dnssec.register_keyring(keys)
        resp = engine.respond(do_query(2, "www.ex.com"))
        assert any(r.rtype is RType.RRSIG for r in resp.answers)
