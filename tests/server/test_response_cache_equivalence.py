"""Plan-cache equivalence: the response fast lane never changes bytes.

Mirrors ``tests/netsim/test_route_cache_equivalence.py`` one layer up:
the zone-versioned response plan cache (and the per-zone negative plan)
must be invisible on the wire. Every test compares the fast lane against
a plan-cache-disabled engine byte for byte, including the invalidation
paths — zone republish (version bump), zone replacement (store
generation bump), and engine reconfiguration (``flush_plans``).
"""

import json

from repro.dnscore import (
    RCode,
    RType,
    make_query,
    make_rrset,
    name,
    parse_zone_text,
)
from repro.dnscore.rdata import TXT
from repro.dnscore.message import EDNSOptions
from repro.server.engine import AuthoritativeEngine, ZoneStore

ZONE = """\
$ORIGIN ex.com.
$TTL 300
@ IN SOA ns1.ex.com. admin.ex.com. 1 7200 3600 1209600 300
@ IN NS ns1.ex.com.
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
www IN AAAA 2001:db8::1
alias IN CNAME www
ext IN CNAME target.other.org.
child IN NS ns.child.ex.com.
ns.child IN A 192.0.2.54
*.w IN A 192.0.2.7
"""

#: (qname, qtype) battery covering every lookup outcome: exact match,
#: NODATA, CNAME chain, out-of-zone CNAME, delegation, glue below a
#: cut, wildcard synthesis, empty non-terminal, NXDOMAIN, and REFUSED.
CASES = [
    ("www.ex.com", RType.A),
    ("www.ex.com", RType.AAAA),
    ("www.ex.com", RType.TXT),            # NODATA
    ("alias.ex.com", RType.A),            # CNAME chain
    ("ext.ex.com", RType.A),              # CNAME out of zone
    ("child.ex.com", RType.A),            # delegation
    ("deep.child.ex.com", RType.A),       # below the cut
    ("ns.child.ex.com", RType.A),         # glue below the cut
    ("anything.w.ex.com", RType.A),       # wildcard synthesis
    ("a.b.w.ex.com", RType.A),            # deep wildcard synthesis
    ("w.ex.com", RType.A),                # empty non-terminal (NODATA)
    ("missing.ex.com", RType.A),          # NXDOMAIN
    ("a.b.c.missing.ex.com", RType.A),    # deep NXDOMAIN
    ("ex.com", RType.SOA),
    ("outside.org", RType.A),             # REFUSED
]


def build_engine(plan_cache: bool) -> AuthoritativeEngine:
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    return AuthoritativeEngine(store, plan_cache=plan_cache)


def wire(engine: AuthoritativeEngine, qname: str, qtype: RType,
         msg_id: int = 7, edns: EDNSOptions | None = None) -> bytes:
    query = make_query(msg_id, name(qname), qtype, edns=edns)
    return engine.respond(query).to_wire()


class TestFastLaneByteEquality:
    def test_battery_identical_with_and_without_cache(self):
        fast = build_engine(plan_cache=True)
        slow = build_engine(plan_cache=False)
        for qname, qtype in CASES:
            # Ask the cached engine twice: the first answer populates
            # the plan, the second is served from it. Both must match
            # the uncached engine byte for byte.
            first = wire(fast, qname, qtype)
            second = wire(fast, qname, qtype)
            reference = wire(slow, qname, qtype)
            assert first == reference, (qname, qtype)
            assert second == reference, (qname, qtype)

    def test_cached_plan_restamps_per_query(self):
        fast = build_engine(plan_cache=True)
        slow = build_engine(plan_cache=False)
        wire(fast, "www.ex.com", RType.A, msg_id=1)    # populate
        assert wire(fast, "www.ex.com", RType.A, msg_id=9) == \
            wire(slow, "www.ex.com", RType.A, msg_id=9)

    def test_edns_echo_identical(self):
        fast = build_engine(plan_cache=True)
        slow = build_engine(plan_cache=False)
        opts = EDNSOptions(payload_size=1232)
        wire(fast, "www.ex.com", RType.A)              # plain populate
        got = wire(fast, "www.ex.com", RType.A, edns=opts)
        assert got == wire(slow, "www.ex.com", RType.A, edns=opts)

    def test_cached_response_is_a_fresh_message(self):
        fast = build_engine(plan_cache=True)
        q = make_query(1, name("www.ex.com"), RType.A)
        a = fast.respond(q)
        b = fast.respond(make_query(2, name("www.ex.com"), RType.A))
        assert a is not b
        # Downstream fault injection mutates responses in place; a
        # poisoned earlier answer must not leak into later ones.
        a.answers.clear()
        a.flags.rcode = RCode.SERVFAIL
        c = fast.respond(make_query(3, name("www.ex.com"), RType.A))
        assert c.rcode == RCode.NOERROR and c.answers


class TestNegativePlan:
    def flood(self, engine: AuthoritativeEngine, n: int = 12) -> None:
        for i in range(n):
            engine.respond(make_query(i + 1, name(f"r{i}.ex.com"), RType.A))

    def test_negative_plan_builds_and_matches_slow_path(self):
        fast = build_engine(plan_cache=True)
        slow = build_engine(plan_cache=False)
        self.flood(fast)
        assert fast._neg_plans, "flood should have built a negative plan"
        for qname in ("zzz.ex.com", "deep.under.here.ex.com"):
            assert wire(fast, qname, RType.A) == wire(slow, qname, RType.A)

    def test_negative_plan_never_claims_existing_names(self):
        fast = build_engine(plan_cache=True)
        slow = build_engine(plan_cache=False)
        self.flood(fast)
        # Names the exact-NXDOMAIN predicate must NOT treat as missing:
        # glue below a cut (referral), wildcard synthesis, and empty
        # non-terminals.
        for qname, qtype in CASES:
            assert wire(fast, qname, qtype) == wire(slow, qname, qtype), \
                (qname, qtype)

    def test_negative_plan_invalidated_by_republish(self):
        fast = build_engine(plan_cache=True)
        self.flood(fast)
        zone = fast.store.get(name("ex.com"))
        new = parse_zone_text(ZONE + "fresh IN A 192.0.2.88\n")
        fast.store.add(new)
        assert zone is not new
        resp = fast.respond(make_query(99, name("fresh.ex.com"), RType.A))
        assert resp.rcode == RCode.NOERROR and resp.answers


class TestInvalidation:
    def test_zone_content_republish_invalidates_plan(self):
        fast = build_engine(plan_cache=True)
        wire(fast, "www.ex.com", RType.TXT)            # cache NODATA
        zone = fast.store.get(name("ex.com"))
        zone.add_rrset(make_rrset(name("www.ex.com"), RType.TXT, 300,
                                  [TXT((b"hello",))]))
        resp = fast.respond(make_query(5, name("www.ex.com"), RType.TXT))
        assert resp.answers, "stale NODATA plan served after version bump"

    def test_zone_replacement_invalidates_plan(self):
        fast = build_engine(plan_cache=True)
        wire(fast, "www.ex.com", RType.A)              # populate
        replaced = parse_zone_text(ZONE.replace("192.0.2.1", "192.0.2.99"))
        fast.store.add(replaced)                       # rollout-style swap
        slow = AuthoritativeEngine(fast.store, plan_cache=False)
        assert wire(fast, "www.ex.com", RType.A) == \
            wire(slow, "www.ex.com", RType.A)
        assert bytes([192, 0, 2, 99]) in wire(fast, "www.ex.com", RType.A)

    def test_zone_removal_invalidates_plan(self):
        fast = build_engine(plan_cache=True)
        wire(fast, "www.ex.com", RType.A)              # populate
        fast.store.remove(name("ex.com"))
        resp = fast.respond(make_query(5, name("www.ex.com"), RType.A))
        assert resp.rcode == RCode.REFUSED

    def test_flush_plans_clears_every_cache(self):
        fast = build_engine(plan_cache=True)
        wire(fast, "www.ex.com", RType.A)
        TestNegativePlan().flood(fast)
        fast.respond_probe(make_query(1, name("www.ex.com"), RType.A))
        assert fast._plan_cache and fast._neg_plans
        assert fast._probe_responses
        fast.flush_plans()
        assert not fast._plan_cache and not fast._neg_plans
        assert not fast._neg_seen and not fast._probe_responses

    def test_gtm_provisioning_flushes_plans(self):
        """PR 5-style reconfiguration: adding a dynamic GTM domain after
        init must drop plans cached for what is now a mapping name."""
        fast = build_engine(plan_cache=True)
        wire(fast, "www.ex.com", RType.A)              # populate
        assert fast._plan_cache
        fast.dynamic_domains.append(name("www.ex.com"))
        fast.flush_plans()
        assert not fast._plan_cache


class TestRolloutInvalidation:
    """The PR 5 rollout/rollback train never serves a stale plan.

    ``install_zone`` (the one guarded install seam) and
    ``rollback_zone`` both land in ``ZoneStore.add``, whose generation
    bump is what invalidates plans — proven here through the real
    machine path rather than by poking the store directly.
    """

    def make_machine(self):
        from repro.filters import QueuePolicy, ScoringPipeline
        from repro.netsim.clock import EventLoop
        from repro.server.machine import MachineConfig, NameserverMachine

        store = ZoneStore()
        store.add(parse_zone_text(ZONE))
        return NameserverMachine(
            EventLoop(), "m1", AuthoritativeEngine(store, plan_cache=True),
            ScoringPipeline([]), QueuePolicy(),
            MachineConfig(staleness_threshold=float("inf")))

    def test_install_then_rollback_serve_fresh_bytes(self):
        machine = self.make_machine()
        engine = machine.engine
        v1_wire = wire(engine, "www.ex.com", RType.A)   # populate plan
        v2 = parse_zone_text(
            ZONE.replace(" 1 7200", " 2 7200")
                .replace("192.0.2.1", "192.0.2.99"))
        assert machine.install_zone(v2)
        assert bytes([192, 0, 2, 99]) in wire(engine, "www.ex.com", RType.A)
        assert machine.rollback_zone(name("ex.com"))
        assert wire(engine, "www.ex.com", RType.A) == v1_wire


class TestExperimentEquivalence:
    """Cache on/off byte-identical through a full testbed experiment."""

    @staticmethod
    def fig10_point():
        from repro.experiments import fig10_nxdomain
        # One attack rate per capacity region (below compute headroom,
        # between compute and IO headroom, above IO headroom) — the
        # smallest grid the figure's region summaries accept.
        params = fig10_nxdomain.Fig10Params(
            attack_rates=(300.0, 1_500.0, 4_500.0), warmup_seconds=2.0,
            measure_seconds=6.0, n_valid_hosts=60)
        result = fig10_nxdomain.run(params)
        return json.dumps(result.to_dict(include_series=True),
                          sort_keys=True)

    def test_fig10_identical_with_and_without_cache(self, monkeypatch):
        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", True)
        cached = self.fig10_point()
        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", False)
        uncached = self.fig10_point()
        assert cached == uncached

    @staticmethod
    def fig3_result():
        from repro.experiments import fig3_per_resolver
        result = fig3_per_resolver.run(seed=42, n_resolvers=2_000)
        return json.dumps(result.to_dict(include_series=True),
                          sort_keys=True)

    def test_fig3_identical_with_and_without_cache(self, monkeypatch):
        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", True)
        cached = self.fig3_result()
        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", False)
        uncached = self.fig3_result()
        assert cached == uncached

    def test_runner_pass_identical_with_fast_lane_off(self, monkeypatch):
        """A (small) full runner pass with BOTH fast-lane switches —
        plan cache and coalesced delivery — flipped together, on the
        machine-heaviest figures (resilience drives real attack floods
        through the respond path)."""
        from repro.experiments import parallel
        from repro.netsim.network import Network

        monkeypatch.setattr(parallel, "JOB_ORDER", ("fig8", "resilience"))

        def suite():
            return [json.dumps(r.to_dict(include_series=True),
                               sort_keys=True)
                    for r in parallel.run_serial(True)]

        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", True)
        monkeypatch.setattr(Network, "delivery_coalesce_default", True)
        fast = suite()
        monkeypatch.setattr(AuthoritativeEngine,
                            "response_plan_cache_default", False)
        monkeypatch.setattr(Network, "delivery_coalesce_default", False)
        slow = suite()
        assert fast == slow
