"""Tests for the unicast host adapter and the machine BGP speaker."""

import random

import pytest

from repro.dnscore import RCode, RType, make_query, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    Datagram,
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.server import (
    AuthoritativeEngine,
    HostNameserver,
    MachineBGPSpeaker,
    MachineConfig,
    NameserverMachine,
    PoP,
    QueryEnvelope,
    ZoneStore,
)

ZONE = """\
$ORIGIN h.example.
$TTL 300
@ IN SOA ns1.h.example. admin.h.example. 1 2 3 4 300
@ IN NS ns1.h.example.
www IN A 10.0.0.1
"""


@pytest.fixture
def world():
    rng = random.Random(71)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=20))
    attach_host(inet, rng, host_id="10.88.0.1")
    attach_host(inet, rng, host_id="hs-client")
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    machine = NameserverMachine(
        loop, "host-ns", AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))
    host = HostNameserver(loop, net, "10.88.0.1", machine)
    return loop, net, machine, host


class Collector:
    def __init__(self):
        self.got = []

    def handle_datagram(self, dgram):
        self.got.append(dgram)


class TestHostNameserver:
    def test_answers_unicast_queries(self, world):
        loop, net, machine, host = world
        sink = Collector()
        net.attach_endpoint("hs-client", sink)
        query = make_query(3, name("www.h.example"), RType.A)
        net.send(Datagram(src="hs-client", dst="10.88.0.1",
                          payload=QueryEnvelope(query), src_port=4444))
        loop.run_until(5)
        assert len(sink.got) == 1
        envelope = sink.got[0].payload
        assert envelope.message.rcode == RCode.NOERROR
        assert envelope.machine_id == "host-ns"
        assert envelope.pop_id == ""  # unicast, no PoP

    def test_reply_ports_swapped(self, world):
        loop, net, machine, host = world
        sink = Collector()
        net.attach_endpoint("hs-client", sink)
        query = make_query(4, name("www.h.example"), RType.A)
        net.send(Datagram(src="hs-client", dst="10.88.0.1",
                          payload=QueryEnvelope(query), src_port=5151))
        loop.run_until(5)
        reply = sink.got[0]
        assert reply.dst_port == 5151
        assert reply.src_port == 53

    def test_non_query_payload_ignored(self, world):
        loop, net, machine, host = world
        net.send(Datagram(src="hs-client", dst="10.88.0.1",
                          payload="garbage"))
        loop.run_until(5)
        assert machine.metrics.received == 0


class TestMachineBGPSpeaker:
    @pytest.fixture
    def pop_world(self):
        rng = random.Random(72)
        inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                                  n_stub=20))
        pop_id = attach_pop(inet, rng)
        loop = EventLoop()
        net = Network(loop, inet.topology, rng)
        net.build_speakers()
        pop = PoP(loop, net, pop_id)
        store = ZoneStore()
        store.add(parse_zone_text(ZONE))
        machine = NameserverMachine(
            loop, "spk-m", AuthoritativeEngine(store),
            ScoringPipeline([]), QueuePolicy(),
            MachineConfig(staleness_threshold=float("inf")))
        pop.add_machine(machine)
        return pop, MachineBGPSpeaker(pop, "spk-m",
                                      ["prefix-a", "prefix-b"])

    def test_advertise_all_and_withdraw_all(self, pop_world):
        pop, speaker = pop_world
        speaker.advertise_all()
        assert speaker.advertised == {"prefix-a", "prefix-b"}
        assert pop.advertises("prefix-a") and pop.advertises("prefix-b")
        speaker.withdraw_all()
        assert speaker.advertised == set()
        assert not pop.advertises("prefix-a")

    def test_idempotent_operations(self, pop_world):
        pop, speaker = pop_world
        speaker.advertise("prefix-a")
        speaker.advertise("prefix-a")
        assert pop.ecmp_set("prefix-a") == ["spk-m"]
        speaker.withdraw("prefix-a")
        speaker.withdraw("prefix-a")
        assert not pop.advertises("prefix-a")

    def test_partial_withdraw(self, pop_world):
        pop, speaker = pop_world
        speaker.advertise_all()
        speaker.withdraw("prefix-a")
        assert speaker.advertised == {"prefix-b"}
        assert pop.advertises("prefix-b")
        assert not pop.advertises("prefix-a")
