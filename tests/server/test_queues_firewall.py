"""Tests for penalty queues and the QoD firewall."""

import pytest

from repro.dnscore import RType, name
from repro.filters import QueuePolicy
from repro.server import PenaltyQueueRuntime, QoDFirewall, QoDSignature


class TestPenaltyQueues:
    def make(self, depth=3):
        return PenaltyQueueRuntime(
            QueuePolicy(max_scores=(0.0, 10.0, 50.0), s_max=100.0),
            max_depth_per_queue=depth)

    def test_priority_order(self):
        q = self.make()
        q.enqueue("suspicious", 5.0)
        q.enqueue("clean", 0.0)
        q.enqueue("worst", 60.0)
        assert q.pop_next() == (0, "clean")
        assert q.pop_next() == (1, "suspicious")
        assert q.pop_next() == (2, "worst")
        assert q.pop_next() is None

    def test_fifo_within_queue(self):
        q = self.make()
        q.enqueue("first", 0.0)
        q.enqueue("second", 0.0)
        assert q.pop_next()[1] == "first"
        assert q.pop_next()[1] == "second"

    def test_s_max_discard(self):
        q = self.make()
        assert not q.enqueue("evil", 150.0)
        assert q.stats.discarded_s_max == 1
        assert not q

    def test_depth_limit(self):
        q = self.make(depth=2)
        assert q.enqueue("a", 0.0)
        assert q.enqueue("b", 0.0)
        assert not q.enqueue("c", 0.0)
        assert q.stats.dropped_full == 1
        # Other queues unaffected.
        assert q.enqueue("d", 20.0)

    def test_work_conserving(self):
        # Higher-penalty items are served when lower queues are empty.
        q = self.make()
        q.enqueue("bad", 60.0)
        assert q.pop_next() == (2, "bad")

    def test_clear_counts_losses(self):
        q = self.make()
        q.enqueue("a", 0.0)
        q.enqueue("b", 20.0)
        assert q.clear() == 2
        assert q.total_depth() == 0

    def test_stats_per_queue(self):
        q = self.make()
        q.enqueue("a", 0.0)
        q.enqueue("b", 5.0)
        q.pop_next()
        assert q.stats.enqueued_per_queue == [1, 1, 0]
        assert q.stats.served_per_queue == [1, 0, 0]


class TestQoDFirewall:
    def test_rule_matches_similar_queries(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.record_crash(name("bad.zone.example"), RType.TXT, now=0.0)
        # Same parent domain + type: dropped.
        assert fw.should_drop(name("bad.zone.example"), RType.TXT, 1.0)
        assert fw.should_drop(name("other.zone.example"), RType.TXT, 1.0)

    def test_dissimilar_queries_pass(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.record_crash(name("bad.zone.example"), RType.TXT, now=0.0)
        assert not fw.should_drop(name("bad.zone.example"), RType.A, 1.0)
        assert not fw.should_drop(name("x.other.example"), RType.TXT, 1.0)

    def test_rule_expires_after_t_qod(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.record_crash(name("bad.zone.example"), RType.TXT, now=0.0)
        assert fw.should_drop(name("bad.zone.example"), RType.TXT, 59.0)
        assert not fw.should_drop(name("bad.zone.example"), RType.TXT,
                                  61.0)
        assert fw.active_rules(61.0) == 0

    def test_crash_dump_recorded(self):
        fw = QoDFirewall()
        fw.record_crash(name("a.b.c"), RType.A, now=5.0)
        assert len(fw.crash_dumps) == 1
        assert fw.crash_dumps[0][0] == 5.0

    def test_signature_for_root(self):
        sig = QoDSignature.for_query(name("."), RType.ANY)
        assert sig.matches(name("."), RType.ANY)

    def test_drop_counter(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.record_crash(name("q.z.example"), RType.TXT, now=0.0)
        fw.should_drop(name("q.z.example"), RType.TXT, 1.0)
        fw.should_drop(name("r.z.example"), RType.TXT, 2.0)
        assert fw.dropped == 2


class TestQoDExpiryBoundary:
    """Strict expiry: a rule installed at t is dead exactly at t + t_qod."""

    def test_query_exactly_at_deadline_passes(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=10.0)
        assert fw.should_drop(name("bad.zone.example"), RType.TXT, 69.999)
        # deadline <= now prunes: the boundary query is re-attempted.
        assert not fw.should_drop(name("bad.zone.example"), RType.TXT,
                                  70.0)

    def test_active_rules_boundary(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=0.0)
        assert fw.active_rules(59.999) == 1
        assert fw.active_rules(60.0) == 0

    def test_should_drop_prunes_expired_rules(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=0.0)
        # A non-matching query past the deadline still prunes the rule
        # from the table entirely (not merely filters it out).
        fw.should_drop(name("other.thing.example"), RType.A, 61.0)
        assert fw.active_rules(0.0) == 0

    def test_reinstall_of_expired_signature_refreshes_deadline(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=0.0)
        assert not fw.should_drop(name("bad.zone.example"), RType.TXT,
                                  60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=60.0)
        assert fw.should_drop(name("bad.zone.example"), RType.TXT, 119.0)
        assert not fw.should_drop(name("bad.zone.example"), RType.TXT,
                                  120.0)

    def test_reinstall_of_live_signature_extends_deadline(self):
        fw = QoDFirewall(t_qod=60.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=0.0)
        fw.install_rule(name("bad.zone.example"), RType.TXT, now=30.0)
        assert fw.active_rules(0.0) == 1          # same signature, one rule
        assert fw.should_drop(name("bad.zone.example"), RType.TXT, 89.0)

    def test_remove_rule_twice_is_noop(self):
        fw = QoDFirewall(t_qod=60.0)
        sig = fw.install_rule(name("bad.zone.example"), RType.TXT,
                              now=0.0)
        fw.remove_rule(sig)
        fw.remove_rule(sig)
        assert fw.active_rules(1.0) == 0
