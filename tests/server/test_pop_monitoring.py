"""Tests for PoP ECMP/origination and the monitoring agent."""

import random

import pytest

from repro.dnscore import RType, make_query, name, parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    Datagram,
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.server import (
    AuthoritativeEngine,
    MachineBGPSpeaker,
    MachineConfig,
    MachineState,
    MonitoringAgent,
    NameserverMachine,
    PoP,
    QueryEnvelope,
    ZoneStore,
    ecmp_hash,
)
from repro.server.monitoring import HealthReport

ZONE = """\
$ORIGIN p.example.
$TTL 300
@ IN SOA ns1.p.example. admin.p.example. 1 7200 3600 1209600 300
@ IN NS ns1.p.example.
www IN A 10.0.0.1
"""

PREFIX = "23.222.61.64"


@pytest.fixture
def world():
    rng = random.Random(21)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=24))
    pop_id = attach_pop(inet, rng)
    attach_host(inet, rng, host_id="client-0")
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    pop = PoP(loop, net, pop_id)
    return loop, net, pop


def add_machine(loop, pop, machine_id, med=0,
                config=None) -> tuple[NameserverMachine, MachineBGPSpeaker]:
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    machine = NameserverMachine(
        loop, machine_id, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(),
        config or MachineConfig(staleness_threshold=float("inf")))
    pop.add_machine(machine)
    speaker = MachineBGPSpeaker(pop, machine_id, [PREFIX], med=med)
    return machine, speaker


def send_query(loop, net, port, msg_id=1):
    q = make_query(msg_id, name("www.p.example"), RType.A)
    net.send(Datagram(src="client-0", dst=PREFIX,
                      payload=QueryEnvelope(q), src_port=port))


class TestPoPOrigination:
    def test_advertises_when_first_machine_appears(self, world):
        loop, net, pop = world
        _, speaker = add_machine(loop, pop, "m1")
        speaker.advertise_all()
        assert pop.advertises(PREFIX)
        assert net.speaker(pop.router_id).best_route(PREFIX) is not None

    def test_withdraws_when_last_machine_leaves(self, world):
        loop, net, pop = world
        _, s1 = add_machine(loop, pop, "m1")
        _, s2 = add_machine(loop, pop, "m2")
        s1.advertise_all()
        s2.advertise_all()
        s1.withdraw_all()
        assert pop.advertises(PREFIX)
        s2.withdraw_all()
        assert not pop.advertises(PREFIX)
        assert net.speaker(pop.router_id).best_route(PREFIX) is None

    def test_med_keeps_input_delayed_out_of_ecmp(self, world):
        loop, net, pop = world
        _, s_regular = add_machine(loop, pop, "m-reg", med=0)
        _, s_delayed = add_machine(loop, pop, "m-del", med=100)
        s_regular.advertise_all()
        s_delayed.advertise_all()
        assert pop.ecmp_set(PREFIX) == ["m-reg"]
        # Regular machine withdraws: router falls back to high-MED.
        s_regular.withdraw_all()
        assert pop.ecmp_set(PREFIX) == ["m-del"]

    def test_ecmp_spreads_random_ports(self, world):
        loop, net, pop = world
        machines = []
        for i in range(4):
            m, s = add_machine(loop, pop, f"m{i}")
            s.advertise_all()
            machines.append(m)
        loop.run_until(30)
        for i in range(200):
            send_query(loop, net, port=1024 + i * 7, msg_id=i)
        loop.run_until(40)
        received = [m.metrics.received for m in machines]
        assert sum(received) == 200
        assert all(count > 20 for count in received)

    def test_fixed_port_pins_one_machine(self, world):
        loop, net, pop = world
        machines = []
        for i in range(4):
            m, s = add_machine(loop, pop, f"m{i}")
            s.advertise_all()
            machines.append(m)
        loop.run_until(30)
        for i in range(50):
            send_query(loop, net, port=5353, msg_id=i)
        loop.run_until(40)
        received = [m.metrics.received for m in machines]
        assert sorted(received) == [0, 0, 0, 50]

    def test_ecmp_hash_deterministic(self):
        key = ("1.2.3.4", 5353, "5.6.7.8", 53)
        assert ecmp_hash(key) == ecmp_hash(key)
        assert ecmp_hash(key) != ecmp_hash(("1.2.3.4", 5354, "5.6.7.8", 53))


class TestMonitoringAgent:
    def test_detects_fault_and_self_suspends(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")
        agent = MonitoringAgent(loop, machine, speaker, period=1.0)
        speaker.advertise_all()
        loop.run_until(5)
        machine.fault = "wrong_answer"
        loop.run_until(8)
        assert machine.state == MachineState.SUSPENDED
        assert not pop.advertises(PREFIX)
        assert agent.metrics.suspensions == 1

    def test_resumes_after_recovery(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")
        agent = MonitoringAgent(loop, machine, speaker, period=1.0)
        speaker.advertise_all()
        loop.run_until(5)
        machine.fault = "unresponsive"
        loop.run_until(8)
        machine.fault = None
        loop.run_until(12)
        assert machine.state == MachineState.RUNNING
        assert pop.advertises(PREFIX)
        assert agent.metrics.resumptions == 1

    def test_crash_withdraws_and_readvertises(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(
            loop, pop, "m1",
            config=MachineConfig(restart_delay=3.0,
                                 staleness_threshold=float("inf")))
        MonitoringAgent(loop, machine, speaker, period=1.0)
        speaker.advertise_all()
        loop.run_until(5)
        machine.crash()
        assert not pop.advertises(PREFIX)
        loop.run_until(15)
        assert machine.state == MachineState.RUNNING
        assert pop.advertises(PREFIX)

    def test_coordinator_denial_prevents_suspension(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")

        class Deny:
            def request_suspension(self, machine_id):
                return False

            def release_suspension(self, machine_id):
                pass

        agent = MonitoringAgent(loop, machine, speaker, period=1.0,
                                coordinator=Deny())
        speaker.advertise_all()
        loop.run_until(5)
        machine.fault = "wrong_answer"
        loop.run_until(10)
        # Denied: keeps serving in a degraded state.
        assert machine.state == MachineState.RUNNING
        assert pop.advertises(PREFIX)
        assert agent.metrics.suspensions_denied > 0

    def test_staleness_triggers_suspension(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(
            loop, pop, "m1",
            config=MachineConfig(staleness_threshold=10.0))
        MonitoringAgent(loop, machine, speaker, period=1.0)
        speaker.advertise_all()
        machine.receive_metadata(0.0)
        loop.run_until(5)
        assert machine.state == MachineState.RUNNING
        loop.run_until(20)
        assert machine.state == MachineState.SUSPENDED
        # Metadata returns: agent resumes the machine.
        machine.receive_metadata(loop.now)
        loop.run_until(25)
        assert machine.state == MachineState.RUNNING

    def test_regression_tests_run(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")
        failures = {"fail": False}
        MonitoringAgent(
            loop, machine, speaker, period=1.0,
            regression_tests=[lambda m: not failures["fail"]])
        speaker.advertise_all()
        loop.run_until(3)
        assert machine.state == MachineState.RUNNING
        failures["fail"] = True
        loop.run_until(6)
        assert machine.state == MachineState.SUSPENDED

    def test_suspension_lease_renewed_while_held(self, world):
        loop, net, pop = world
        from repro.control.consensus import QuorumSuspensionCoordinator
        coordinator = QuorumSuspensionCoordinator(loop, max_concurrent=1,
                                                  lease_seconds=5.0)
        machine, speaker = add_machine(loop, pop, "m1")
        MonitoringAgent(loop, machine, speaker, period=1.0,
                        coordinator=coordinator)
        speaker.advertise_all()
        loop.run_until(3)
        machine.fault = "wrong_answer"
        loop.run_until(6)
        assert machine.state == MachineState.SUSPENDED
        # Hold the fault far past the 5 s lease: the agent's renewals
        # must keep the slot occupied so no second machine could claim it.
        loop.run_until(30)
        assert "m1" in coordinator.active_suspensions()
        assert not coordinator.request_suspension("intruder")


class TestHealthReportImmutability:
    """The all-clear report is a shared singleton; it must be un-poisonable."""

    def test_report_fields_are_frozen(self, world):
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")
        agent = MonitoringAgent(loop, machine, speaker, period=1.0)
        loop.run_until(2)
        report = agent.run_suite()
        assert report.healthy
        with pytest.raises(AttributeError):
            report.healthy = False
        with pytest.raises(AttributeError):
            report.reasons = ("poisoned",)

    def test_reasons_are_a_tuple_even_when_built_from_a_list(self):
        report = HealthReport(False, ["bad answer"])
        assert report.reasons == ("bad answer",)
        with pytest.raises(AttributeError):
            report.reasons.append("more")  # tuples have no append

    def test_mutation_attempt_cannot_poison_later_cycles(self, world):
        # A consumer holding the shared all-clear report and trying to
        # flip it must fail — and every subsequent suite run (on this
        # agent and any other) must still see a genuinely healthy
        # report, not a poisoned singleton.
        loop, net, pop = world
        machine, speaker = add_machine(loop, pop, "m1")
        agent = MonitoringAgent(loop, machine, speaker, period=1.0)
        other_machine, other_speaker = add_machine(loop, pop, "m2")
        other_agent = MonitoringAgent(loop, other_machine, other_speaker,
                                      period=1.0)
        loop.run_until(2)
        report = agent.run_suite()
        with pytest.raises(AttributeError):
            report.healthy = False
        assert agent.run_suite().healthy
        assert other_agent.run_suite().healthy
        loop.run_until(6)
        assert machine.state == MachineState.RUNNING
        assert other_machine.state == MachineState.RUNNING
