"""Tests for the leaky-bucket rate-limit filter."""

from repro.dnscore import RType, name
from repro.filters import QueryContext, RateLimitConfig, RateLimitFilter


def ctx(source: str, now: float) -> QueryContext:
    return QueryContext(source=source, qname=name("ex.com"),
                        qtype=RType.A, now=now)


class TestWarmup:
    def test_no_penalty_during_warmup(self):
        f = RateLimitFilter(RateLimitConfig(warmup_queries=50))
        # Even an absurd burst draws no penalty before history exists.
        assert all(f.score(ctx("r1", i * 1e-4)) == 0.0 for i in range(50))

    def test_priming_skips_warmup(self):
        f = RateLimitFilter(RateLimitConfig(min_limit_qps=1.0,
                                            headroom=2.0,
                                            burst_seconds=1.0))
        f.prime("r1", 1.0)
        # 100 queries in 100 ms blows a 2 qps limit with 2-deep bucket.
        penalties = [f.score(ctx("r1", i * 0.001)) for i in range(100)]
        assert any(p > 0 for p in penalties)


class TestEnforcement:
    def test_within_limit_never_penalized(self):
        f = RateLimitFilter(RateLimitConfig(min_limit_qps=10.0))
        f.prime("calm", 5.0)
        # 1 qps against a >= 10 qps limit.
        for i in range(200):
            assert f.score(ctx("calm", float(i))) == 0.0

    def test_sustained_excess_penalized(self):
        config = RateLimitConfig(min_limit_qps=5.0, headroom=1.0,
                                 burst_seconds=2.0, warmup_queries=5)
        f = RateLimitFilter(config)
        f.prime("hot", 5.0)
        penalties = [f.score(ctx("hot", i * 0.01)) for i in range(400)]
        assert sum(1 for p in penalties if p) > 100

    def test_burst_tolerated_then_drains(self):
        config = RateLimitConfig(min_limit_qps=10.0, headroom=1.0,
                                 burst_seconds=5.0, warmup_queries=0,
                                 learning_alpha=0.0)
        f = RateLimitFilter(config)
        f.prime("bursty", 10.0)
        # A 30-query burst fits in the 50-deep bucket.
        assert all(f.score(ctx("bursty", 100.0 + i * 0.001)) == 0.0
                   for i in range(30))
        # After a long quiet period the bucket drains fully.
        assert f.score(ctx("bursty", 200.0)) == 0.0

    def test_per_source_isolation(self):
        config = RateLimitConfig(min_limit_qps=5.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0)
        f = RateLimitFilter(config)
        f.prime("attacker", 5.0)
        f.prime("victim", 5.0)
        for i in range(200):
            f.score(ctx("attacker", i * 0.001))
        # The victim's bucket is untouched.
        assert f.score(ctx("victim", 1.0)) == 0.0


class TestLearning:
    def test_learned_rate_tracks_traffic(self):
        f = RateLimitFilter(RateLimitConfig(learning_alpha=0.3,
                                            learning_window=10.0))
        for i in range(1000):
            f.score(ctx("r", i * 0.1))  # 10 qps over 100 s
        assert 2.0 < f.learned_rate("r") < 40.0

    def test_attack_cannot_self_legitimize_quickly(self):
        # 1000 qps burst for 5 s: shorter than the learning window, so
        # the learned rate stays untouched and penalties accrue.
        config = RateLimitConfig(min_limit_qps=10.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0,
                                 learning_window=60.0)
        f = RateLimitFilter(config)
        f.prime("spoof", 10.0)
        penalties = [f.score(ctx("spoof", i * 0.001)) for i in range(5000)]
        assert sum(1 for p in penalties if p) > 4000
        assert f.learned_rate("spoof") == 10.0

    def test_learned_rate_zero_for_unknown(self):
        f = RateLimitFilter()
        assert f.learned_rate("ghost") == 0.0

    def test_penalized_counter(self):
        config = RateLimitConfig(min_limit_qps=1.0, headroom=1.0,
                                 burst_seconds=0.5, warmup_queries=0)
        f = RateLimitFilter(config)
        f.prime("x", 1.0)
        for i in range(100):
            f.score(ctx("x", i * 0.001))
        assert f.penalized > 0


class TestEgregiousDiscard:
    def test_extreme_flood_scores_past_s_max(self):
        from repro.filters import QueuePolicy
        config = RateLimitConfig(min_limit_qps=1.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0,
                                 egregious_multiplier=20.0)
        f = RateLimitFilter(config)
        f.prime("flood", 1.0)
        policy = QueuePolicy()
        discarded = 0
        for i in range(5_000):
            penalty = f.score(ctx("flood", i * 0.0005))  # 2,000 qps
            if policy.queue_for(penalty) is None:
                discarded += 1
        # The flood eventually crosses the egregious threshold and is
        # dropped outright rather than merely deprioritized.
        assert discarded > 3_000

    def test_moderate_excess_only_deprioritized(self):
        from repro.filters import QueuePolicy
        config = RateLimitConfig(min_limit_qps=10.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0,
                                 egregious_multiplier=50.0)
        f = RateLimitFilter(config)
        f.prime("warm", 10.0)
        policy = QueuePolicy()
        for i in range(500):
            penalty = f.score(ctx("warm", i * 0.05))  # 20 qps vs 10
            assert policy.queue_for(penalty) is not None


class TestColdStartEdges:
    """Edge cases the defense ladder's mid-attack insertion hits."""

    def test_unseen_source_gets_min_limit_floor(self):
        # A fresh filter dropped into an attack in progress: an unseen
        # well-behaved source rides the min_limit floor un-penalized
        # once warmup passes.
        config = RateLimitConfig(min_limit_qps=10.0, burst_seconds=1.0,
                                 warmup_queries=0)
        f = RateLimitFilter(config)
        assert all(f.score(ctx("fresh", i * 0.5)) == 0.0
                   for i in range(100))   # 2 qps << 10 qps floor

    def test_unseen_flood_penalized_after_capacity(self):
        config = RateLimitConfig(min_limit_qps=10.0, headroom=4.0,
                                 burst_seconds=5.0, warmup_queries=0)
        f = RateLimitFilter(config)
        # 1000 qps from a source with no history: the first ~50
        # arrivals fit the floor's bucket, the rest are penalized.
        penalties = [f.score(ctx("flood", i * 0.001)) for i in range(200)]
        assert penalties[0] == 0.0
        assert penalties[-1] > 0.0
        assert sum(1 for p in penalties if p) >= 140

    def test_prime_zero_qps_keeps_floor(self):
        config = RateLimitConfig(min_limit_qps=10.0, headroom=4.0,
                                 burst_seconds=1.0, warmup_queries=20)
        f = RateLimitFilter(config)
        f.prime("idle", 0.0)
        assert f.learned_rate("idle") == 0.0
        # Primed-at-zero still gets the floor: 2 qps is never penalized.
        assert all(f.score(ctx("idle", i * 0.5)) == 0.0
                   for i in range(40))

    def test_prime_negative_qps_clamped(self):
        f = RateLimitFilter()
        f.prime("weird", -25.0)
        assert f.learned_rate("weird") == 0.0
        assert f.score(ctx("weird", 0.0)) == 0.0


class TestLearnedRateDecayVsBands:
    def test_quiet_period_decays_learned_rate(self):
        # A source that stops talking decays toward zero via the EWMA,
        # window by window, rather than keeping its old entitlement.
        config = RateLimitConfig(min_limit_qps=1.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0,
                                 learning_window=10.0, learning_alpha=0.5)
        f = RateLimitFilter(config)
        f.prime("fading", 64.0)
        # One query per window: ~0.1 qps observed.
        for i in range(6):
            f.score(ctx("fading", i * 10.0 + 10.0))
        assert f.learned_rate("fading") < 64.0 * 0.5 ** 4

    def test_decayed_source_lands_in_penalty_band_not_discard(self):
        from repro.filters import QueuePolicy
        # After decay, a moderate burst draws the standard penalty —
        # deprioritized into a penalty queue, never discarded outright.
        config = RateLimitConfig(min_limit_qps=1.0, headroom=1.0,
                                 burst_seconds=1.0, warmup_queries=0,
                                 learning_window=10.0, learning_alpha=0.5,
                                 penalty=20.0)
        f = RateLimitFilter(config)
        f.prime("fading", 50.0)
        for i in range(6):
            f.score(ctx("fading", i * 10.0 + 10.0))
        policy = QueuePolicy()
        scores = [f.score(ctx("fading", 70.0 + i * 0.1))
                  for i in range(40)]  # 10 qps vs decayed ~1-2 qps limit
        assert any(s == config.penalty for s in scores)
        for s in scores:
            assert policy.queue_for(s) is not None
