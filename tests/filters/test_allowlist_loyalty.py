"""Tests for the allowlist and loyalty filters."""

from repro.dnscore import RType, name
from repro.filters import (
    AllowlistConfig,
    AllowlistFilter,
    LoyaltyConfig,
    LoyaltyFilter,
    QueryContext,
)


def ctx(source: str, now: float, ns: str = "ns1") -> QueryContext:
    return QueryContext(source=source, qname=name("ex.com"),
                        qtype=RType.A, now=now, nameserver_id=ns)


class TestAllowlistActivation:
    def make(self):
        config = AllowlistConfig(window_seconds=1.0, activate_qps=100.0,
                                 activate_unique_sources=50,
                                 deactivate_qps=10.0)
        return AllowlistFilter(config, allowlist={"good-1", "good-2"})

    def test_dormant_under_normal_load(self):
        f = self.make()
        for i in range(50):
            assert f.score(ctx("stranger", i * 0.1)) == 0.0
        assert not f.active

    def test_activates_on_volume_and_diversity(self):
        f = self.make()
        # 200 qps from 100 distinct sources.
        for i in range(400):
            f.score(ctx(f"bot-{i % 100}", i * 0.005))
        assert f.active

    def test_high_volume_low_diversity_does_not_activate(self):
        f = self.make()
        for i in range(400):
            f.score(ctx("single-source", i * 0.005))
        assert not f.active

    def test_active_penalizes_strangers_not_allowlisted(self):
        f = self.make()
        for i in range(400):
            f.score(ctx(f"bot-{i % 100}", i * 0.005))
        t = 400 * 0.005
        assert f.score(ctx("bot-7", t)) > 0
        assert f.score(ctx("good-1", t + 0.001)) == 0.0

    def test_deactivates_when_attack_subsides(self):
        f = self.make()
        for i in range(400):
            f.score(ctx(f"bot-{i % 100}", i * 0.005))
        assert f.active
        # Long quiet gap: rate in window collapses.
        f.score(ctx("late", 100.0))
        assert not f.active

    def test_refresh_replaces_list(self):
        f = self.make()
        f.refresh({"only-one"})
        assert f.allowlist == {"only-one"}
        f.add("two")
        assert "two" in f.allowlist


class TestLoyalty:
    def make(self):
        return LoyaltyFilter(LoyaltyConfig(maturity_seconds=100.0,
                                           memory_seconds=1000.0,
                                           min_history_sources=2))

    def test_primed_sources_are_loyal(self):
        f = self.make()
        f.prime("old-friend", when=0.0)
        f.prime("other", when=0.0)
        assert f.score(ctx("old-friend", 10.0)) == 0.0

    def test_new_source_penalized_once_history_exists(self):
        f = self.make()
        f.prime("a", 0.0)
        f.prime("b", 0.0)
        assert f.score(ctx("newcomer", 5.0)) > 0

    def test_cold_server_does_not_enforce(self):
        f = LoyaltyFilter(LoyaltyConfig(min_history_sources=10))
        assert f.score(ctx("anyone", 1.0)) == 0.0

    def test_attack_cannot_self_prime(self):
        f = self.make()
        f.prime("a", 0.0)
        f.prime("b", 0.0)
        # Rapid-fire queries from a spoofed source: stays disloyal until
        # maturity elapses.
        penalties = [f.score(ctx("spoofed", 5.0 + i * 0.1))
                     for i in range(100)]
        assert all(p > 0 for p in penalties)

    def test_source_earns_loyalty_after_maturity(self):
        f = self.make()
        f.prime("a", 0.0)
        f.prime("b", 0.0)
        f.score(ctx("patient", 0.0))
        assert f.score(ctx("patient", 150.0)) == 0.0

    def test_loyalty_expires_after_silence(self):
        f = self.make()
        f.prime("fickle", when=0.0)
        f.prime("other", when=0.0)
        assert f.score(ctx("fickle", 2000.0)) > 0

    def test_independent_per_instance(self):
        # Two nameservers learn independently (the catchment property).
        ns1, ns2 = self.make(), self.make()
        ns1.prime("r", 0.0)
        ns1.prime("x", 0.0)
        ns2.prime("y", 0.0)
        ns2.prime("z", 0.0)
        assert ns1.score(ctx("r", 1.0, "ns1")) == 0.0
        assert ns2.score(ctx("r", 1.0, "ns2")) > 0
