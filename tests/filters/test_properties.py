"""Property-based tests on filter and queue invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore import RType, name
from repro.filters import (
    QueryContext,
    QueuePolicy,
    RateLimitConfig,
    RateLimitFilter,
)
from repro.resolver import DNSCache
from repro.dnscore import A, make_rrset
from repro.server.queues import PenaltyQueueRuntime

scores = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)


@given(scores)
def test_queue_policy_total(score):
    policy = QueuePolicy(max_scores=(0.0, 25.0, 60.0, 120.0), s_max=500.0)
    queue = policy.queue_for(score)
    if score >= policy.s_max:
        assert queue is None
    else:
        assert 0 <= queue < policy.queue_count


@given(st.lists(st.tuples(st.text(min_size=1, max_size=4), scores),
                min_size=1, max_size=60))
def test_queue_runtime_conservation(items):
    policy = QueuePolicy(max_scores=(0.0, 25.0, 60.0), s_max=200.0)
    runtime = PenaltyQueueRuntime(policy, max_depth_per_queue=10)
    accepted = sum(1 for item, score in items
                   if runtime.enqueue(item, score))
    served = 0
    while runtime.pop_next() is not None:
        served += 1
    stats = runtime.stats
    assert served == accepted
    assert accepted + stats.discarded_s_max + stats.dropped_full == \
        len(items)


@given(st.lists(st.tuples(st.text(min_size=1, max_size=4), scores),
                min_size=2, max_size=60))
def test_queue_runtime_priority_monotone(items):
    policy = QueuePolicy(max_scores=(0.0, 25.0, 60.0), s_max=200.0)
    runtime = PenaltyQueueRuntime(policy, max_depth_per_queue=100)
    for item, score in items:
        runtime.enqueue(item, score)
    indices = []
    while (popped := runtime.pop_next()) is not None:
        indices.append(popped[0])
    assert indices == sorted(indices)


@given(st.lists(st.floats(min_value=1e-4, max_value=5.0,
                          allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=60)
def test_leaky_bucket_level_never_negative(gaps):
    f = RateLimitFilter(RateLimitConfig(warmup_queries=0))
    now = 0.0
    for gap in gaps:
        now += gap
        f.score(QueryContext("src", name("x.com"), RType.A, now))
    bucket = f._buckets["src"]
    assert bucket.level >= 0.0
    assert bucket.learned_rate >= 0.0


@given(st.integers(min_value=0, max_value=3_600),
       st.integers(min_value=1, max_value=86_400))
def test_cache_ttl_aging_bounds(age, ttl):
    cache = DNSCache()
    rrset = make_rrset(name("x.com"), RType.A, ttl, [A("10.0.0.1")])
    cache.put(rrset, now=0.0)
    hit = cache.get(name("x.com"), RType.A, now=float(age))
    if age >= ttl:
        assert hit is None
    else:
        assert hit is not None
        assert 0 <= hit.ttl <= ttl
        assert hit.ttl == ttl - age
