"""Tests for the NXDOMAIN filter and zone name tree."""

import pytest

from repro.dnscore import (
    A,
    NS,
    RType,
    SOA,
    make_query,
    make_rrset,
    make_zone,
    name,
    parse_zone_text,
)
from repro.filters import NXDomainConfig, NXDomainFilter, QueryContext
from repro.filters.nxdomain import ZoneNameTree
from repro.server.engine import AuthoritativeEngine, ZoneStore


@pytest.fixture
def zone():
    z = parse_zone_text(
        "$ORIGIN tree.example.\n$TTL 300\n"
        "@ IN SOA ns1.tree.example. admin.tree.example. 1 2 3 4 300\n"
        "@ IN NS ns1.tree.example.\n"
        "www IN A 10.0.0.1\n"
        "deep.a.b IN A 10.0.0.2\n"
        "*.wild IN A 10.0.0.3\n"
        "sub IN NS ns.elsewhere.net.\n")
    return z


@pytest.fixture
def store(zone):
    s = ZoneStore()
    s.add(zone)
    return s


class TestZoneNameTree:
    def test_exact_names_covered(self, zone):
        tree = ZoneNameTree(zone)
        assert tree.covers(name("www.tree.example"))
        assert tree.covers(name("tree.example"))

    def test_empty_nonterminals_covered(self, zone):
        tree = ZoneNameTree(zone)
        assert tree.covers(name("a.b.tree.example"))
        assert tree.covers(name("b.tree.example"))

    def test_random_names_not_covered(self, zone):
        tree = ZoneNameTree(zone)
        assert not tree.covers(name("a3n92nv9.tree.example"))
        assert not tree.covers(name("x.y.z.tree.example"))

    def test_wildcard_children_covered(self, zone):
        tree = ZoneNameTree(zone)
        assert tree.covers(name("anything.wild.tree.example"))
        assert tree.covers(name("a.b.wild.tree.example"))

    def test_below_delegation_covered(self, zone):
        # Names under a zone cut get referrals, not NXDOMAIN.
        tree = ZoneNameTree(zone)
        assert tree.covers(name("whatever.sub.tree.example"))

    def test_below_leaf_not_covered(self, zone):
        tree = ZoneNameTree(zone)
        assert not tree.covers(name("below.www.tree.example"))


def drive_nxdomains(filter_, engine, store, count, start=0.0):
    import random
    rng = random.Random(4)
    for i in range(count):
        label = "".join(rng.choice("abcdefgh0123") for _ in range(10))
        query = make_query(i & 0xFFFF, name(f"{label}.tree.example"),
                           RType.A)
        response = engine.respond(query)
        filter_.observe_response(query, response, now=start + i * 0.01)


class TestFilter:
    def test_tree_builds_after_threshold(self, store):
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=20,
                                                 window_seconds=60.0))
        drive_nxdomains(f, engine, store, 19)
        assert f.trees_built == 0
        drive_nxdomains(f, engine, store, 2, start=1.0)
        assert f.trees_built == 1
        assert f.tree_for(name("tree.example")) is not None

    def test_window_expiry_prevents_slow_trigger(self, store):
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=20,
                                                 window_seconds=1.0))
        # 30 NXDOMAINs spread over 60 s: never 20 within 1 s.
        import random
        rng = random.Random(9)
        for i in range(30):
            label = "".join(rng.choice("abcdef") for _ in range(8))
            q = make_query(i, name(f"{label}.tree.example"), RType.A)
            f.observe_response(q, engine.respond(q), now=i * 2.0)
        assert f.trees_built == 0

    def test_scoring_before_tree_is_free(self, store):
        f = NXDomainFilter(store)
        ctx = QueryContext(source="r", qname=name("rnd.tree.example"),
                           qtype=RType.A, now=0.0)
        assert f.score(ctx) == 0.0

    def test_scoring_after_tree(self, store):
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=10,
                                                 window_seconds=60.0))
        drive_nxdomains(f, engine, store, 15)
        bad = QueryContext(source="r", qname=name("zzz9.tree.example"),
                           qtype=RType.A, now=1.0)
        good = QueryContext(source="r", qname=name("www.tree.example"),
                            qtype=RType.A, now=1.0)
        wild = QueryContext(source="r",
                            qname=name("any.wild.tree.example"),
                            qtype=RType.A, now=1.0)
        assert f.score(bad) > 0
        assert f.score(good) == 0.0
        assert f.score(wild) == 0.0

    def test_unknown_zone_not_penalized(self, store):
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=10,
                                                 window_seconds=60.0))
        drive_nxdomains(f, engine, store, 15)
        ctx = QueryContext(source="r", qname=name("other.org"),
                           qtype=RType.A, now=1.0)
        assert f.score(ctx) == 0.0

    def test_invalidate_drops_tree(self, store):
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=10,
                                                 window_seconds=60.0))
        drive_nxdomains(f, engine, store, 15)
        f.invalidate(name("tree.example"))
        assert f.tree_for(name("tree.example")) is None

    def test_global_tree_mode_builds_everything(self, store):
        second = make_zone(
            name("other.example"),
            SOA(name("ns.other.example"), name("h.other.example"),
                1, 2, 3, 4, 300),
            [name("ns.other.example")])
        second.add_rrset(make_rrset(name("a.other.example"), RType.A, 60,
                                    [A("10.0.0.9")]))
        store.add(second)
        engine = AuthoritativeEngine(store)
        f = NXDomainFilter(store, NXDomainConfig(trigger_count=10,
                                                 window_seconds=60.0,
                                                 global_tree=True))
        drive_nxdomains(f, engine, store, 15)
        assert f.trees_built == 2
        assert f.tree_for(name("other.example")) is not None
