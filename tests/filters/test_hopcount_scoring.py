"""Tests for the hop-count filter, the scoring pipeline, and queue policy."""

import pytest

from repro.dnscore import RType, name
from repro.filters import (
    HopCountConfig,
    HopCountFilter,
    QueryContext,
    QueuePolicy,
    ScoringPipeline,
)


def ctx(source="r1", now=0.0, ip_ttl=58):
    return QueryContext(source=source, qname=name("ex.com"),
                        qtype=RType.A, now=now, ip_ttl=ip_ttl)


class TestHopCount:
    def test_no_enforcement_without_history(self):
        f = HopCountFilter()
        assert f.score(ctx(ip_ttl=10)) == 0.0

    def test_consistent_ttl_never_penalized(self):
        f = HopCountFilter(HopCountConfig(min_observations=5))
        for i in range(50):
            assert f.score(ctx(now=float(i), ip_ttl=58)) == 0.0

    def test_tolerance_allows_small_jitter(self):
        f = HopCountFilter(HopCountConfig(min_observations=5, tolerance=1))
        f.prime("r1", 58)
        assert f.score(ctx(ip_ttl=57)) == 0.0
        assert f.score(ctx(ip_ttl=59)) == 0.0

    def test_spoofed_ttl_penalized(self):
        f = HopCountFilter(HopCountConfig(min_observations=5))
        f.prime("r1", 58)
        assert f.score(ctx(ip_ttl=44)) > 0
        assert f.penalized == 1

    def test_first_observation_sets_expectation(self):
        f = HopCountFilter()
        f.score(ctx(ip_ttl=51))
        assert f.expected_ttl("r1") == 51

    def test_route_change_relearned_after_streak(self):
        # A genuine route change is a *clean* switch: every packet now
        # carries the new TTL, so the streak rule relearns it.
        f = HopCountFilter(HopCountConfig(min_observations=5,
                                          relearn_streak=30))
        f.prime("r1", 58)
        for i in range(30):
            f.score(ctx(now=float(i), ip_ttl=61))
        assert f.expected_ttl("r1") == 61
        assert f.relearned == 1
        assert f.score(ctx(now=100.0, ip_ttl=61)) == 0.0

    def test_attack_cannot_poison_history(self):
        # Interleaved legitimate traffic at the true TTL keeps breaking
        # the attacker's streak, so the expectation never flips.
        f = HopCountFilter(HopCountConfig(min_observations=5,
                                          relearn_streak=20))
        f.prime("r1", 58)
        for i in range(500):
            # 10 attack packets for every legitimate one.
            ttl = 41 if i % 11 else 58
            f.score(ctx(now=float(i), ip_ttl=ttl))
        assert f.expected_ttl("r1") == 58
        assert f.penalized > 400


class TestPipeline:
    def test_sums_contributions(self):
        class Fixed:
            def __init__(self, name_, value):
                self.name = name_
                self.value = value

            def score(self, _ctx):
                return self.value

        pipeline = ScoringPipeline([Fixed("a", 5.0), Fixed("b", 0.0),
                                    Fixed("c", 7.0)])
        breakdown = pipeline.score(ctx())
        assert breakdown.total == 12.0
        assert breakdown.contributions == {"a": 5.0, "c": 7.0}
        assert pipeline.scored == 1

    def test_empty_pipeline_scores_zero(self):
        assert ScoringPipeline([]).score(ctx()).total == 0.0


class TestQueuePolicy:
    def test_zero_score_lowest_queue(self):
        policy = QueuePolicy()
        assert policy.queue_for(0.0) == 0

    def test_band_assignment(self):
        policy = QueuePolicy(max_scores=(0.0, 10.0, 50.0), s_max=100.0)
        assert policy.queue_for(5.0) == 1
        assert policy.queue_for(10.0) == 1
        assert policy.queue_for(11.0) == 2
        assert policy.queue_for(75.0) == 2  # above all bounds, below s_max

    def test_s_max_discards(self):
        policy = QueuePolicy(max_scores=(0.0, 10.0), s_max=50.0)
        assert policy.queue_for(50.0) is None
        assert policy.queue_for(500.0) is None

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            QueuePolicy(max_scores=())
        with pytest.raises(ValueError):
            QueuePolicy(max_scores=(10.0, 5.0))
