"""Tests for the safe-rollout release train (validate/canary/promote)."""

import random

import pytest

from repro.control.pubsub import CDN_CHANNEL, MetadataBus
from repro.control.rollout import (
    RolloutCoordinator,
    RolloutParams,
    RolloutPhase,
    probe_targets,
)
from repro.dnscore import (
    A,
    RType,
    SOA,
    TXT,
    make_rrset,
    make_zone,
    name,
)
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry import state as telemetry_state
from repro.telemetry.alerts import AlertSeverity, RatioDetector
from repro.telemetry.mitigation import RollbackArm, arm

ORIGIN = name("r.example")
PARAMS = RolloutParams(soak_seconds=30.0, check_period=1.0)


def zone_v(serial, *, with_www=True):
    z = make_zone(ORIGIN,
                  SOA(name("ns1.r.example"), name("admin.r.example"),
                      serial, 7200, 3600, 1209600, 300),
                  [name("ns1.akam.net")])
    if with_www:
        z.add_rrset(make_rrset(name("www.r.example"), RType.A, 300,
                               [A(f"10.0.{serial}.1")]))
    return z


class Train:
    """One loop + bus + machine fleet + coordinator, pre-baselined."""

    def __init__(self, n_canaries=2, n_rest=3, params=PARAMS):
        self.loop = EventLoop()
        self.bus = MetadataBus(self.loop, random.Random(7))
        self.machines = []
        for i in range(n_canaries + n_rest):
            machine = NameserverMachine(
                self.loop, f"m{i}", AuthoritativeEngine(ZoneStore()),
                ScoringPipeline([]), QueuePolicy(),
                MachineConfig(zone_guard_enabled=True,
                              staleness_threshold=float("inf")))
            machine.metadata_handlers["zone"] = machine.handle_zone_update
            self.bus.subscribe(CDN_CHANNEL, machine)
            self.machines.append(machine)
        self.canaries = self.machines[:n_canaries]
        self.rest = self.machines[n_canaries:]
        self.coordinator = RolloutCoordinator(
            self.loop, self.bus, canaries=self.canaries,
            fleet=self.machines, params=params)
        self.baseline = zone_v(1)
        for machine in self.machines:
            machine.install_zone(self.baseline)
        self.coordinator.set_baseline(self.baseline)

    def serials(self, machines=None):
        return [m.engine.store.get(ORIGIN).serial
                for m in (machines or self.machines)]


class TestValidationGate:
    def test_fatal_update_rejected_before_publish(self):
        train = Train()
        published_before = train.bus.published
        release = train.coordinator.publish(zone_v(0))   # regression vs 1
        assert release.phase is RolloutPhase.REJECTED
        assert "serial-regression" in release.detail
        assert train.bus.published == published_before
        assert train.coordinator.rejections == 1
        assert train.coordinator.active_release(ORIGIN) is None
        train.loop.run_until(100.0)
        assert train.serials() == [1] * 5


class TestPromotion:
    def test_clean_soak_promotes_to_fleet(self):
        train = Train()
        release = train.coordinator.publish(zone_v(2))
        assert release.phase is RolloutPhase.CANARY
        train.loop.run_until(25.0)
        # Mid-soak: canaries converted, the rest still on the baseline.
        assert train.serials(train.canaries) == [2, 2]
        assert train.serials(train.rest) == [1, 1, 1]
        train.loop.run_until(100.0)
        assert release.phase is RolloutPhase.PROMOTED
        assert train.serials() == [2] * 5
        assert train.coordinator.promotions == 1
        assert train.coordinator.last_known_good[ORIGIN] is release.zone

    def test_newer_publish_supersedes_active_canary(self):
        train = Train()
        first = train.coordinator.publish(zone_v(2))
        train.loop.run_until(5.0)
        second = train.coordinator.publish(zone_v(3))
        assert first.phase is RolloutPhase.SUPERSEDED
        assert second.phase is RolloutPhase.CANARY
        train.loop.run_until(150.0)
        assert second.phase is RolloutPhase.PROMOTED
        assert train.serials() == [3] * 5


class TestRollback:
    def test_gate_trip_rolls_canaries_back(self):
        train = Train()
        # Serial advances and the apex stays intact, so validation
        # passes — but the content the canaries get probed on is gone.
        corrupt = zone_v(2, with_www=False)
        release = train.coordinator.publish(corrupt)
        train.loop.run_until(200.0)
        assert release.phase is RolloutPhase.ROLLED_BACK
        assert "health gate tripped" in release.detail
        assert train.coordinator.rollbacks == 1
        # Canaries restored to the baseline; the rest never saw v2.
        assert train.serials() == [1] * 5
        rollbacks = [m.metrics.zone_rollbacks for m in train.canaries]
        assert rollbacks == [1, 1]
        assert all(m.metrics.zone_rollbacks == 0 for m in train.rest)

    def test_straggling_corrupt_delivery_loses_to_rollback(self):
        # The versioned bus is what makes rollback *stick*: a corrupt
        # delivery still in flight when the rollback lands must be
        # dropped, not applied over the restored zone.
        train = Train()
        train.coordinator.publish(zone_v(2, with_www=False))
        train.loop.run_until(500.0)
        assert train.serials() == [1] * 5
        assert train.bus.stale_deliveries_dropped >= 0  # drops counted

    def test_input_delayed_canary_is_not_probed(self):
        train = Train()
        delayed = train.canaries[0]
        delayed.config = MachineConfig(zone_guard_enabled=True,
                                       input_delayed=True,
                                       staleness_threshold=float("inf"))
        coordinator = RolloutCoordinator(
            train.loop, train.bus, canaries=train.canaries,
            fleet=train.machines, params=PARAMS)
        assert delayed not in coordinator._probed
        assert train.canaries[1] in coordinator._probed


class TestExternalRollback:
    def test_active_canary_rolled_back_in_place(self):
        train = Train()
        release = train.coordinator.publish(zone_v(2))
        train.loop.run_until(25.0)
        assert train.coordinator.rollback_origin(ORIGIN, reason="operator")
        assert release.phase is RolloutPhase.ROLLED_BACK
        train.loop.run_until(100.0)
        assert train.serials() == [1] * 5

    def test_emergency_republish_reaches_whole_fleet(self):
        train = Train()
        # Nothing in flight: the emergency path republishes LKG
        # fleet-wide (corruption detected after promotion).
        assert train.coordinator.rollback_origin(ORIGIN, reason="page")
        train.loop.run_until(100.0)
        assert all(m.metrics.zone_rollbacks == 1 for m in train.machines)

    def test_no_last_known_good_returns_false(self):
        train = Train()
        assert not train.coordinator.rollback_origin(name("unknown.test"))

    def test_rollback_arm_bridges_alert_to_rollback(self):
        train = Train()
        telemetry = Telemetry(TelemetryConfig(arm_mitigations=True,
                                              trace_sample_rate=0.0))
        detector = RatioDetector("zone-servfail", window=2.0,
                                 threshold=0.5, min_count=2,
                                 severity=AlertSeverity.CRITICAL)
        telemetry.alerts.add(detector, "edge.servfail")
        mitigator = RollbackArm("zone-servfail", train.coordinator, ORIGIN)
        arm(telemetry, mitigator)
        for t in (0.5, 1.0, 1.5, 2.5):
            telemetry.alerts.observe("edge.servfail", t, 1.0)
        assert mitigator.engaged == 1
        assert mitigator.rollbacks_triggered == 1
        assert train.coordinator.rollbacks == 1

    def test_arming_requires_opt_in(self):
        train = Train()
        telemetry = Telemetry(TelemetryConfig(trace_sample_rate=0.0))
        with pytest.raises(ValueError):
            arm(telemetry,
                RollbackArm("any", train.coordinator, ORIGIN))


class TestProbeTargets:
    def test_wildcards_get_synthesized_labels(self):
        z = zone_v(1, with_www=False)
        z.add_rrset(make_rrset(name("*.r.example"), RType.A, 300,
                               [A("10.9.9.9")]))
        targets = probe_targets(z, 8)
        assert (name("canary0.r.example"), RType.A) in targets

    def test_cname_targets_probe_qtype_a(self):
        z = zone_v(1)
        targets = probe_targets(z, 8)
        assert all(qtype is not RType.CNAME for _, qtype in targets)

    def test_empty_zone_falls_back_to_apex_soa(self):
        z = make_zone(ORIGIN,
                      SOA(name("ns1.r.example"), name("admin.r.example"),
                          1, 7200, 3600, 1209600, 300),
                      [name("ns1.akam.net")])
        assert probe_targets(z, 8) == [(ORIGIN, RType.SOA)]

    def test_sample_count_is_bounded(self):
        z = zone_v(1)
        for i in range(20):
            z.add_rrset(make_rrset(name(f"t{i}.r.example"), RType.TXT,
                                   300, [TXT(("x",))]))
        assert len(probe_targets(z, 8)) == 8


class TestTelemetryEvents:
    def test_transitions_count_in_passive_session(self):
        telemetry = Telemetry(TelemetryConfig(trace_sample_rate=0.0))
        with telemetry_state.session(telemetry):
            train = Train()
            train.coordinator.publish(zone_v(2))
            train.loop.run_until(100.0)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters[
            "rollout_events_total{origin=r.example.,phase=canary}"] == 1.0
        assert counters[
            "rollout_events_total{origin=r.example.,phase=promoted}"] == 1.0
