"""Rollback vs. the suspension quorum: denied machines are not stranded.

The quorum coordinator bounds how many machines may self-suspend at
once (section 4.2.1). A canary that is serving a corrupt zone *and*
denied a suspension slot keeps answering — so the rollout train's
rollback is its only remedy, and metadata delivery must reach machines
regardless of their suspension state.
"""

import random

from repro.control.consensus import QuorumSuspensionCoordinator
from repro.control.pubsub import CDN_CHANNEL, MetadataBus
from repro.control.rollout import RolloutCoordinator, RolloutParams
from repro.dnscore import A, RType, SOA, make_rrset, make_zone, name
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    MachineState,
    NameserverMachine,
    ZoneStore,
)
from repro.server.monitoring import MonitoringAgent

ORIGIN = name("q.example")


class StubSpeaker:
    def withdraw_all(self):
        pass

    def advertise_all(self):
        pass


def zone_v(serial, *, with_www=True):
    z = make_zone(ORIGIN,
                  SOA(name("ns1.q.example"), name("admin.q.example"),
                      serial, 7200, 3600, 1209600, 300),
                  [name("ns1.akam.net")])
    if with_www:
        z.add_rrset(make_rrset(name("www.q.example"), RType.A, 300,
                               [A("10.0.0.1")]))
    return z


class World:
    def __init__(self):
        self.loop = EventLoop()
        self.bus = MetadataBus(self.loop, random.Random(11))
        self.quorum = QuorumSuspensionCoordinator(self.loop,
                                                  max_concurrent=2)
        self.machines = []
        self.agents = []
        baseline = zone_v(1)
        for i in range(5):
            machine = NameserverMachine(
                self.loop, f"q{i}", AuthoritativeEngine(ZoneStore()),
                ScoringPipeline([]), QueuePolicy(),
                MachineConfig(zone_guard_enabled=True,
                              staleness_threshold=float("inf")))
            machine.metadata_handlers["zone"] = machine.handle_zone_update
            machine.install_zone(baseline)
            self.bus.subscribe(CDN_CHANNEL, machine)
            self.machines.append(machine)
            self.agents.append(MonitoringAgent(
                self.loop, machine, StubSpeaker(),
                coordinator=self.quorum))
        self.canaries = self.machines[:2]
        self.rest = self.machines[2:]
        self.rollout = RolloutCoordinator(
            self.loop, self.bus, canaries=self.canaries,
            fleet=self.machines,
            params=RolloutParams(soak_seconds=30.0, check_period=1.0))
        self.rollout.set_baseline(baseline)

    def serial(self, machine):
        return machine.engine.store.get(ORIGIN).serial


def test_rollback_lands_despite_active_quorum_denial():
    world = World()

    # Two fleet machines go sick first and win both suspension slots.
    def fill_quorum():
        for machine in world.rest[:2]:
            machine.fault = "wrong_answer"
    world.loop.call_later(0.2, fill_quorum)

    # The canaries then go sick while a corrupt (but semantically
    # valid) release is in flight: their suspension requests must be
    # denied for the rest of the run.
    def corrupt_canaries():
        for machine in world.canaries:
            machine.fault = "wrong_answer"
    world.loop.call_later(1.5, corrupt_canaries)
    world.loop.call_later(
        2.0, lambda: world.rollout.publish(zone_v(2, with_www=False)))

    world.loop.run_until(200.0)

    # The slots really were exhausted by the first two machines...
    assert [m.state for m in world.rest[:2]] == \
        [MachineState.SUSPENDED] * 2
    # ...and the canaries were denied, repeatedly, yet kept running.
    denied = [a.metrics.suspensions_denied for a in world.agents[:2]]
    assert all(d > 0 for d in denied)
    assert all(a.metrics.suspensions == 0 for a in world.agents[:2])
    assert all(m.state == MachineState.RUNNING for m in world.canaries)

    # The gate tripped and the rollback reached every canary: nobody
    # is stranded on the corrupt serial, no matter how the corrupt
    # delivery and the rollback interleaved on the versioned bus.
    assert world.rollout.rollbacks == 1
    assert all(world.serial(m) == 1 for m in world.machines)
    assert all(m.metrics.zone_rollbacks == 1 for m in world.canaries)


def test_suspended_machines_still_receive_emergency_rollback():
    world = World()
    sick = world.rest[0]
    sick.fault = "wrong_answer"
    world.loop.run_until(5.0)
    assert sick.state == MachineState.SUSPENDED

    # Emergency fleet-wide republish (corruption found post-promotion):
    # self-suspension only withdraws BGP, the process keeps consuming
    # metadata, so the suspended machine converges too.
    assert world.rollout.rollback_origin(ORIGIN, reason="page")
    world.loop.run_until(60.0)
    assert all(m.metrics.zone_rollbacks == 1 for m in world.machines)
    assert world.serial(sick) == 1
