"""MetadataBus partition lifecycle against live nameserver machines.

Section 4.2.2: a partitioned machine's metadata deliveries queue up and
flush on healing; while partitioned its staleness clock stops advancing
and the staleness check fires. These tests drive that lifecycle
end-to-end through a machine subscribed to the bus, not a bare recorder.
"""

import random

import pytest

from repro.control import MULTICAST_CHANNEL, MetadataBus
from repro.dnscore import parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop, PeriodicTask
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)

ZONE = """\
$ORIGIN pl.example.
$TTL 300
@ IN SOA ns1.pl.example. admin.pl.example. 1 2 3 4 300
@ IN NS ns1.pl.example.
"""


def make_machine(loop, machine_id="m0", *, staleness_threshold=30.0,
                 input_delayed=False):
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    return NameserverMachine(
        loop, machine_id, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(),
        MachineConfig(staleness_threshold=staleness_threshold,
                      input_delayed=input_delayed))


@pytest.fixture
def world():
    loop = EventLoop()
    bus = MetadataBus(loop, random.Random(3))
    machine = make_machine(loop)
    bus.subscribe(MULTICAST_CHANNEL, machine)
    # Steady control-plane heartbeat, like the deployment publishes.
    heartbeat = PeriodicTask(
        loop, 10.0,
        lambda: bus.publish(MULTICAST_CHANNEL, "heartbeat", "global", None),
        start_delay=1.0)
    return loop, bus, machine, heartbeat


class TestPartitionLifecycle:
    def test_messages_during_partition_are_held(self, world):
        loop, bus, machine, _ = world
        loop.run_until(15.0)
        delivered = bus.delivered_count(machine)
        assert delivered >= 1

        bus.set_partitioned(machine, True)
        loop.run_until(60.0)
        assert bus.delivered_count(machine) == delivered
        assert bus.published > delivered

    def test_healing_flushes_in_publication_order(self, world):
        loop, bus, machine, _ = world
        received = []
        machine.metadata_handlers["heartbeat"] = \
            lambda m: received.append(m.sequence)
        bus.set_partitioned(machine, True)
        loop.run_until(45.0)
        assert received == []

        bus.set_partitioned(machine, False)
        assert received == sorted(received)
        assert len(received) >= 4
        assert bus.delivered_count(machine) == len(received)

    def test_staleness_clock_stops_then_recovers(self, world):
        loop, bus, machine, _ = world
        loop.run_until(15.0)
        assert not machine.is_stale(loop.now)

        bus.set_partitioned(machine, True)
        frozen_at = machine.last_input_time
        loop.run_until(60.0)
        assert machine.last_input_time == frozen_at
        assert machine.is_stale(loop.now)

        bus.set_partitioned(machine, False)
        assert machine.last_input_time > frozen_at
        assert not machine.is_stale(loop.now)

    def test_stale_flush_does_not_mask_staleness(self, world):
        # Held messages carry their original publication time: healing
        # long after the last publish must not make the machine look
        # fresh. Stop the heartbeat mid-partition and heal much later.
        loop, bus, machine, heartbeat = world
        bus.set_partitioned(machine, True)
        loop.run_until(25.0)
        heartbeat.stop()
        loop.run_until(120.0)

        bus.set_partitioned(machine, False)
        # The newest flushed input was published before t=25: still stale.
        assert machine.last_input_time < 25.0
        assert machine.is_stale(loop.now)

    def test_partition_is_per_subscriber(self, world):
        loop, bus, machine, _ = world
        other = make_machine(loop, "m1")
        bus.subscribe(MULTICAST_CHANNEL, other)
        bus.set_partitioned(machine, True)
        loop.run_until(60.0)
        assert bus.delivered_count(machine) == 0
        assert bus.delivered_count(other) >= 5
        assert machine.is_stale(loop.now)
        assert not other.is_stale(loop.now)

    def test_heal_without_held_messages_is_a_noop(self, world):
        loop, bus, machine, _ = world
        loop.run_until(15.0)
        delivered = bus.delivered_count(machine)
        frozen_at = machine.last_input_time
        bus.set_partitioned(machine, True)
        bus.set_partitioned(machine, False)
        assert bus.delivered_count(machine) == delivered
        assert machine.last_input_time == frozen_at

    def test_partition_of_unknown_subscriber_is_ignored(self, world):
        loop, bus, machine, _ = world
        stranger = make_machine(loop, "stranger")
        bus.set_partitioned(stranger, True)   # never subscribed: no-op
        loop.run_until(15.0)
        assert bus.delivered_count(machine) >= 1

    def test_input_delayed_machine_never_reports_stale(self, world):
        loop, bus, _, _ = world
        delayed = make_machine(loop, "m-delayed", input_delayed=True)
        bus.subscribe(MULTICAST_CHANNEL, delayed, extra_delay=3600.0)
        bus.set_partitioned(delayed, True)
        loop.run_until(90.0)
        assert not delayed.is_stale(loop.now)
