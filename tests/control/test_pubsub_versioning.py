"""Tests for versioned zone delivery on the metadata bus.

Per-message delivery delays are independent draws, so two publishes of
the same key can arrive at one subscriber in either order; the bus must
guarantee the *last published* version wins anyway.
"""

import random

from repro.control.pubsub import CDN_CHANNEL, MetadataBus
from repro.netsim import EventLoop


class Sink:
    def __init__(self):
        self.received = []

    def receive_metadata_message(self, message):
        self.received.append(message)


def make_bus(seed=1):
    loop = EventLoop()
    bus = MetadataBus(loop, random.Random(seed))
    return loop, bus


class TestVersionStamping:
    def test_versions_are_monotonic_per_key(self):
        loop, bus = make_bus()
        m1 = bus.publish_zone(CDN_CHANNEL, "ex.com.", "v1")
        m2 = bus.publish_zone(CDN_CHANNEL, "ex.com.", "v2")
        other = bus.publish_zone(CDN_CHANNEL, "other.net.", "v1")
        assert (m1.zone_version, m2.zone_version) == (1, 2)
        assert other.zone_version == 1
        assert bus.zone_version("ex.com.") == 2

    def test_plain_publish_is_unversioned(self):
        loop, bus = make_bus()
        message = bus.publish(CDN_CHANNEL, "zone", "ex.com.", "v1")
        assert message.zone_version == 0
        assert bus.zone_version("ex.com.") == 0


def reordering_seed():
    """A seed where the first publish's delay exceeds the second's.

    Found by scanning, then asserted below so a delay-model change that
    invalidates the premise fails loudly instead of testing nothing.
    """
    for seed in range(100):
        rng = random.Random(seed)
        d1 = rng.uniform(2.0, 20.0)
        d2 = rng.uniform(2.0, 20.0)
        if d1 > d2 + 1.0:
            return seed, d1, d2
    raise AssertionError("no reordering seed in range")


class TestOutOfOrderDelivery:
    def test_late_old_version_is_dropped(self):
        seed, d1, d2 = reordering_seed()
        loop, bus = make_bus(seed)
        sink = Sink()
        bus.subscribe(CDN_CHANNEL, sink)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "old")
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "new")
        loop.run_until(30.0)
        # v2 arrived first (its delay was shorter); v1 arrived later
        # and must have been dropped, not applied over the newer data.
        assert [m.payload for m in sink.received] == ["new"]
        assert bus.stale_deliveries_dropped == 1
        assert bus.delivered_count(sink) == 1

    def test_in_order_delivery_keeps_both(self):
        seed, d1, d2 = reordering_seed()
        loop, bus = make_bus(seed)
        sink = Sink()
        bus.subscribe(CDN_CHANNEL, sink)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "old")
        loop.run_until(30.0)      # let v1 land before publishing v2
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "new")
        loop.run_until(60.0)
        assert [m.payload for m in sink.received] == ["old", "new"]
        assert bus.stale_deliveries_dropped == 0

    def test_keys_do_not_interfere(self):
        seed, _, _ = reordering_seed()
        loop, bus = make_bus(seed)
        sink = Sink()
        bus.subscribe(CDN_CHANNEL, sink)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "a")
        bus.publish_zone(CDN_CHANNEL, "other.net.", "b")
        loop.run_until(30.0)
        assert sorted(m.payload for m in sink.received) == ["a", "b"]


class TestHealFlushInterleaving:
    def test_held_messages_flush_on_heal(self):
        loop, bus = make_bus()
        sink = Sink()
        bus.subscribe(CDN_CHANNEL, sink)
        bus.set_partitioned(sink, True)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v1")
        loop.run_until(30.0)      # v1 lands in the held queue
        assert sink.received == []
        bus.set_partitioned(sink, False)
        assert [m.payload for m in sink.received] == ["v1"]

    def test_fresh_delivery_beats_later_heal_flush(self):
        loop, bus = make_bus()
        sink = Sink()
        bus.subscribe(CDN_CHANNEL, sink)
        bus.set_partitioned(sink, True)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v1")
        loop.run_until(30.0)      # v1 held behind the partition
        bus.set_partitioned(sink, True)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v2")
        # Heal *between* v2's publish and its delivery: the flush
        # applies held v1 first, then v2 arrives normally and wins.
        bus.set_partitioned(sink, False)
        loop.run_until(60.0)
        assert [m.payload for m in sink.received] == ["v1", "v2"]
        # Now the reverse hazard: v2 already applied, a straggling
        # replay of v1 (held from a re-partition) must be dropped.
        bus.set_partitioned(sink, True)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v3")
        loop.run_until(90.0)      # v3 held
        bus.set_partitioned(sink, False)
        assert [m.payload for m in sink.received] == ["v1", "v2", "v3"]
        assert bus.stale_deliveries_dropped == 0

    def test_stale_held_message_dropped_on_heal(self):
        seed, _, _ = reordering_seed()
        loop, bus = make_bus(seed)
        victim, witness = Sink(), Sink()
        bus.subscribe(CDN_CHANNEL, victim)
        bus.subscribe(CDN_CHANNEL, witness)
        bus.set_partitioned(victim, True)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v1")
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v2")
        loop.run_until(30.0)      # both held at victim, delivered at witness
        # The heal flush replays held messages in hold order through the
        # normal delivery path, so v1 applies then v2 supersedes it —
        # but if v2 was held *first* (shorter delay), v1 must be dropped.
        bus.set_partitioned(victim, False)
        payloads = [m.payload for m in victim.received]
        assert payloads[-1] == "v2"
        assert victim.received[-1].zone_version == 2
        held_reordered = payloads == ["v2"]
        assert held_reordered == (bus.stale_deliveries_dropped > 0)
        assert [m.payload for m in witness.received][-1] == "v2"


class TestCohortDelivery:
    def test_to_restricts_delivery_to_cohort(self):
        loop, bus = make_bus()
        canary, rest = Sink(), Sink()
        bus.subscribe(CDN_CHANNEL, canary)
        bus.subscribe(CDN_CHANNEL, rest)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "canary-only",
                         to=[canary])
        loop.run_until(30.0)
        assert [m.payload for m in canary.received] == ["canary-only"]
        assert rest.received == []

    def test_cohort_version_still_advances_globally(self):
        loop, bus = make_bus()
        canary, rest = Sink(), Sink()
        bus.subscribe(CDN_CHANNEL, canary)
        bus.subscribe(CDN_CHANNEL, rest)
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v1", to=[canary])
        bus.publish_zone(CDN_CHANNEL, "ex.com.", "v2")
        loop.run_until(30.0)
        # The fleet-wide v2 carries version 2 even though the rest
        # never saw v1 — versions are per-key, not per-subscriber.
        assert [m.zone_version for m in rest.received] == [2]
        assert canary.received[-1].zone_version == 2
