"""Defense ladder: arming, escalation, hysteresis, unwind, guardrail.

The controller is driven end-to-end through a real event loop and the
real alert pipeline: a ``GaugeDetector`` on a synthetic ``attack`` feed
raises/clears exactly like the scorecard's QPS detector, while
recording rungs log every engage/disengage with its timestamp. All
schedules (feed observations, traffic pumps) are installed up front, so
at equal times they run before the controller's later-scheduled ticks —
the timings asserted below are exact, not approximate.
"""

import pytest

from repro.control.defense import (
    DefenseController,
    DefenseParams,
    DefenseRung,
    GuardrailParams,
)
from repro.netsim import EventLoop
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.alerts import GaugeDetector


class RecordingRung(DefenseRung):
    """A rung that logs transitions instead of mutating anything."""

    def __init__(self, name, log, **kwargs):
        super().__init__(name, **kwargs)
        self.log = log

    def engage(self, now):
        self.log.append((now, self.name, "engage"))

    def disengage(self, now):
        self.log.append((now, self.name, "disengage"))


class FakeMachine:
    """Records degraded-mode transitions the controller pushes at it."""

    def __init__(self):
        self.modes = []

    def enter_degraded(self, rung_label):
        self.modes.append(("enter", rung_label))

    def exit_degraded(self):
        self.modes.append(("exit",))


def make_params(**overrides):
    defaults = dict(check_period=1.0, for_ticks=2, clear_ticks=2,
                    soak_seconds=3.0,
                    guardrail=GuardrailParams(margin=0.25, min_samples=4))
    defaults.update(overrides)
    return DefenseParams(**defaults)


def make_session(n_rungs=3, *, params=None, estimator=None, machines=(),
                 ladder=None, log=None):
    loop = EventLoop()
    telemetry = Telemetry(TelemetryConfig(arm_mitigations=True))
    telemetry.alerts.add(
        GaugeDetector("attack-qps", window=1.0, threshold=10.0,
                      for_windows=1, clear_windows=1),
        "attack")
    if log is None:
        log = []
    if ladder is None:
        ladder = [RecordingRung(f"rung-{i}", log) for i in range(n_rungs)]
    controller = DefenseController(
        loop, ladder, params=params or make_params(),
        estimator=estimator, machines=machines).arm(telemetry)
    return loop, telemetry, controller, log


def feed(loop, telemetry, value_fn, until, period=0.5):
    """Schedule alert-feed observations every ``period`` seconds."""
    steps = int(round(until / period))
    for i in range(1, steps + 1):
        t = i * period
        loop.call_at(t, telemetry.alerts.observe, "attack", t,
                     value_fn(t))


def attack_between(start, end):
    """A feed that breaches the detector on [start, end)."""
    return lambda t: 50.0 if start <= t < end else 0.0


def engages(log):
    return [(t, rung) for t, rung, action in log if action == "engage"]


def disengages(log):
    return [(t, rung) for t, rung, action in log if action == "disengage"]


class TestArming:
    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            DefenseController(EventLoop(), [])

    def test_passive_session_refuses_arming(self):
        loop = EventLoop()
        telemetry = Telemetry(TelemetryConfig(arm_mitigations=False))
        controller = DefenseController(loop, [RecordingRung("r", [])])
        with pytest.raises(ValueError):
            controller.arm(telemetry)
        # Refusal means no callbacks were attached either.
        assert telemetry.alerts.on_raise == []
        assert telemetry.alerts.on_clear == []

    def test_arm_is_idempotent(self):
        loop, telemetry, controller, _ = make_session()
        controller.arm(telemetry)
        assert len(telemetry.alerts.on_raise) == 1
        assert len(telemetry.alerts.on_clear) == 1

    def test_quiet_armed_run_schedules_nothing(self):
        # The byte-identity contract: an armed controller must not
        # perturb the loop until the first alert raise.
        loop, telemetry, controller, log = make_session()
        assert loop.pending == 0
        loop.run_until(60.0)
        assert controller.level == 0
        assert controller.transitions == []
        assert log == []


class TestEscalation:
    def test_climbs_one_rung_per_soak_in_order(self):
        loop, telemetry, controller, log = make_session(3)
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)
        # Raise at t=1.0; for_ticks=2 ticks later the first rung
        # engages, then one rung per 3 s soak.
        assert engages(log) == [(3.0, "rung-0"), (6.0, "rung-1"),
                                (9.0, "rung-2")]
        assert controller.max_level == 3

    def test_engage_waits_for_ticks(self):
        loop, telemetry, controller, log = make_session(
            1, params=make_params(for_ticks=4))
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)
        assert engages(log)[0] == (5.0, "rung-0")

    def test_transition_levels_recorded(self):
        loop, telemetry, controller, _ = make_session(2)
        feed(loop, telemetry, attack_between(0.0, 8.0), until=16.0)
        loop.run_until(25.0)
        assert [(t.action, t.level) for t in controller.transitions] == [
            ("engage", 1), ("engage", 2),
            ("disengage", 1), ("disengage", 0)]


class TestUnwind:
    def test_unwinds_in_reverse_after_clear(self):
        loop, telemetry, controller, log = make_session(3)
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)
        # Alert clears at t=13; clear_ticks=2 calm ticks per rung,
        # mildest rung last.
        assert disengages(log) == [(14.0, "rung-2"), (16.0, "rung-1"),
                                   (18.0, "rung-0")]
        assert controller.level == 0
        assert controller.unwound_at() == 18.0
        # Ticking stops once fully unwound: nothing left pending after
        # the feed runs out.
        loop.run_until(60.0)
        assert loop.pending == 0

    def test_brief_dip_does_not_unwind(self):
        # The detector clears during a one-window lull, but
        # clear_ticks=2 keeps the engaged rungs in place until the
        # attack genuinely stops.
        def value(t):
            if 5.0 <= t < 6.0:
                return 0.0
            return 50.0 if t < 12.0 else 0.0

        loop, telemetry, controller, log = make_session(2)
        feed(loop, telemetry, value, until=20.0)
        loop.run_until(25.0)
        down = disengages(log)
        assert all(t > 12.0 for t, _ in down)
        # Each rung engaged exactly once: no flapping through the dip.
        up = engages(log)
        assert sorted(rung for _, rung in up) == ["rung-0", "rung-1"]
        assert controller.level == 0


class TestGuardrail:
    @staticmethod
    def wire_traffic(loop, counters, answered_until, until, period=0.5):
        """Pump known-resolver counters: 2 received (and, while
        healthy, 2 answered) per pump."""
        def pump():
            counters["received"] += 2
            if counters["healthy"] and loop.now < answered_until:
                counters["answered"] += 2

        steps = int(round(until / period))
        for i in range(1, steps + 1):
            loop.call_at(i * period, pump)

    def make_guarded(self, ladder_names, counters, **rung_kwargs):
        log = []
        ladder = []
        for rung_name in ladder_names:
            kwargs = dict(rung_kwargs.get(rung_name, {}))
            ladder.append(RecordingRung(rung_name, log, **kwargs))

        def estimator():
            return counters["received"], counters["answered"]

        loop, telemetry, controller, _ = make_session(
            ladder=ladder, log=log, estimator=estimator)
        return loop, telemetry, controller, log, ladder

    def test_lossy_rung_reverted_and_latched(self):
        counters = {"received": 0, "answered": 0, "healthy": True}
        loop, telemetry, controller, log, ladder = self.make_guarded(
            ["bad-rung", "good-rung"], counters,
            **{"bad-rung": dict(cool_off_seconds=30.0)})

        bad = ladder[0]
        orig_engage, orig_disengage = bad.engage, bad.disengage

        def lossy_engage(now):
            counters["healthy"] = False
            orig_engage(now)

        def lossy_disengage(now):
            counters["healthy"] = True
            orig_disengage(now)

        bad.engage = lossy_engage
        bad.disengage = lossy_disengage

        self.wire_traffic(loop, counters, answered_until=1e9, until=20.0)
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)

        # bad-rung engaged at 3.0; one tick of 100% known-resolver loss
        # (vs attack_loss 0) reverts it and latches it for 30 s.
        assert controller.reverts == 1
        assert controller.latched_until == {0: 34.0}
        reverts = [t for t in controller.transitions
                   if t.action == "revert"]
        assert [(t.time, t.rung) for t in reverts] == [(4.0, "bad-rung")]
        assert "latched 30s" in reverts[0].detail
        # The ladder climbs past the latched rung to good-rung and
        # never re-tries bad-rung (latched beyond the attack's end).
        assert engages(log) == [(3.0, "bad-rung"), (5.0, "good-rung")]
        assert controller.unwound_at() == 14.0
        assert controller.attack_loss is None

    def test_attack_loss_is_tolerated(self):
        # The attack itself sheds every known-resolver answer before
        # any rung engages; a rung causing the *same* loss is within
        # the relative guardrail and must not be blamed.
        counters = {"received": 0, "answered": 0, "healthy": True}
        loop, telemetry, controller, log, _ = self.make_guarded(
            ["rung-0", "rung-1"], counters)
        self.wire_traffic(loop, counters, answered_until=1.0, until=20.0)
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)
        assert controller.reverts == 0
        assert controller.max_level == 2
        assert [t for t in controller.transitions
                if t.action == "revert"] == []

    def test_rebaseline_after_empty_revert(self):
        # Attack damage begins with the first engage, so rung-0 is
        # (unavoidably) blamed and reverted, emptying the ladder
        # mid-attack. The baseline must be re-measured there: rung-1
        # then engages under 100% ambient loss and survives. Without
        # the re-baseline it would be judged against a stale healthy
        # sample and falsely reverted too.
        counters = {"received": 0, "answered": 0, "healthy": True}
        loop, telemetry, controller, log, _ = self.make_guarded(
            ["rung-0", "rung-1"], counters)
        self.wire_traffic(loop, counters, answered_until=3.25, until=20.0)
        feed(loop, telemetry, attack_between(0.0, 12.0), until=20.0)
        loop.run_until(25.0)
        assert [(t.time, t.rung) for t in controller.transitions
                if t.action == "revert"] == [(4.0, "rung-0")]
        # rung-1 engages after the revert and holds until the attack
        # clears — its 100% loss matched the re-measured attack loss.
        # (The guardrail revert at 4.0 also shows as a rung disengage.)
        assert engages(log) == [(3.0, "rung-0"), (5.0, "rung-1")]
        assert disengages(log) == [(4.0, "rung-0"), (14.0, "rung-1")]
        assert controller.unwound_at() == 14.0

    def test_too_few_samples_defers_judgement(self):
        loop, telemetry, controller, log = make_session(
            2, estimator=lambda: (2, 0))
        feed(loop, telemetry, attack_between(0.0, 10.0), until=16.0)
        loop.run_until(25.0)
        # Two known-resolver queries ever: below min_samples, so the
        # guardrail never judges and the ladder climbs normally.
        assert controller.reverts == 0
        assert controller.max_level == 2


class TestDegradedWiring:
    def test_machines_track_ladder_top(self):
        machine = FakeMachine()
        loop, telemetry, controller, _ = make_session(
            2, machines=[machine])
        feed(loop, telemetry, attack_between(0.0, 8.0), until=16.0)
        loop.run_until(25.0)
        # Degraded attribution follows the top of the stack; exit only
        # at level 0.
        assert machine.modes == [("enter", "rung-0"), ("enter", "rung-1"),
                                 ("enter", "rung-0"), ("exit",)]
