"""Tests for the fleet monitoring/automated recovery system."""

import random

from repro.control import RecoverySystem
from repro.dnscore import parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)

ZONE = """\
$ORIGIN r.example.
$TTL 300
@ IN SOA ns1.r.example. admin.r.example. 1 2 3 4 300
@ IN NS ns1.r.example.
"""


def make_fleet(loop, count):
    machines = []
    for i in range(count):
        store = ZoneStore()
        store.add(parse_zone_text(ZONE))
        machines.append(NameserverMachine(
            loop, f"m{i}", AuthoritativeEngine(store), ScoringPipeline([]),
            QueuePolicy(),
            MachineConfig(staleness_threshold=float("inf"),
                          restart_delay=1e9)))
    return machines


class TestRecoverySystem:
    def test_healthy_fleet_no_alerts(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0)
        for machine in make_fleet(loop, 8):
            recovery.register(machine)
        loop.run_until(60.0)
        assert recovery.history
        assert not recovery.alerts
        assert recovery.current_unavailable_fraction() == 0.0

    def test_alert_on_widespread_failure(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0,
                                  alert_unavailable_fraction=0.25)
        fleet = make_fleet(loop, 8)
        for machine in fleet:
            recovery.register(machine)
        loop.run_until(10.0)
        for machine in fleet[:4]:
            machine.crash()
        loop.run_until(20.0)
        assert recovery.alerts
        assert "50%" in recovery.alerts[0].summary
        assert recovery.current_unavailable_fraction() == 0.5

    def test_snapshot_counts_states(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0)
        fleet = make_fleet(loop, 6)
        for machine in fleet:
            recovery.register(machine)
        fleet[0].crash()
        fleet[1].suspend()
        loop.run_until(6.0)
        snap = recovery.history[-1]
        assert snap.crashed == 1
        assert snap.suspended == 1
        assert snap.running == 4

    def test_stop_halts_sampling(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0)
        loop.run_until(12.0)
        count = len(recovery.history)
        recovery.stop()
        loop.run_until(60.0)
        assert len(recovery.history) == count
