"""Tests for the traffic collection/aggregation component."""

import pytest

from repro.control.reporting import TrafficCollector
from repro.dnscore import RCode, RType, make_query, name, parse_zone_text
from repro.dnscore.message import Flags, Message
from repro.dnscore.records import Question
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry import state as telemetry_state
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import Datagram, EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    QueryEnvelope,
    ZoneStore,
)

ZONE_A = """\
$ORIGIN a.report.\n$TTL 300
@ IN SOA ns1.a.report. admin.a.report. 1 2 3 4 300
@ IN NS ns1.a.report.
www IN A 10.0.0.1
"""
ZONE_B = """\
$ORIGIN b.report.\n$TTL 300
@ IN SOA ns1.b.report. admin.b.report. 1 2 3 4 300
@ IN NS ns1.b.report.
www IN A 10.0.0.2
"""


def make_machine(loop, mid):
    store = ZoneStore()
    store.add(parse_zone_text(ZONE_A))
    store.add(parse_zone_text(ZONE_B))
    return NameserverMachine(
        loop, mid, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(), MachineConfig(staleness_threshold=float("inf")))


def drive(loop, machine, qname, count, start, msg_base=0):
    for i in range(count):
        q = make_query((msg_base + i) & 0xFFFF, name(qname), RType.A)
        loop.call_at(start + i * 0.01,
                     lambda q=q: machine.receive_query(Datagram(
                         src="10.1.0.1", dst="rep",
                         payload=QueryEnvelope(q), src_port=5000 + i)))


def _tap(counter, qname, rcode):
    """Feed the response-observer tap with a graded response directly."""
    query = make_query(1, name(qname), RType.A)
    response = Message(msg_id=1, flags=Flags(qr=True, rcode=rcode))
    response.questions.append(Question(name(qname), RType.A))
    counter._observe(query, response)


class TestTrafficCollector:
    def test_per_zone_aggregation(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        m1 = make_machine(loop, "m1")
        m2 = make_machine(loop, "m2")
        collector.register(m1)
        collector.register(m2)
        drive(loop, m1, "www.a.report", 20, start=1.0)
        drive(loop, m2, "www.a.report", 10, start=1.0, msg_base=100)
        drive(loop, m1, "www.b.report", 5, start=1.0, msg_base=200)
        loop.run_until(11.0)
        report_a = collector.latest(name("a.report"))
        assert report_a.queries == 30
        assert report_a.reporting_machines == 2
        assert collector.latest(name("b.report")).queries == 5

    def test_nxdomain_fraction(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        collector.register(machine)
        drive(loop, machine, "www.a.report", 9, start=1.0)
        drive(loop, machine, "missing.a.report", 1, start=2.0,
              msg_base=300)
        loop.run_until(11.0)
        report = collector.latest(name("a.report"))
        assert report.nxdomains == 1
        assert report.nxdomain_fraction == pytest.approx(0.1)

    def test_windows_reset(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        collector.register(machine)
        drive(loop, machine, "www.a.report", 10, start=1.0)
        loop.run_until(11.0)
        loop.run_until(21.0)
        # Second window saw nothing; the latest report is the first.
        assert collector.latest(name("a.report")).queries == 10
        assert collector.total_queries(name("a.report")) == 10
        drive(loop, machine, "www.a.report", 4, start=22.0, msg_base=400)
        loop.run_until(31.0)
        assert collector.latest(name("a.report")).queries == 4
        assert collector.total_queries(name("a.report")) == 14

    def test_qps_computed_over_window(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        collector.register(machine)
        drive(loop, machine, "www.a.report", 50, start=0.5)
        loop.run_until(11.0)
        assert collector.latest(name("a.report")).qps == \
            pytest.approx(5.0, rel=0.05)

    def test_enterprise_rollup(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        collector.register(machine)
        drive(loop, machine, "www.a.report", 8, start=1.0)
        drive(loop, machine, "www.b.report", 2, start=1.0, msg_base=500)
        loop.run_until(11.0)
        rollup = collector.enterprise_report([name("a.report"),
                                              name("b.report")])
        assert rollup["total_queries"] == 10.0
        assert rollup["zones"] == 2.0

    def test_rcode_breakdown(self):
        """SERVFAIL and REFUSED are counted per zone, not just NXDOMAIN."""
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        counter = collector.register(machine)
        graded = [(RCode.NOERROR, 5), (RCode.NXDOMAIN, 2),
                  (RCode.SERVFAIL, 2), (RCode.REFUSED, 1)]
        for rcode, count in graded:
            for _ in range(count):
                _tap(counter, "www.a.report", rcode)
        loop.run_until(11.0)
        report = collector.latest(name("a.report"))
        assert report.queries == 10
        assert report.nxdomains == 2
        assert report.servfails == 2
        assert report.refused == 1
        assert report.servfail_fraction == pytest.approx(0.2)

    def test_enterprise_rollup_error_fractions(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=10.0)
        machine = make_machine(loop, "m1")
        counter = collector.register(machine)
        for _ in range(8):
            _tap(counter, "www.a.report", RCode.NOERROR)
        _tap(counter, "www.a.report", RCode.SERVFAIL)
        _tap(counter, "www.b.report", RCode.REFUSED)
        loop.run_until(11.0)
        rollup = collector.enterprise_report([name("a.report"),
                                              name("b.report")])
        assert rollup["total_queries"] == 10.0
        assert rollup["servfail_fraction"] == pytest.approx(0.1)
        assert rollup["refused_fraction"] == pytest.approx(0.1)

    def test_counts_feed_active_telemetry_session(self):
        """The portal view and operator dashboards read one pipeline."""
        telemetry = Telemetry(TelemetryConfig(trace_sample_rate=0.0))
        with telemetry_state.session(telemetry):
            loop = EventLoop()
            collector = TrafficCollector(loop, period=10.0)
            machine = make_machine(loop, "m1")
            counter = collector.register(machine)
            _tap(counter, "www.a.report", RCode.NOERROR)
            _tap(counter, "missing.a.report", RCode.NXDOMAIN)
            loop.run_until(11.0)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters[
            "zone_responses_total{machine=m1,zone=a.report.,"
            "rcode=NOERROR}"] == 1.0
        assert counters[
            "zone_responses_total{machine=m1,zone=a.report.,"
            "rcode=NXDOMAIN}"] == 1.0

    def test_history_retention(self):
        loop = EventLoop()
        collector = TrafficCollector(loop, period=1.0,
                                     history_windows=3)
        machine = make_machine(loop, "m1")
        collector.register(machine)
        for window in range(6):
            drive(loop, machine, "www.a.report", 1,
                  start=window * 1.0 + 0.1, msg_base=window * 10)
        loop.run_until(7.0)
        assert len(collector.reports[name("a.report")]) <= 3
