"""Tests for the metadata bus and the quorum suspension coordinator."""

import random

import pytest

from repro.control import (
    CDN_CHANNEL,
    MULTICAST_CHANNEL,
    MetadataBus,
    QuorumSuspensionCoordinator,
)
from repro.netsim import EventLoop


class Recorder:
    def __init__(self):
        self.messages = []

    def receive_metadata_message(self, message):
        self.messages.append(message)


@pytest.fixture
def bus():
    loop = EventLoop()
    return loop, MetadataBus(loop, random.Random(3))


class TestMetadataBus:
    def test_multicast_is_fast(self, bus):
        loop, b = bus
        sub = Recorder()
        b.subscribe(MULTICAST_CHANNEL, sub)
        b.publish(MULTICAST_CHANNEL, "mapping", "global", {"v": 1})
        loop.run_until(1.0)
        assert len(sub.messages) == 1
        assert sub.messages[0].payload == {"v": 1}

    def test_cdn_channel_is_slower(self, bus):
        loop, b = bus
        fast, slow = Recorder(), Recorder()
        b.subscribe(MULTICAST_CHANNEL, fast)
        b.subscribe(CDN_CHANNEL, slow)
        b.publish(MULTICAST_CHANNEL, "mapping", "g", 1)
        b.publish(CDN_CHANNEL, "zone", "z", 2)
        loop.run_until(1.0)
        assert fast.messages and not slow.messages
        loop.run_until(25.0)
        assert slow.messages

    def test_unknown_channel_rejected(self, bus):
        loop, b = bus
        with pytest.raises(KeyError):
            b.publish("bogus", "k", "x", None)

    def test_input_delay_extra(self, bus):
        loop, b = bus
        normal, delayed = Recorder(), Recorder()
        b.subscribe(MULTICAST_CHANNEL, normal)
        b.subscribe(MULTICAST_CHANNEL, delayed, extra_delay=3600.0)
        b.publish(MULTICAST_CHANNEL, "mapping", "g", 1)
        loop.run_until(10.0)
        assert normal.messages and not delayed.messages
        loop.run_until(3700.0)
        assert delayed.messages
        assert delayed.messages[0].published_at < 1.0

    def test_partition_holds_and_flushes(self, bus):
        loop, b = bus
        sub = Recorder()
        b.subscribe(MULTICAST_CHANNEL, sub)
        b.set_partitioned(sub, True)
        b.publish(MULTICAST_CHANNEL, "mapping", "g", 1)
        b.publish(MULTICAST_CHANNEL, "mapping", "g", 2)
        loop.run_until(10.0)
        assert not sub.messages
        b.set_partitioned(sub, False)
        assert [m.payload for m in sub.messages] == [1, 2]

    def test_sequence_monotonic(self, bus):
        loop, b = bus
        sub = Recorder()
        b.subscribe(MULTICAST_CHANNEL, sub)
        for i in range(5):
            b.publish(MULTICAST_CHANNEL, "mapping", "g", i)
        loop.run_until(10.0)
        sequences = [m.sequence for m in sub.messages]
        assert sorted(sequences) == list(range(1, 6))


class TestQuorumCoordinator:
    def make(self, replicas=5, limit=2):
        loop = EventLoop()
        return loop, QuorumSuspensionCoordinator(
            loop, replicas=replicas, max_concurrent=limit,
            lease_seconds=100.0)

    def test_grants_up_to_limit(self):
        loop, c = self.make(limit=2)
        assert c.request_suspension("m1")
        assert c.request_suspension("m2")
        assert not c.request_suspension("m3")
        assert c.active_suspensions() == {"m1", "m2"}

    def test_release_frees_slot(self):
        loop, c = self.make(limit=1)
        assert c.request_suspension("m1")
        assert not c.request_suspension("m2")
        c.release_suspension("m1")
        assert c.request_suspension("m2")

    def test_re_request_is_idempotent(self):
        loop, c = self.make(limit=1)
        assert c.request_suspension("m1")
        assert c.request_suspension("m1")
        assert len(c.active_suspensions()) == 1

    def test_lease_expiry_frees_slot(self):
        loop, c = self.make(limit=1)
        assert c.request_suspension("m1")
        loop.call_at(150.0, lambda: None)
        loop.run()
        assert c.request_suspension("m2")

    def test_renew_extends_lease(self):
        loop, c = self.make(limit=1)
        assert c.request_suspension("m1")
        loop.call_at(80.0, lambda: None)
        loop.run()
        assert c.renew("m1")
        loop.call_at(150.0, lambda: None)
        loop.run()
        assert "m1" in c.active_suspensions()

    def test_minority_partition_denies(self):
        loop, c = self.make(replicas=5, limit=2)
        for i in range(3):
            c.set_replica_reachable(i, False)
        assert not c.request_suspension("m1")
        assert c.denials == 1

    def test_majority_partition_still_grants(self):
        loop, c = self.make(replicas=5, limit=2)
        c.set_replica_reachable(0, False)
        c.set_replica_reachable(1, False)
        assert c.request_suspension("m1")

    def test_quorum_size(self):
        _, c = self.make(replicas=5)
        assert c.quorum_size == 3
        _, c1 = self.make(replicas=1)
        assert c1.quorum_size == 1

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError):
            QuorumSuspensionCoordinator(EventLoop(), replicas=0)
