"""Recovery-system edge cases under chaos-scale failures.

Chaos campaigns crash more machines than the suspension budget covers
and can take an entire fleet down at once; the monitoring/recovery
machinery must degrade into alerts, never into deadlocks, leaked
suspension leases, or arithmetic errors.
"""

import random

import pytest

from repro.control import RecoverySystem
from repro.control.consensus import QuorumSuspensionCoordinator
from repro.dnscore import parse_zone_text
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import (
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.server import (
    AuthoritativeEngine,
    MachineBGPSpeaker,
    MachineConfig,
    MachineState,
    MonitoringAgent,
    NameserverMachine,
    PoP,
    ZoneStore,
)

ZONE = """\
$ORIGIN re.example.
$TTL 300
@ IN SOA ns1.re.example. admin.re.example. 1 2 3 4 300
@ IN NS ns1.re.example.
"""

PREFIX = "23.222.61.64"


def make_machine(loop, machine_id, *, restart_delay=1e9):
    store = ZoneStore()
    store.add(parse_zone_text(ZONE))
    return NameserverMachine(
        loop, machine_id, AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(),
        MachineConfig(staleness_threshold=float("inf"),
                      restart_delay=restart_delay))


@pytest.fixture
def pop_world():
    rng = random.Random(7)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                              n_stub=24))
    pop_id = attach_pop(inet, rng)
    attach_host(inet, rng, host_id="client-0")
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()
    pop = PoP(loop, net, pop_id)
    return loop, net, pop


def agented_machine(loop, pop, machine_id, coordinator, *,
                    restart_delay=1e9):
    machine = make_machine(loop, machine_id, restart_delay=restart_delay)
    pop.add_machine(machine)
    speaker = MachineBGPSpeaker(pop, machine_id, [PREFIX])
    agent = MonitoringAgent(loop, machine, speaker, period=1.0,
                            coordinator=coordinator)
    speaker.advertise_all()
    return machine, speaker, agent


class TestFleetEdgeCases:
    def test_all_crashed_fleet_still_alerts(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0)
        fleet = [make_machine(loop, f"m{i}") for i in range(4)]
        for machine in fleet:
            recovery.register(machine)
        for machine in fleet:
            machine.crash()
        loop.run_until(10.0)
        assert recovery.current_unavailable_fraction() == 1.0
        assert recovery.alerts
        assert "100%" in recovery.alerts[0].summary

    def test_empty_fleet_samples_without_dividing_by_zero(self):
        loop = EventLoop()
        recovery = RecoverySystem(loop, sample_period=5.0)
        loop.run_until(20.0)
        assert recovery.history
        assert all(s.unavailable_fraction == 0.0 for s in recovery.history)
        assert not recovery.alerts


class TestSuspensionBudgetUnderChaos:
    def test_crash_releases_suspension_lease(self, pop_world):
        # A machine that crashes while self-suspended must free its
        # slot; otherwise every crash-looping machine leaks one lease
        # and healthy machines that need to suspend get denied forever.
        loop, net, pop = pop_world
        coordinator = QuorumSuspensionCoordinator(loop, max_concurrent=1,
                                                  lease_seconds=300.0)
        m1, _, _ = agented_machine(loop, pop, "m1", coordinator)
        m2, _, _ = agented_machine(loop, pop, "m2", coordinator)

        m1.fault = "wrong_answer"
        loop.run_until(5.0)
        assert m1.state == MachineState.SUSPENDED
        assert coordinator.active_suspensions() == {"m1"}

        m1.crash()
        assert coordinator.active_suspensions() == set()

        m2.fault = "wrong_answer"
        loop.run_until(10.0)
        assert m2.state == MachineState.SUSPENDED
        assert coordinator.active_suspensions() == {"m2"}

    def test_crashes_beyond_budget_do_not_deadlock(self, pop_world):
        # Crash 4 machines with a budget of 1: the crash path bypasses
        # the coordinator entirely (withdrawal protects clients), so
        # nothing queues on the budget and every machine restarts and
        # re-advertises.
        loop, net, pop = pop_world
        coordinator = QuorumSuspensionCoordinator(loop, max_concurrent=1,
                                                  lease_seconds=300.0)
        machines = [
            agented_machine(loop, pop, f"m{i}", coordinator,
                            restart_delay=5.0)[0]
            for i in range(4)
        ]
        loop.run_until(3.0)
        for machine in machines:
            machine.crash()
        assert not pop.advertises(PREFIX)

        loop.run_until(20.0)
        assert all(m.state == MachineState.RUNNING for m in machines)
        assert pop.advertises(PREFIX)
        assert coordinator.active_suspensions() == set()

    def test_denied_machines_keep_serving_then_suspend_in_turn(
            self, pop_world):
        # More failing machines than budget: the overflow machine is
        # denied and keeps serving (degraded beats dark); when a slot
        # frees, it suspends on a later agent cycle.
        loop, net, pop = pop_world
        coordinator = QuorumSuspensionCoordinator(loop, max_concurrent=1,
                                                  lease_seconds=300.0)
        m1, _, a1 = agented_machine(loop, pop, "m1", coordinator)
        m2, _, a2 = agented_machine(loop, pop, "m2", coordinator)

        m1.fault = "wrong_answer"
        m2.fault = "wrong_answer"
        loop.run_until(6.0)
        states = {m1.state, m2.state}
        assert states == {MachineState.SUSPENDED, MachineState.RUNNING}
        assert a1.metrics.suspensions_denied + \
            a2.metrics.suspensions_denied > 0
        assert pop.advertises(PREFIX)

        # The suspended one heals and releases; the other takes the slot.
        suspended, denied = (m1, m2) if m1.state == MachineState.SUSPENDED \
            else (m2, m1)
        suspended.fault = None
        loop.run_until(12.0)
        assert suspended.state == MachineState.RUNNING
        assert denied.state == MachineState.SUSPENDED
        assert coordinator.active_suspensions() == {denied.machine_id}
