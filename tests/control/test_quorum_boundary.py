"""Quorum suspension boundary exactness and lease interleavings.

The coordinator's one job is a hard capacity bound: never let more
than ``max_concurrent`` machines hold a suspension lease at once
(section 4.2.1's consensus limit). These tests pin the boundary
exactly — granted *at* the threshold, denied one past it — and
interleave the two request populations that now share the budget:
agent-driven suspensions (a machine's own failing health suite) and
verdict-driven ones (the external gray-failure prober).
"""

from repro.control.consensus import QuorumSuspensionCoordinator
from repro.dnscore import A, RType, SOA, make_rrset, make_zone, name
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    MachineState,
    NameserverMachine,
    ZoneStore,
)
from repro.server.monitoring import MonitoringAgent

ORIGIN = name("b.example")


class StubSpeaker:
    def __init__(self):
        self.advertised = True

    def withdraw_all(self):
        self.advertised = False

    def advertise_all(self):
        self.advertised = True


def baseline_zone():
    z = make_zone(ORIGIN,
                  SOA(name("ns1.b.example"), name("admin.b.example"),
                      1, 7200, 3600, 1209600, 300),
                  [name("ns1.akam.net")])
    z.add_rrset(make_rrset(name("www.b.example"), RType.A, 300,
                           [A("10.0.0.1")]))
    return z


def make_machine(loop, machine_id):
    machine = NameserverMachine(
        loop, machine_id, AuthoritativeEngine(ZoneStore()),
        ScoringPipeline([]), QueuePolicy(),
        MachineConfig(staleness_threshold=float("inf")))
    machine.install_zone(baseline_zone())
    return machine


class TestBoundaryExactness:
    def test_granted_at_exactly_the_threshold(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=3)
        assert all(quorum.request_suspension(f"m{i}") for i in range(3))
        assert quorum.active_suspensions() == {"m0", "m1", "m2"}
        assert quorum.denials == 0

    def test_denied_one_past_the_threshold(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=3)
        for i in range(3):
            assert quorum.request_suspension(f"m{i}")
        assert not quorum.request_suspension("m3")
        assert quorum.denials == 1
        assert quorum.active_suspensions() == {"m0", "m1", "m2"}

    def test_release_frees_exactly_one_slot(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=2)
        assert quorum.request_suspension("m0")
        assert quorum.request_suspension("m1")
        assert not quorum.request_suspension("m2")
        quorum.release_suspension("m0")
        assert quorum.request_suspension("m2")
        assert not quorum.request_suspension("m3")
        assert quorum.active_suspensions() == {"m1", "m2"}

    def test_regrant_to_current_holder_is_not_a_new_slot(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=1)
        assert quorum.request_suspension("m0")
        # Re-requesting an already-held lease must not double-count.
        assert quorum.request_suspension("m0")
        assert quorum.active_suspensions() == {"m0"}
        assert not quorum.request_suspension("m1")

    def test_expired_lease_frees_the_slot(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=1,
                                             lease_seconds=5.0)
        assert quorum.request_suspension("m0")
        assert not quorum.request_suspension("m1")
        loop.call_later(6.0, lambda: None)
        loop.run_until(6.0)
        assert quorum.active_suspensions() == set()
        assert quorum.request_suspension("m1")


class TestInterleavedRequesters:
    """Agent-driven and verdict-driven suspensions share one budget."""

    def test_verdict_lease_counts_against_agent_budget(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=2)
        machines = [make_machine(loop, f"m{i}") for i in range(3)]
        agents = [MonitoringAgent(loop, machine, StubSpeaker(),
                                  coordinator=quorum)
                  for machine in machines]

        # The external prober convicts an (unnamed here) machine and
        # takes a verdict-driven lease: one of the two slots is gone.
        assert quorum.request_suspension("gray-victim")

        # Two agents then find their machines unhealthy; only one slot
        # remains, so exactly one self-suspends and one is denied.
        machines[0].fault = "wrong_answer"
        machines[1].fault = "wrong_answer"
        loop.run_until(3.0)
        assert [m.state for m in machines[:2]].count(
            MachineState.SUSPENDED) == 1
        denied_agent = next(a for a in agents[:2]
                            if a.metrics.suspensions_denied)
        assert denied_agent.metrics.suspensions_denied >= 1
        assert len(quorum.active_suspensions()) == 2

        # The verdict lease releases (probation rejoin elsewhere): the
        # denied agent's next cycle picks up the freed slot.
        quorum.release_suspension("gray-victim")
        loop.run_until(6.0)
        assert [m.state for m in machines[:2]].count(
            MachineState.SUSPENDED) == 2
        assert len(quorum.active_suspensions()) == 2

        # Faults heal: both resume and every slot is returned.
        machines[0].fault = None
        machines[1].fault = None
        loop.run_until(9.0)
        assert all(m.state is MachineState.RUNNING for m in machines)
        assert quorum.active_suspensions() == set()

    def test_crash_while_self_suspended_releases_the_lease(self):
        loop = EventLoop()
        quorum = QuorumSuspensionCoordinator(loop, max_concurrent=1)
        machine = make_machine(loop, "m0")
        agent = MonitoringAgent(loop, machine, StubSpeaker(),
                                coordinator=quorum)
        machine.fault = "wrong_answer"
        loop.run_until(3.0)
        assert machine.state is MachineState.SUSPENDED
        assert quorum.active_suspensions() == {"m0"}

        # Crash while holding the lease: the slot must come back
        # immediately, not leak until lease expiry — another machine
        # with a genuine need can take it on its very next cycle.
        machine.crash()
        assert quorum.active_suspensions() == set()
        assert agent.metrics.suspensions == 1
        assert quorum.request_suspension("other-machine")
