"""Tests for mapping intelligence, views, and the management portal."""

import random

import pytest

from repro.control import (
    EdgeServer,
    GTMProperty,
    ManagementPortal,
    MappingIntelligence,
    MappingView,
    MetadataBus,
    MULTICAST_CHANNEL,
    PortalLimits,
    ValidationError,
    nearest_edges,
)
from repro.dnscore import (
    RType,
    make_axfr_query,
    name,
    parse_zone_text,
)
from repro.dnscore.transfer import axfr_response_stream
from repro.netsim import EventLoop, GeoPoint


@pytest.fixture
def world():
    loop = EventLoop()
    bus = MetadataBus(loop, random.Random(2))
    mapping = MappingIntelligence(loop, bus)
    mapping.add_edge(EdgeServer("10.0.0.1", GeoPoint(40.0, -74.0)))   # NYC
    mapping.add_edge(EdgeServer("10.0.0.2", GeoPoint(51.5, -0.1)))    # LON
    mapping.add_edge(EdgeServer("10.0.0.3", GeoPoint(35.7, 139.7)))   # TYO
    return loop, bus, mapping


def make_view(snapshot, locations=None):
    locations = locations or {}
    view = MappingView(lambda key: locations.get(key), random.Random(1))
    view.snapshot = snapshot
    return view


class TestMappingAnswers:
    def test_proximity_answer(self, world):
        loop, bus, mapping = world
        view = make_view(mapping.snapshot(),
                         {"client-eu": GeoPoint(48.8, 2.3)})  # Paris
        rrset = view.answer(name("a1.w10.akamai.net"), RType.A,
                            "client-eu")
        assert rrset.records[0].rdata.address == "10.0.0.2"
        assert rrset.ttl == 20

    def test_unknown_client_still_answered(self, world):
        loop, bus, mapping = world
        view = make_view(mapping.snapshot())
        rrset = view.answer(name("a1.w10.akamai.net"), RType.A, "mystery")
        assert rrset is not None

    def test_dead_edges_skipped(self, world):
        loop, bus, mapping = world
        mapping.set_edge_alive("10.0.0.2", False)
        view = make_view(mapping.snapshot(),
                         {"client-eu": GeoPoint(48.8, 2.3)})
        rrset = view.answer(name("a1.w10.akamai.net"), RType.A,
                            "client-eu")
        assert "10.0.0.2" not in [r.rdata.address for r in rrset]

    def test_load_biases_choice(self, world):
        loop, bus, mapping = world
        mapping.set_edge_load("10.0.0.2", 0.95)
        view = make_view(mapping.snapshot(),
                         {"client-eu": GeoPoint(50.0, 1.0)})
        view.answer_count = 1
        rrset = view.answer(name("a1.w10.akamai.net"), RType.A,
                            "client-eu")
        # The nearby-but-loaded London edge can lose to NYC.
        assert rrset is not None

    def test_non_a_queries_fall_through(self, world):
        loop, bus, mapping = world
        view = make_view(mapping.snapshot())
        assert view.answer(name("a1.w10.akamai.net"), RType.TXT,
                           None) is None

    def test_gtm_weighted_choice(self, world):
        loop, bus, mapping = world
        dc1 = EdgeServer("172.16.1.1", GeoPoint(0, 0))
        dc2 = EdgeServer("172.16.1.2", GeoPoint(0, 0))
        mapping.add_gtm_property(GTMProperty(
            name("app.gtm.example"), (dc1, dc2), (0.9, 0.1)))
        view = make_view(mapping.snapshot())
        picks = [view.answer(name("app.gtm.example"), RType.A,
                             None).records[0].rdata.address
                 for _ in range(200)]
        assert picks.count("172.16.1.1") > 140

    def test_gtm_dead_datacenter_excluded(self, world):
        loop, bus, mapping = world
        dc1 = EdgeServer("172.16.1.1", GeoPoint(0, 0), alive=False)
        dc2 = EdgeServer("172.16.1.2", GeoPoint(0, 0))
        mapping.add_gtm_property(GTMProperty(
            name("app.gtm.example"), (dc1, dc2), (0.9, 0.1)))
        view = make_view(mapping.snapshot())
        picks = {view.answer(name("app.gtm.example"), RType.A,
                             None).records[0].rdata.address
                 for _ in range(50)}
        assert picks == {"172.16.1.2"}

    def test_gtm_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            GTMProperty(name("x.example"),
                        (EdgeServer("1.1.1.1", GeoPoint(0, 0)),), (1.0, 2.0))


class TestSnapshotPropagation:
    def test_liveness_change_publishes(self, world):
        loop, bus, mapping = world
        view = MappingView(lambda k: None, random.Random(1))

        class Adapter:
            def receive_metadata_message(self, message):
                view.apply(message)

        bus.subscribe(MULTICAST_CHANNEL, Adapter())
        mapping.publish()
        loop.run_until(2.0)
        v1 = view.version
        mapping.set_edge_alive("10.0.0.1", False)
        loop.run_until(4.0)
        assert view.version > v1
        assert not [e for e in view.snapshot.edges
                    if e.address == "10.0.0.1"][0].alive

    def test_stale_snapshot_ignored(self, world):
        loop, bus, mapping = world
        view = MappingView(lambda k: None, random.Random(1))
        new = mapping.snapshot()
        # Apply v2 then a stale v1: v1 must not regress the view.
        from repro.control.pubsub import MetadataMessage
        view.apply(MetadataMessage(MULTICAST_CHANNEL, "mapping", "g",
                                   new, 0.0, 1))
        first = view.version

        from dataclasses import replace
        stale = replace(new, version=new.version - 1)
        view.apply(MetadataMessage(MULTICAST_CHANNEL, "mapping", "g",
                                   stale, 0.0, 2))
        assert view.version == first

    def test_nearest_edges_helper(self, world):
        loop, bus, mapping = world
        snapshot = mapping.snapshot()
        nearest = nearest_edges(snapshot, GeoPoint(52.0, 0.0), 2)
        assert nearest[0].address == "10.0.0.2"


ZONE_TEXT = """\
$ORIGIN cust.net.
$TTL 300
@ IN SOA a0-64.akam.net. admin.cust.net. {serial} 7200 3600 1209600 300
@ IN NS a0-64.akam.net.
www IN A 203.0.113.5
"""


class TestPortal:
    def make(self):
        loop = EventLoop()
        bus = MetadataBus(loop, random.Random(4))
        return loop, bus, ManagementPortal(bus)

    def test_zone_submission_publishes(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        zone = portal.submit_zone_text("acme",
                                       ZONE_TEXT.format(serial=1))
        assert zone.origin == name("cust.net")
        assert portal.zones_published == 1
        assert bus.published == 1

    def test_unknown_enterprise_rejected(self):
        loop, bus, portal = self.make()
        with pytest.raises(ValidationError):
            portal.submit_zone_text("ghost", ZONE_TEXT.format(serial=1))

    def test_invalid_zone_rejected(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        with pytest.raises(ValidationError):
            portal.submit_zone_text("acme", "$ORIGIN x.net.\n"
                                            "www IN A 1.2.3.4\n")
        assert portal.rejections == 1

    def test_same_serial_is_idempotent(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))
        assert portal.zones_published == 1
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=2))
        assert portal.zones_published == 2

    def test_zone_ownership_enforced(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        portal.register_enterprise("evil")
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))
        with pytest.raises(ValidationError):
            portal.submit_zone_text("evil", ZONE_TEXT.format(serial=9))

    def test_delegation_set_validated(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme",
                                   ("a5-64.akam.net.", "a9-64.akam.net."))
        with pytest.raises(ValidationError):
            # Apex NS references none of the assigned clouds.
            portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))

    def test_zone_transfer_path(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        zone = parse_zone_text(ZONE_TEXT.format(serial=3))
        stream = list(axfr_response_stream(
            zone, make_axfr_query(1, zone.origin)))
        accepted = portal.submit_zone_transfer("acme", zone.origin, stream)
        assert accepted.serial == 3

    def test_rrset_limit(self):
        loop, bus, portal = self.make()
        portal = ManagementPortal(bus, PortalLimits(max_rrsets_per_zone=3))
        portal.register_enterprise("acme")
        big = ZONE_TEXT.format(serial=1) + "a IN A 10.0.0.1\n" \
            + "b IN A 10.0.0.2\n"
        with pytest.raises(ValidationError):
            portal.submit_zone_text("acme", big)

    def test_remove_zone(self):
        loop, bus, portal = self.make()
        portal.register_enterprise("acme")
        zone = portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))
        assert portal.remove_zone("acme", zone.origin)
        assert not portal.remove_zone("acme", zone.origin)


class TestPortalHistory:
    def make(self):
        from repro.netsim import EventLoop
        loop = EventLoop()
        bus = MetadataBus(loop, random.Random(4))
        portal = ManagementPortal(bus)
        portal.register_enterprise("acme")
        return portal

    def test_incremental_updates_served(self):
        portal = self.make()
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=1))
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=2)
                                + "api IN A 203.0.113.6\n")
        diffs = portal.incremental_update(name("cust.net"), 1)
        assert len(diffs) == 1
        assert diffs[0].new_serial == 2
        assert [str(r.name) for r in diffs[0].additions] == \
            ["api.cust.net."]

    def test_regressing_serial_rejected(self):
        portal = self.make()
        portal.submit_zone_text("acme", ZONE_TEXT.format(serial=5))
        with pytest.raises(ValidationError, match="advance"):
            portal.submit_zone_text("acme", ZONE_TEXT.format(serial=3))
        # The live zone is untouched by the rejected submission.
        assert portal.current_zone(name("cust.net")).serial == 5

    def test_too_far_behind_returns_none(self):
        portal = self.make()
        portal.history.max_versions = 2
        for serial in range(1, 6):
            portal.submit_zone_text("acme", ZONE_TEXT.format(serial=serial))
        assert portal.incremental_update(name("cust.net"), 1) is None
        assert portal.current_zone(name("cust.net")).serial == 5
