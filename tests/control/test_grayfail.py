"""External gray-failure detection: conviction, probation, quorum.

A gray-failed machine keeps passing its *own* health suite — an
in-process call that never crosses the data path — while silently
corrupting, dropping, or freezing the answers real clients see. Only
the external prober can convict it: vantage points co-located at the
PoP routers issue real anycast queries, a differential auditor
cross-checks the answers against the machine's peers, and the verdict
state machine routes every suspension through the quorum coordinator,
then rejoins the machine via staged probation.

These tests drive full (small) deployments end to end so the probes
traverse the same netsim path as client traffic.
"""

from dataclasses import replace

from repro.control.grayfail import GrayFailParams, Verdict
from repro.control.pubsub import CDN_CHANNEL
from repro.dnscore import RType, Zone, make_rrset, name
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineState

AKAM_ORIGIN = name("akam.net")


def build(n_pops=6, machines_per_pop=1, seed=7,
          params: GrayFailParams | None = None):
    deployment = AkamaiDNSDeployment(DeploymentParams(
        seed=seed, n_pops=n_pops, deployed_clouds=n_pops,
        machines_per_pop=machines_per_pop, pops_per_cloud=2,
        n_edge_servers=6,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=24),
        filters_enabled=False))
    deployment.settle(30)
    controller = deployment.enable_grayfail(params)
    return deployment, controller


def run_for(deployment, seconds):
    deployment.run_until(deployment.loop.now + seconds)


def gray_target(deployment, index=0):
    return deployment.regular_deployments()[index]


def akam_zone(deployment):
    return next(z for z in deployment.akamai_zones
                if z.origin == AKAM_ORIGIN)


def bumped_copy(zone, delta=1):
    """A copy of ``zone`` with its SOA serial advanced by ``delta``."""
    copy = Zone(zone.origin)
    soa = zone.soa
    rdata = soa.records[0].rdata
    copy.add_rrset(make_rrset(soa.name, RType.SOA, soa.ttl,
                              [replace(rdata, serial=rdata.serial + delta)]))
    for rrset in zone.iter_rrsets():
        if rrset.rtype is not RType.SOA:
            copy.add_rrset(rrset)
    return copy


class TestNoHarm:
    def test_prober_alone_never_churns_verdicts(self):
        deployment, controller = build()
        run_for(deployment, 60.0)
        assert controller.probes_sent > 0
        assert controller.convictions == 0
        assert controller.timeline == []
        assert all(controller.verdict(d.machine.machine_id)
                   is Verdict.HEALTHY
                   for d in deployment.regular_deployments())
        assert deployment.coordinator.active_suspensions() == set()


class TestConvictionLifecycle:
    def test_corrupt_machine_convicted_suspended_and_rejoined(self):
        deployment, controller = build()
        target = gray_target(deployment)
        machine = target.machine

        machine.set_gray_fault("corrupt")
        run_for(deployment, 20.0)

        # Convicted by external differential evidence (and possibly
        # already shadow-probed in probation by now)...
        assert controller.verdict(machine.machine_id) in \
            (Verdict.CONVICTED, Verdict.PROBATION)
        assert controller.convictions >= 1
        assert controller.detections, "detection latency must be recorded"
        # ...suspended through the quorum, never directly...
        assert controller.suspensions == 1
        assert machine.machine_id in \
            deployment.coordinator.active_suspensions()
        assert machine.state is MachineState.SUSPENDED
        assert not target.speaker.advertised
        # ...while the machine's own monitoring suite stays green: the
        # gray property. health_probe never crosses the data path.
        assert target.agent.run_suite().healthy

        # The fault heals; probation shadow-probes the suspended
        # machine and restores traffic after consecutive clean rounds.
        machine.set_gray_fault(None)
        run_for(deployment, 40.0)
        assert controller.rejoins == 1
        assert controller.verdict(machine.machine_id) is Verdict.HEALTHY
        assert machine.state is MachineState.RUNNING
        assert target.speaker.advertised
        assert deployment.coordinator.active_suspensions() == set()

    def test_probation_relapses_while_fault_persists(self):
        deployment, controller = build()
        machine = gray_target(deployment).machine
        machine.set_gray_fault("corrupt")
        # Long enough for conviction + probation entry + shadow probes
        # to observe the still-corrupt answers and re-convict.
        run_for(deployment, 40.0)
        assert controller.verdict(machine.machine_id) is Verdict.CONVICTED
        assert controller.rejoins == 0
        assert machine.state is MachineState.SUSPENDED
        # The relapse is visible in the timeline: probation entered,
        # then conviction again.
        verdicts = [v for _, mid, v in controller.timeline
                    if mid == machine.machine_id]
        assert "probation" in verdicts
        assert verdicts.count("convicted") >= 2


class TestGrayKinds:
    def test_blackhole_and_partial_drop_both_convicted(self):
        deployment, controller = build()
        deployments = deployment.regular_deployments()
        blackhole = deployments[0].machine
        lossy = deployments[1].machine
        blackhole.set_gray_fault("blackhole")
        lossy.set_gray_fault("partial_drop", severity=0.75)
        run_for(deployment, 25.0)
        assert controller.verdict(blackhole.machine_id) \
            is Verdict.CONVICTED
        assert controller.verdict(lossy.machine_id) is Verdict.CONVICTED
        assert blackhole.metrics.dropped_gray > 0
        assert lossy.metrics.dropped_gray > 0

    def test_stale_machine_convicted_after_grace(self):
        deployment, controller = build(
            params=GrayFailParams(stale_grace=10.0))
        machine = gray_target(deployment).machine
        machine.set_gray_fault("stale")
        # The fleet moves on to a newer serial; the stale machine's
        # installs silently no-op while it keeps reporting success.
        deployment.bus.publish_zone(CDN_CHANNEL, "akam.net",
                                    bumped_copy(akam_zone(deployment)))
        run_for(deployment, 8.0)
        # Inside the grace window lag is tolerated (zone pushes take
        # time to propagate legitimately).
        assert controller.verdict(machine.machine_id) \
            in (Verdict.HEALTHY, Verdict.SUSPECT)
        run_for(deployment, 20.0)
        assert controller.verdict(machine.machine_id) is Verdict.CONVICTED
        assert any("behind fleet" in reason
                   for reason in controller.last_reasons(
                       machine.machine_id))


class TestQuorumGuard:
    def test_correlated_gray_faults_do_not_mass_suspend(self):
        deployment, controller = build(n_pops=8, seed=11)
        budget = deployment.coordinator.max_concurrent
        deployments = deployment.regular_deployments()
        liars = [d.machine for d in deployments[:budget + 1]]
        for machine in liars:
            machine.set_gray_fault("corrupt")
        run_for(deployment, 25.0)
        # All convicted, but the coordinator refuses to take more
        # capacity down than the budget allows.
        assert controller.convictions == len(liars)
        assert controller.suspensions == budget
        assert controller.denials >= 1
        suspended = [m for m in liars
                     if m.state is MachineState.SUSPENDED]
        assert len(suspended) == budget
        # Denied machines keep serving (degraded beats dark) and keep
        # retrying each round.
        serving = [d.machine for d in deployments
                   if d.machine.state is MachineState.RUNNING]
        assert len(serving) == len(deployments) - budget

        # Once the faults heal, everyone rejoins or is exonerated.
        for machine in liars:
            machine.set_gray_fault(None)
        run_for(deployment, 45.0)
        assert all(controller.verdict(d.machine.machine_id)
                   is Verdict.HEALTHY for d in deployments)
        assert all(d.machine.state is MachineState.RUNNING
                   for d in deployments)
        assert controller.rejoins == budget
        assert deployment.coordinator.active_suspensions() == set()


class TestLeaseLifecycle:
    def test_crash_while_suspended_releases_grayfail_lease(self):
        deployment, controller = build()
        machine = gray_target(deployment).machine
        machine.set_gray_fault("corrupt")
        run_for(deployment, 20.0)
        assert machine.machine_id in \
            deployment.coordinator.active_suspensions()

        machine.set_gray_fault(None)
        machine.crash()
        # The crash listener must free the quorum slot immediately —
        # a crash-looping machine must not pin the suspension budget.
        assert machine.machine_id not in \
            deployment.coordinator.active_suspensions()
        assert controller.verdict(machine.machine_id) is Verdict.HEALTHY
        # After the restart timer the machine comes back and the
        # prober holds a clean verdict.
        run_for(deployment, 40.0)
        assert machine.state is MachineState.RUNNING
        assert controller.verdict(machine.machine_id) is Verdict.HEALTHY

    def test_rollback_delivery_reaches_machine_in_probation(self):
        deployment, controller = build()
        machine = gray_target(deployment).machine
        machine.set_gray_fault("corrupt")
        run_for(deployment, 16.0)
        assert machine.state is MachineState.SUSPENDED

        # A zone rollback (serial bump republish) lands while the
        # machine sits in probation: metadata delivery must not depend
        # on suspension state, or rejoining machines would serve the
        # very release that was rolled back.
        machine.set_gray_fault(None)
        fixed = bumped_copy(akam_zone(deployment))
        deployment.bus.publish_zone(CDN_CHANNEL, "akam.net", fixed)
        run_for(deployment, 40.0)
        assert machine.engine.store.get(AKAM_ORIGIN).serial \
            == fixed.serial
        assert controller.verdict(machine.machine_id) is Verdict.HEALTHY
        assert machine.state is MachineState.RUNNING
        assert deployment.coordinator.active_suspensions() == set()
