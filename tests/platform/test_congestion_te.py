"""Link congestion plus traffic engineering, end to end (section 4.3.2).

A volumetric attack from behind one peering link congests it, starving
the legitimate traffic sharing that link. The operator decision for
"resolvers DoSed + link congested + attack can spread" is action IV:
withdraw from the attack-sourcing link. BGP then routes the peer's
traffic — attack and legitimate alike — to another PoP with headroom,
and legitimate goodput recovers.
"""

import random

import pytest

from repro.netsim import (
    AnycastCloud,
    Datagram,
    EventLoop,
    InternetParams,
    Network,
    attach_host,
    attach_pop,
    build_internet,
)
from repro.platform import AttackSituation, TEAction, TrafficEngineer, decide

PREFIX = "te-prefix"
LINK_CAPACITY = 150.0
LEGIT_RATE = 40.0
ATTACK_RATE = 1_200.0


@pytest.fixture
def world():
    rng = random.Random(83)
    inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=10,
                                              n_stub=30))
    pop_a = attach_pop(inet, rng, pop_id="pop-a", ixp_probability=1.0)
    pop_b = attach_pop(inet, rng, pop_id="pop-b", ixp_probability=1.0)
    loop = EventLoop()
    net = Network(loop, inet.topology, rng)
    net.build_speakers()

    delivered = {"legit": 0, "attack": 0}

    def handler(dgram):
        kind = dgram.payload[0] if isinstance(dgram.payload, tuple) \
            else "other"
        if kind in delivered:
            delivered[kind] += 1

    cloud = AnycastCloud(PREFIX, net)
    for pop in (pop_a, pop_b):
        net.register_local_delivery(pop, PREFIX, handler)
        cloud.advertise(pop)
    loop.run_until(40)

    # The attack peer: a neighbor of PoP A whose own traffic lands on A.
    attack_peer = next(p for p in inet.topology.bgp_neighbors(pop_a)
                       if cloud.catchment_of(p) == pop_a)
    # Legitimate clients and attackers both sit behind that peer.
    legit_host = attach_host(inet, rng, host_id="te-legit",
                             attach_to=attack_peer)
    attack_host = attach_host(inet, rng, host_id="te-attacker",
                              attach_to=attack_peer)
    # The shared peering link is the congestion point.
    inet.topology.link(pop_a, attack_peer).capacity_pps = LINK_CAPACITY
    return (loop, net, inet, cloud, pop_a, pop_b, attack_peer,
            legit_host, attack_host, delivered)


def drive(loop, net, rng, host, kind, rate, start, seconds):
    count = int(rate * seconds)
    for i in range(count):
        loop.call_at(start + i / rate, lambda i=i: net.send(Datagram(
            src=host, dst=PREFIX, payload=(kind, i),
            src_port=(i * 13) % 60_000 + 1024)))


def measure(loop, delivered, seconds):
    before = dict(delivered)
    loop.run_until(loop.now + seconds)
    return {k: delivered[k] - before[k] for k in delivered}


def test_congestion_then_action_iv_recovers_legit(world):
    (loop, net, inet, cloud, pop_a, pop_b, attack_peer,
     legit_host, attack_host, delivered) = world
    rng = random.Random(5)

    # Phase 0: legit only, well under the link capacity.
    drive(loop, net, rng, legit_host, "legit", LEGIT_RATE, loop.now, 5)
    got = measure(loop, delivered, 6)
    assert got["legit"] >= LEGIT_RATE * 5 * 0.95

    # Phase 1: volumetric attack congests the shared peering link.
    start = loop.now
    drive(loop, net, rng, attack_host, "attack", ATTACK_RATE, start, 10)
    drive(loop, net, rng, legit_host, "legit", LEGIT_RATE, start, 10)
    got = measure(loop, delivered, 11)
    legit_goodput_under_attack = got["legit"] / (LEGIT_RATE * 10)
    assert legit_goodput_under_attack < 0.6
    assert net.stats.dropped_congestion > 0

    # The operator's call matches Figure 9.
    action = decide(AttackSituation(
        resolvers_dosed=True, peering_links_congested=True,
        compute_saturated=False, can_spread_attack=True))
    assert action == TEAction.WITHDRAW_ALL_ATTACK_LINKS

    # Phase 2: apply action IV and let BGP move the peer's traffic.
    engineer = TrafficEngineer(net, PREFIX)
    plan = engineer.plan(AttackSituation(True, True, False, True),
                         pop_router_id=pop_a,
                         attack_peers=[attack_peer])
    engineer.apply(plan)
    loop.run_until(loop.now + 40)
    assert cloud.catchment_of(attack_peer) not in (pop_a, None)

    start = loop.now
    drive(loop, net, rng, attack_host, "attack", ATTACK_RATE, start, 10)
    drive(loop, net, rng, legit_host, "legit", LEGIT_RATE, start, 10)
    got = measure(loop, delivered, 12)
    legit_goodput_after_te = got["legit"] / (LEGIT_RATE * 10)
    assert legit_goodput_after_te > 0.9
    assert legit_goodput_after_te > legit_goodput_under_attack + 0.3
