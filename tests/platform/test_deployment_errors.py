"""Negative-path tests for deployment construction and provisioning."""

import pytest

from repro.control.portal import ValidationError
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams

SMALL_NET = InternetParams(n_tier1=4, n_tier2=8, n_stub=20)


def small(**overrides):
    defaults = dict(seed=3, n_pops=8, deployed_clouds=8,
                    machines_per_pop=1, pops_per_cloud=2,
                    n_edge_servers=4, internet=SMALL_NET,
                    filters_enabled=False, input_delayed_enabled=False)
    defaults.update(overrides)
    return DeploymentParams(**defaults)


class TestConstructionErrors:
    def test_insufficient_pop_capacity(self):
        # 8 clouds x 3 PoPs each = 24 slots > 8 PoPs x 2 slots.
        with pytest.raises(ValueError, match="not enough PoP capacity"):
            AkamaiDNSDeployment(small(pops_per_cloud=3))

    def test_capacity_boundary_is_exact(self):
        # 8 clouds x 2 PoPs = 16 slots == 8 PoPs x 2: exactly fits.
        deployment = AkamaiDNSDeployment(small())
        for pop_id in deployment.pop_ids:
            assert len(deployment.pop_clouds(pop_id)) == 2

    def test_delegation_capacity_exhaustion(self):
        # With 4 clouds the only 4-of-4 combination supports exactly
        # one enterprise; the second must fail loudly.
        deployment = AkamaiDNSDeployment(small(
            n_pops=4, deployed_clouds=4))
        deployment.provision_enterprise("solo", "solo.net",
                                        "www IN A 203.0.113.9\n")
        with pytest.raises(RuntimeError, match="exhausted"):
            deployment.provision_enterprise("overflow", "overflow.net")


class TestProvisioningErrors:
    @pytest.fixture(scope="class")
    def deployment(self):
        dep = AkamaiDNSDeployment(small())
        dep.provision_enterprise("one", "one.net",
                                 "www IN A 203.0.113.1\n")
        dep.settle(20)
        return dep

    def test_duplicate_enterprise_rejected(self, deployment):
        with pytest.raises(ValidationError):
            deployment.provision_enterprise("one", "two.net")

    def test_invalid_zone_body_rejected(self, deployment):
        with pytest.raises(ValidationError):
            deployment.provision_enterprise("bad", "bad.net",
                                            "www IN A not-an-ip\n")

    def test_foreign_tld_rejected(self, deployment):
        with pytest.raises(ValueError, match="must end in"):
            deployment.provision_enterprise("org", "org.example")

    def test_gtm_for_unprovisioned_zone_rejected(self, deployment):
        from repro.netsim.geo import GeoPoint
        with pytest.raises(ValueError):
            deployment.provision_gtm_property(
                "one", "app.other.net",
                datacenters=[("192.0.2.1", GeoPoint(0, 0))],
                weights=[1.0])

    def test_traffic_report_for_unknown_enterprise(self, deployment):
        with pytest.raises(KeyError):
            deployment.enterprise_traffic_report("ghost")
