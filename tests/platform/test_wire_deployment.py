"""Full-platform resolution with real wire-format responses."""

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineConfig


@pytest.fixture(scope="module")
def wire_deployment():
    dep = AkamaiDNSDeployment(DeploymentParams(
        seed=37, n_pops=8, deployed_clouds=8, machines_per_pop=1,
        pops_per_cloud=2, n_edge_servers=8,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False,
        machine_config=MachineConfig(wire_responses=True)))
    dep.provision_enterprise("wired", "wired.net",
                             "www IN A 203.0.113.70\n",
                             cdn_hostnames=["cdn.wired.net"])
    dep.settle(30)
    return dep


def resolve(dep, resolver, qname):
    results = []
    resolver.resolve(name(qname), RType.A, results.append)
    dep.settle(20)
    assert results
    return results[0]


class TestWireDeployment:
    def test_full_descent_over_wire(self, wire_deployment):
        r = wire_deployment.add_resolver("wire-dep-res")
        result = resolve(wire_deployment, r, "www.wired.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["203.0.113.70"]
        assert result.tcp_retries == 0  # everything fit in 512 octets

    def test_cdn_chain_over_wire(self, wire_deployment):
        r = wire_deployment.add_resolver("wire-dep-res2")
        result = resolve(wire_deployment, r, "cdn.wired.net")
        assert result.rcode == RCode.NOERROR
        for addr in result.addresses():
            assert addr in wire_deployment.edge_addresses

    def test_every_machine_in_wire_mode(self, wire_deployment):
        for deployment in wire_deployment.deployments:
            assert deployment.machine.config.wire_responses
        for host in wire_deployment.lowlevel_hosts.values():
            assert host.machine.config.wire_responses


class TestDualStack:
    def test_cloud_hostnames_have_aaaa(self, wire_deployment):
        from repro.dnscore import RType
        akam = next(z for z in wire_deployment.akamai_zones
                    if str(z.origin) == "akam.net.")
        cloud = wire_deployment.clouds[0]
        assert akam.get_rrset(cloud.ns_hostname, RType.AAAA) is not None

    def test_pops_advertise_both_families(self, wire_deployment):
        cloud = wire_deployment.clouds[0]
        pop_id = wire_deployment.cloud_pops[cloud.index][0]
        pop = wire_deployment.pops[pop_id]
        assert pop.advertises(cloud.prefix)
        assert pop.advertises(cloud.prefix6)

    def test_resolution_over_ipv6_prefix(self, wire_deployment):
        # Force the resolver to use only the IPv6 anycast address of one
        # cloud as its authority for the enterprise zone.
        cloud = wire_deployment.clouds[0]
        from repro.resolver import RecursiveResolver
        from repro.netsim.builder import attach_host
        import random as _random
        attach_host(wire_deployment.internet, wire_deployment.rng,
                    host_id="v6-resolver")
        resolver = RecursiveResolver(
            wire_deployment.loop, wire_deployment.network, "v6-resolver",
            {wire_deployment.tld_zone.origin: [cloud.prefix6]},
            rng=_random.Random(2))
        results = []
        from repro.dnscore import name, RType, RCode
        resolver.resolve(name("www.wired.net"), RType.A, results.append)
        wire_deployment.settle(20)
        assert results[0].rcode == RCode.NOERROR
        assert cloud.prefix6 in results[0].servers
