"""End-to-end tests for EDNS Client Subnet mapping (paper section 3.2).

With ECS, the mapping system answers for the *end user's* subnet rather
than the resolver's address — the end-user mapping of the paper's [11].
Two clients behind the same centralized resolver but in different
places should receive different edges.
"""

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.netsim.geo import GeoPoint
from repro.platform import AkamaiDNSDeployment, DeploymentParams


@pytest.fixture(scope="module")
def deployment():
    dep = AkamaiDNSDeployment(DeploymentParams(
        seed=19, n_pops=8, deployed_clouds=8, machines_per_pop=1,
        pops_per_cloud=2, n_edge_servers=10,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False))
    dep.settle(30)
    # Register the locations of two client subnets: one in North
    # America, one in East Asia.
    dep.client_locations["198.51.100.0/24"] = GeoPoint(40.7, -74.0)
    dep.client_locations["203.0.113.0/24"] = GeoPoint(35.7, 139.7)
    return dep


def resolve_with_ecs(dep, resolver_id, client_ip):
    resolver = dep.add_resolver(resolver_id)
    resolver.send_ecs_for = client_ip
    results = []
    resolver.resolve(name("a1.w10.akamai.net"), RType.A, results.append)
    dep.settle(20)
    assert results and results[0].rcode == RCode.NOERROR
    return results[0]


class TestECSMapping:
    def test_different_subnets_can_get_different_edges(self, deployment):
        us = resolve_with_ecs(deployment, "ecs-res-us", "198.51.100.7")
        jp = resolve_with_ecs(deployment, "ecs-res-jp", "203.0.113.9")
        # Both get valid edge answers...
        for result in (us, jp):
            for addr in result.addresses():
                assert addr in deployment.edge_addresses
        # ...and the mapping keyed on the *client* subnet, so the two
        # answer sets are tailored to different places.
        us_best = us.addresses()[0]
        jp_best = jp.addresses()[0]
        topo = deployment.internet.topology
        us_loc = deployment.client_locations["198.51.100.0/24"]
        # The US answer is nearer the US client than the JP answer is.
        assert topo.node(us_best).location.distance_km(us_loc) <= \
            topo.node(jp_best).location.distance_km(us_loc) + 1e-6 \
            or us.addresses() != jp.addresses()

    def test_ecs_flows_through_the_wire_format(self, deployment):
        # The resolver attaches the option; verify it by intercepting
        # the datagram the authoritative machine receives.
        seen = []
        machine = deployment.deployments[0].machine
        original = machine.receive_query

        def spy(dgram):
            envelope = dgram.payload
            if envelope.message.edns is not None \
                    and envelope.message.edns.client_subnet is not None:
                seen.append(envelope.message.edns.client_subnet)
            original(dgram)

        machine.receive_query = spy
        resolve_with_ecs(deployment, "ecs-res-wire", "198.51.100.200")
        machine.receive_query = original
        if seen:  # this machine may not be in the resolution path
            assert seen[0].address == "198.51.100.0"
            assert seen[0].source_prefix_length == 24

    def test_without_ecs_resolver_address_is_the_key(self, deployment):
        resolver = deployment.add_resolver("ecs-res-none")
        results = []
        resolver.resolve(name("a1.w10.akamai.net"), RType.A,
                         results.append)
        deployment.settle(20)
        assert results[0].rcode == RCode.NOERROR
        assert results[0].addresses()
