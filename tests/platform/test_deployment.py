"""Integration tests for the assembled platform."""

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineState


@pytest.fixture(scope="module")
def deployment():
    dep = AkamaiDNSDeployment(DeploymentParams(
        seed=5, n_pops=8, deployed_clouds=8, machines_per_pop=2,
        pops_per_cloud=2, n_edge_servers=8,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False))
    dep.provision_enterprise("acme", "acme.net",
                             "www IN A 203.0.113.10\n",
                             cdn_hostnames=["cdn.acme.net"])
    dep.settle(30)
    return dep


def resolve(dep, resolver, qname, qtype=RType.A, wait=20.0):
    results = []
    resolver.resolve(name(qname), qtype, results.append)
    dep.settle(wait)
    assert results
    return results[0]


class TestTopologyInvariants:
    def test_no_pop_advertises_more_than_two_clouds(self, deployment):
        for pop_id in deployment.pop_ids:
            assert len(deployment.pop_clouds(pop_id)) <= 2

    def test_every_cloud_has_enough_pops(self, deployment):
        for cloud in deployment.clouds:
            assert len(deployment.cloud_pops[cloud.index]) == 2

    def test_input_delayed_one_per_cloud(self, deployment):
        delayed = deployment.input_delayed_deployments()
        assert len(delayed) == len(deployment.clouds)
        for dep in delayed:
            assert dep.machine.config.input_delayed
            assert not dep.agent.allow_self_suspend

    def test_fleet_advertises_after_settle(self, deployment):
        for cloud in deployment.clouds:
            pops = deployment.cloud_pops[cloud.index]
            assert any(deployment.pops[p].advertises(cloud.prefix)
                       for p in pops)


class TestResolutionPaths:
    def test_adhs_zone_resolves(self, deployment):
        r = deployment.add_resolver("t-res-1")
        result = resolve(deployment, r, "www.acme.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses() == ["203.0.113.10"]

    def test_cdn_chain_resolves_to_edges(self, deployment):
        r = deployment.add_resolver("t-res-2")
        result = resolve(deployment, r, "cdn.acme.net")
        assert result.rcode == RCode.NOERROR
        for addr in result.addresses():
            assert addr in deployment.edge_addresses
        chain = [str(a.name) for a in result.answers]
        assert "acme.edgesuite.net." in chain

    def test_lowlevel_answer_has_short_ttl(self, deployment):
        r = deployment.add_resolver("t-res-3")
        result = resolve(deployment, r, "a1.w10.akamai.net")
        final = result.answers[-1]
        assert final.rtype == RType.A
        assert final.ttl <= 20

    def test_unknown_zone_refused_upstream(self, deployment):
        r = deployment.add_resolver("t-res-4")
        result = resolve(deployment, r, "nothere.acme.net")
        assert result.rcode == RCode.NXDOMAIN


class TestProvisioning:
    def test_unique_delegation_sets(self, deployment):
        set_b = deployment.provision_enterprise(
            "beta", "beta.net", "www IN A 203.0.113.11\n")
        set_a = deployment.assigner.assignment("acme")
        assert set(set_a) != {c.index for c in set_b}

    def test_non_net_origin_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.provision_enterprise("gamma", "gamma.org")

    def test_zone_installed_on_all_machines(self, deployment):
        deployment.provision_enterprise("delta", "delta.net",
                                        "www IN A 203.0.113.12\n")
        for dep in deployment.deployments:
            assert dep.machine.engine.store.get(name("delta.net")) \
                is not None


class TestResiliencyIntegration:
    def test_machine_failure_is_invisible_to_clients(self, deployment):
        # Fail one machine; its PoP keeps serving via the sibling and
        # resolution still succeeds.
        victim = deployment.regular_deployments()[0]
        victim.machine.fault = "unresponsive"
        deployment.settle(deployment.params.monitoring_period * 3)
        assert victim.machine.state == MachineState.SUSPENDED
        r = deployment.add_resolver("t-res-5", timeout=1.0)
        result = resolve(deployment, r, "www.acme.net", wait=30.0)
        assert result.rcode == RCode.NOERROR
        victim.machine.fault = None
        deployment.settle(deployment.params.monitoring_period * 3)
        assert victim.machine.state == MachineState.RUNNING

    def test_mapping_liveness_change_propagates(self, deployment):
        dead = deployment.edge_addresses[0]
        deployment.mapping.set_edge_alive(dead, False)
        deployment.settle(5)
        r = deployment.add_resolver("t-res-6")
        result = resolve(deployment, r, "a2.w10.akamai.net")
        assert dead not in result.addresses()
        deployment.mapping.set_edge_alive(dead, True)
        deployment.settle(5)


class TestTrafficReporting:
    def test_enterprise_rollup_counts_queries(self, deployment):
        r = deployment.add_resolver("report-res")
        results = []
        r.resolve(name("www.acme.net"), RType.A, results.append)
        deployment.settle(70)  # cross a 60 s reporting window
        report = deployment.enterprise_traffic_report("acme")
        assert report["total_queries"] >= 1.0
        assert report["zones"] >= 1.0
