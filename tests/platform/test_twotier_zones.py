"""Tests for Two-Tier zone construction and tailored delegations."""

import random

import pytest

from repro.control.mapping import EdgeServer, MapSnapshot
from repro.dnscore import LookupStatus, RType, name
from repro.netsim.geo import GeoPoint
from repro.platform.twotier import (
    DELEGATION_TTL,
    HOSTNAME_TTL,
    TailoredDelegationProvider,
    TwoTierNames,
    build_lowlevel_zone,
    build_toplevel_zone,
)

NAMES = TwoTierNames()
TOPLEVEL_NS = [(name(f"a{i}-64.akam.net"), f"23.{192 + i}.61.64")
               for i in range(13)]
LOWLEVELS = [(name(f"n{i}.w10.akamai.net"), f"172.16.0.{i + 1}")
             for i in range(4)]


class TestZoneBuilders:
    def test_toplevel_zone_delegates_lowlevel(self):
        zone = build_toplevel_zone(NAMES, TOPLEVEL_NS, LOWLEVELS[:2])
        result = zone.lookup(name("a1.w10.akamai.net"), RType.A)
        assert result.status == LookupStatus.DELEGATION
        assert result.delegation.ttl == DELEGATION_TTL
        assert len(result.glue) == 2

    def test_toplevel_zone_validates(self):
        zone = build_toplevel_zone(NAMES, TOPLEVEL_NS, LOWLEVELS[:2])
        zone.validate()
        assert zone.origin == name("akamai.net")

    def test_out_of_zone_ns_hosts_carry_no_glue(self):
        zone = build_toplevel_zone(NAMES, TOPLEVEL_NS, LOWLEVELS[:2])
        # aX-64.akam.net live in a sibling zone; no A records here.
        assert zone.get_rrset(name("a0-64.akam.net"), RType.A) is None

    def test_lowlevel_zone_serves_apex(self):
        zone = build_lowlevel_zone(NAMES, LOWLEVELS)
        zone.validate()
        result = zone.lookup(name("w10.akamai.net"), RType.NS)
        assert result.status == LookupStatus.SUCCESS
        assert len(result.rrset) == 4


def snapshot(edges):
    return MapSnapshot(1, tuple(edges))


class TestTailoredDelegationProvider:
    def edges(self):
        return [
            EdgeServer("172.16.0.1", GeoPoint(40.0, -74.0)),   # NYC
            EdgeServer("172.16.0.2", GeoPoint(51.5, -0.1)),    # LON
            EdgeServer("172.16.0.3", GeoPoint(35.7, 139.7)),   # TYO
        ]

    def provider(self, edges, locations):
        snap = snapshot(edges)
        return TailoredDelegationProvider(lambda: snap,
                                          locations.get, count=1)

    def test_nearest_edge_selected_per_client(self):
        locations = {"eu-client": GeoPoint(48.8, 2.3),
                     "jp-client": GeoPoint(34.7, 135.5)}
        provider = self.provider(self.edges(), locations)
        cut = NAMES.lowlevel_zone
        ns_eu, glue_eu = provider.delegation(cut, "eu-client")
        ns_jp, glue_jp = provider.delegation(cut, "jp-client")
        assert glue_eu[0].records[0].rdata.address == "172.16.0.2"
        assert glue_jp[0].records[0].rdata.address == "172.16.0.3"

    def test_delegation_ttl_applied(self):
        provider = self.provider(self.edges(), {})
        ns, glue = provider.delegation(NAMES.lowlevel_zone, None)
        assert ns.ttl == DELEGATION_TTL
        assert all(g.ttl == DELEGATION_TTL for g in glue)

    def test_ns_names_live_under_lowlevel_zone(self):
        provider = self.provider(self.edges(), {})
        ns, _ = provider.delegation(NAMES.lowlevel_zone, None)
        for record in ns:
            assert record.rdata.target.is_subdomain_of(
                NAMES.lowlevel_zone)

    def test_dead_edges_excluded(self):
        edges = self.edges()
        edges[1] = EdgeServer("172.16.0.2", GeoPoint(51.5, -0.1),
                              alive=False)
        locations = {"eu-client": GeoPoint(48.8, 2.3)}
        provider = self.provider(edges, locations)
        _, glue = provider.delegation(NAMES.lowlevel_zone, "eu-client")
        assert glue[0].records[0].rdata.address != "172.16.0.2"

    def test_no_snapshot_falls_back_to_static(self):
        provider = TailoredDelegationProvider(lambda: None, lambda k: None)
        assert provider.delegation(NAMES.lowlevel_zone, "x") is None

    def test_no_alive_edges_falls_back(self):
        edges = [EdgeServer("172.16.0.1", GeoPoint(0, 0), alive=False)]
        provider = self.provider(edges, {})
        assert provider.delegation(NAMES.lowlevel_zone, None) is None

    def test_constants_match_paper(self):
        assert HOSTNAME_TTL == 20
        assert DELEGATION_TTL == 4000
