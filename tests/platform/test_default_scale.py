"""The paper-scale default deployment: all 24 clouds, 24 PoPs.

A single (module-scoped) build of `DeploymentParams()` verifying the
defaults hold the paper's structural constants and serve queries.
"""

import pytest

from repro.dnscore import RCode, RType, name
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.platform.clouds import TOTAL_CLOUDS


@pytest.fixture(scope="module")
def deployment():
    dep = AkamaiDNSDeployment(DeploymentParams())
    dep.provision_enterprise("scale", "scale.net",
                             "www IN A 203.0.113.99\n",
                             cdn_hostnames=["cdn.scale.net"])
    dep.settle(40)
    return dep


class TestDefaultScale:
    def test_all_24_clouds_deployed(self, deployment):
        assert len(deployment.clouds) == TOTAL_CLOUDS
        for cloud in deployment.clouds:
            assert len(deployment.cloud_pops[cloud.index]) == 2

    def test_fleet_size(self, deployment):
        # 24 PoPs x 2 machines + 24 input-delayed.
        assert len(deployment.machines()) == 24 * 2 + 24
        assert len(deployment.input_delayed_deployments()) == 24

    def test_every_cloud_reachable(self, deployment):
        for cloud in deployment.clouds:
            pops = deployment.cloud_pops[cloud.index]
            assert any(deployment.pops[p].advertises(cloud.prefix)
                       for p in pops), cloud.prefix

    def test_resolution_through_default_world(self, deployment):
        resolver = deployment.add_resolver("scale-resolver")
        results = []
        resolver.resolve(name("www.scale.net"), RType.A, results.append)
        deployment.settle(20)
        assert results[0].rcode == RCode.NOERROR
        assert results[0].addresses() == ["203.0.113.99"]

    def test_cdn_resolution_through_default_world(self, deployment):
        resolver = deployment.add_resolver("scale-resolver-2")
        results = []
        resolver.resolve(name("cdn.scale.net"), RType.A, results.append)
        deployment.settle(25)
        assert results[0].rcode == RCode.NOERROR
        for address in results[0].addresses():
            assert address in deployment.edge_addresses

    def test_filters_installed_by_default(self, deployment):
        pipeline = deployment.regular_deployments()[0].machine.pipeline
        names = {f.name for f in pipeline.filters}
        assert names == {"ratelimit", "allowlist", "nxdomain",
                         "hopcount", "loyalty"}
