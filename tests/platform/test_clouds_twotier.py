"""Tests for cloud inventory, delegation assignment, and Two-Tier math."""

import pytest

from repro.platform import (
    DELEGATION_SET_SIZE,
    DelegationAssigner,
    TOTAL_CLOUDS,
    all_clouds,
    average_rtt,
    cdn_delegation_clouds,
    expected_rt,
    speedup,
    weighted_rtt,
)
from repro.platform.clouds import AnycastCloudSpec


class TestCloudInventory:
    def test_24_clouds(self):
        clouds = all_clouds()
        assert len(clouds) == TOTAL_CLOUDS
        assert len({c.prefix for c in clouds}) == TOTAL_CLOUDS
        assert len({str(c.ns_hostname) for c in clouds}) == TOTAL_CLOUDS

    def test_13_cdn_clouds(self):
        assert len(cdn_delegation_clouds()) == 13

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AnycastCloudSpec.build(24)


class TestDelegationAssigner:
    def test_set_size(self):
        assigner = DelegationAssigner()
        assert len(assigner.assign("e1")) == DELEGATION_SET_SIZE

    def test_stable_assignment(self):
        assigner = DelegationAssigner()
        assert assigner.assign("e1") == assigner.assign("e1")

    def test_uniqueness(self):
        assigner = DelegationAssigner()
        seen = set()
        for i in range(500):
            combo = tuple(c.index for c in assigner.assign(f"e{i}"))
            assert combo not in seen
            seen.add(combo)

    def test_every_pair_differs(self):
        assigner = DelegationAssigner()
        sets = [frozenset(c.index for c in assigner.assign(f"e{i}"))
                for i in range(100)]
        for i, a in enumerate(sets):
            for b in sets[i + 1:]:
                assert a != b

    def test_early_assignments_spread_clouds(self):
        assigner = DelegationAssigner()
        used = set()
        for i in range(8):
            used.update(c.index for c in assigner.assign(f"e{i}"))
        assert len(used) >= 18  # not clustered lexicographically

    def test_overlap_metric(self):
        assigner = DelegationAssigner()
        assigner.assign("a")
        assigner.assign("b")
        overlap = assigner.overlap("a", "b")
        assert 0 <= overlap < DELEGATION_SET_SIZE

    def test_reduced_universe(self):
        assigner = DelegationAssigner(total=8, set_size=4)
        assert assigner.capacity == 70
        combos = {tuple(c.index for c in assigner.assign(f"e{i}"))
                  for i in range(70)}
        assert len(combos) == 70
        with pytest.raises(RuntimeError):
            assigner.assign("one-too-many")

    def test_set_size_bound(self):
        with pytest.raises(ValueError):
            DelegationAssigner(total=3, set_size=4)


class TestSpeedupModel:
    def test_equation_1(self):
        # T=100, L=10, rT=0: S = 100/10 = 10.
        assert speedup(100.0, 10.0, 0.0) == pytest.approx(10.0)
        # rT=1: S = T/(L+T).
        assert speedup(100.0, 10.0, 1.0) == pytest.approx(100.0 / 110.0)

    def test_break_even(self):
        # S=1 when (1-rT)L + rT(L+T) = T.
        t, l = 50.0, 20.0
        r = (t - l) / t
        assert speedup(t, l, r) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            speedup(10.0, 5.0, 1.5)
        with pytest.raises(ValueError):
            speedup(0.0, 5.0, 0.5)

    def test_two_tier_wins_when_lowlevel_near(self):
        assert speedup(80.0, 8.0, 0.1) > 1.0

    def test_two_tier_loses_when_toplevel_always_needed(self):
        assert speedup(30.0, 25.0, 0.9) < 1.0


class TestExpectedRT:
    def test_zero_demand_always_toplevel(self):
        assert expected_rt(0.0) == 1.0

    def test_tiny_demand_near_one(self):
        assert expected_rt(1e-5) == 1.0

    def test_busy_resolver_near_zero(self):
        assert expected_rt(10.0) < 0.01

    def test_monotone_decreasing(self):
        rates = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0]
        values = [expected_rt(q) for q in rates]
        assert values == sorted(values, reverse=True)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_rt(-1.0)


class TestRTTAggregation:
    def test_average(self):
        assert average_rtt([10.0, 20.0, 30.0]) == pytest.approx(20.0)

    def test_weighted_prefers_low(self):
        rtts = [10.0, 100.0]
        assert weighted_rtt(rtts) < average_rtt(rtts)

    def test_weighted_equal_rtts(self):
        assert weighted_rtt([42.0, 42.0]) == pytest.approx(42.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_rtt([])
        with pytest.raises(ValueError):
            weighted_rtt([])
