"""The section 4.2.2 'particularly insidious' scenario, end to end.

A PoP's transit links — the links metadata arrives over — fail, while
DNS queries still reach its nameservers via peering links. The machines
keep answering from increasingly stale state until the staleness check
fires and they self-suspend; anycast then moves the catchment to a
healthy PoP. When the transit returns, held metadata flushes, the
agents observe freshness, and the PoP comes back.
"""

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineState


@pytest.fixture
def deployment():
    dep = AkamaiDNSDeployment(DeploymentParams(
        seed=47, n_pops=6, deployed_clouds=6, machines_per_pop=1,
        pops_per_cloud=2, n_edge_servers=6,
        input_delayed_enabled=False,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False))
    dep.provision_enterprise("pc", "pc.net", "www IN A 203.0.113.44\n")
    dep.settle(30)
    return dep


def test_partial_connectivity_failure(deployment):
    # Pick a cloud and the PoP we'll partition.
    cloud = deployment.clouds[0]
    victim_pop, backup_pop = deployment.cloud_pops[cloud.index]
    victims = [d for d in deployment.deployments
               if d.machine.machine_id.startswith(victim_pop + "-")]
    assert victims

    # Phase 1: transit (metadata) connectivity dies; the bus models the
    # metadata path, so the machines stop hearing inputs while the DNS
    # data plane — peering links in the topology — stays up.
    for dep in victims:
        deployment.bus.set_partitioned(dep.machine, True)
    threshold = victims[0].machine.config.staleness_threshold
    # Before the staleness threshold: still serving (from stale state).
    deployment.settle(threshold * 0.5)
    assert all(d.machine.state == MachineState.RUNNING for d in victims)
    assert deployment.pops[victim_pop].advertises(cloud.prefix)

    # Past the threshold: staleness detected, machines self-suspend,
    # the PoP withdraws, anycast fails the catchment over.
    deployment.settle(threshold
                      + deployment.params.monitoring_period * 4)
    assert all(d.machine.state == MachineState.SUSPENDED for d in victims)
    assert not deployment.pops[victim_pop].advertises(cloud.prefix)
    assert deployment.pops[backup_pop].advertises(cloud.prefix)

    # Clients are unaffected throughout (retries + failover).
    resolver = deployment.add_resolver("pc-resolver", timeout=1.0)
    outcome = []
    resolver.resolve(name("www.pc.net"), RType.A, outcome.append)
    deployment.settle(30)
    assert outcome[0].rcode == RCode.NOERROR

    # Phase 2: connectivity restored; held metadata flushes, freshness
    # returns, agents resume and re-advertise.
    for dep in victims:
        deployment.bus.set_partitioned(dep.machine, False)
    deployment.mapping.publish()
    deployment.settle(deployment.params.monitoring_period * 4)
    assert all(d.machine.state == MachineState.RUNNING for d in victims)
    assert deployment.pops[victim_pop].advertises(cloud.prefix)


def test_deployment_is_deterministic():
    """Two builds from one seed produce identical observable state."""
    def fingerprint():
        dep = AkamaiDNSDeployment(DeploymentParams(
            seed=53, n_pops=6, deployed_clouds=6, machines_per_pop=1,
            pops_per_cloud=2, n_edge_servers=6,
            internet=InternetParams(n_tier1=4, n_tier2=8, n_stub=24),
            filters_enabled=False))
        dep.provision_enterprise("det", "det.net",
                                 "www IN A 203.0.113.1\n")
        dep.settle(30)
        catchments = {
            cloud.prefix: sorted(
                (stub, dep.network.fib_entry(stub, cloud.prefix))
                for stub in dep.internet.stubs
                if dep.network.fib_entry(stub, cloud.prefix) is not None)
            for cloud in dep.clouds}
        return (
            dep.loop.events_processed,
            sorted(dep.cloud_pops.items()),
            catchments,
            sorted(m.machine_id for m in dep.machines()),
        )

    assert fingerprint() == fingerprint()
