"""Tests for the three services end to end: ADHS, GTM, CDN — plus the
section 4.2.2 stale-state scenarios and the volumetric attack model."""

import pytest

from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.netsim.geo import GeoPoint
from repro.platform import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineState


@pytest.fixture(scope="module")
def deployment():
    dep = AkamaiDNSDeployment(DeploymentParams(
        seed=31, n_pops=8, deployed_clouds=8, machines_per_pop=2,
        pops_per_cloud=2, n_edge_servers=8,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False))
    dep.provision_enterprise("tri", "tri.net",
                             "www IN A 203.0.113.50\n",
                             cdn_hostnames=["cdn.tri.net"])
    dep.provision_gtm_property(
        "tri", "app.tri.net",
        datacenters=[("192.0.2.10", GeoPoint(40.0, -74.0)),
                     ("192.0.2.20", GeoPoint(51.5, -0.1))],
        weights=[0.7, 0.3])
    dep.settle(30)
    return dep


def resolve(dep, resolver, qname, wait=20.0):
    results = []
    resolver.resolve(name(qname), RType.A, results.append)
    dep.settle(wait)
    assert results
    return results[0]


class TestGTM:
    def test_gtm_answers_from_datacenter_set(self, deployment):
        r = deployment.add_resolver("gtm-res-1")
        result = resolve(deployment, r, "app.tri.net")
        assert result.rcode == RCode.NOERROR
        assert result.addresses()[0] in ("192.0.2.10", "192.0.2.20")
        assert result.answers[-1].ttl <= 20

    def test_gtm_failover_to_live_datacenter(self, deployment):
        deployment.set_datacenter_alive("app.tri.net", "192.0.2.10",
                                        False)
        deployment.settle(5)
        r = deployment.add_resolver("gtm-res-2")
        for _ in range(3):
            result = resolve(deployment, r, "app.tri.net", wait=10.0)
            assert result.addresses() == ["192.0.2.20"]
            deployment.settle(25)  # let the 20 s answer TTL lapse
            r.cache.flush()
        deployment.set_datacenter_alive("app.tri.net", "192.0.2.10", True)
        deployment.settle(5)

    def test_gtm_requires_owned_zone(self, deployment):
        with pytest.raises(ValueError):
            deployment.provision_gtm_property(
                "tri", "app.other.net",
                datacenters=[("192.0.2.10", GeoPoint(0, 0))],
                weights=[1.0])

    def test_gtm_unknown_enterprise(self, deployment):
        with pytest.raises(ValueError):
            deployment.provision_gtm_property(
                "ghost", "x.tri.net",
                datacenters=[("192.0.2.10", GeoPoint(0, 0))],
                weights=[1.0])


class TestStaleState:
    def test_partition_causes_staleness_suspension(self, deployment):
        """Section 4.2.2: a machine cut off from metadata self-suspends
        once its inputs age past the threshold, and resumes on catch-up."""
        victim = deployment.regular_deployments()[0]
        machine = victim.machine
        threshold = machine.config.staleness_threshold
        deployment.bus.set_partitioned(machine, True)
        deployment.settle(threshold
                          + deployment.params.monitoring_period * 3)
        assert machine.is_stale(deployment.loop.now)
        assert machine.state == MachineState.SUSPENDED
        # Connectivity restored: held metadata flushes, agent resumes.
        deployment.bus.set_partitioned(machine, False)
        deployment.mapping.publish()
        deployment.settle(deployment.params.monitoring_period * 3)
        assert machine.state == MachineState.RUNNING

    def test_partitioned_machine_view_lags(self, deployment):
        victim = deployment.regular_deployments()[1]
        deployment.bus.set_partitioned(victim.machine, True)
        version_before = victim.view.version
        deployment.mapping.publish()
        deployment.settle(5)
        assert victim.view.version == version_before
        deployment.bus.set_partitioned(victim.machine, False)
        deployment.settle(deployment.params.monitoring_period * 3)
        assert victim.view.version > version_before


class TestVolumetricModel:
    def test_junk_filtered_at_line_rate(self):
        import random
        from repro.netsim import Datagram, EventLoop, Network
        from repro.netsim.builder import attach_host, attach_pop, \
            build_internet
        from repro.server import PoP
        from repro.workload import JunkPayload

        rng = random.Random(3)
        inet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=8,
                                                  n_stub=20))
        pop_id = attach_pop(inet, rng)
        attach_host(inet, rng, host_id="vol-src")
        loop = EventLoop()
        net = Network(loop, inet.topology, rng)
        net.build_speakers()
        pop = PoP(loop, net, pop_id, ingress_capacity_pps=100.0)
        net.register_local_delivery(pop_id, "vol-prefix", pop._deliver)
        net.speaker(pop_id).originate("vol-prefix")
        loop.run_until(20)
        # 1,000 junk packets in one second against 100 pps of ingress.
        for i in range(1_000):
            loop.call_at(20.0 + i * 0.001, lambda i=i: net.send(Datagram(
                src="vol-src", dst="vol-prefix", payload=JunkPayload(),
                src_port=i % 60_000 + 1024, dst_port=123)))
        loop.run_until(25)
        assert pop.dropped_ingress > 800       # bandwidth saturated
        assert pop.junk_filtered > 0           # survivors die in firewall
        assert pop.queries_forwarded == 0      # nothing reaches machines

    def test_unlimited_ingress_by_default(self, deployment):
        pop = next(iter(deployment.pops.values()))
        assert pop.ingress_capacity_pps is None
