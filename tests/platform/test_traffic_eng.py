"""Tests for the traffic-engineering decision tree and its application."""

import random

import pytest

from repro.netsim import (
    EventLoop,
    InternetParams,
    Network,
    attach_pop,
    build_internet,
)
from repro.platform import (
    AttackSituation,
    TEAction,
    TrafficEngineer,
    decide,
)


def situation(dosed=True, congested=False, compute=False, spread=False):
    return AttackSituation(resolvers_dosed=dosed,
                           peering_links_congested=congested,
                           compute_saturated=compute,
                           can_spread_attack=spread)


class TestDecisionTree:
    def test_no_dos_means_do_nothing(self):
        # "The preferred action is always do nothing."
        for congested in (False, True):
            for compute in (False, True):
                assert decide(situation(dosed=False, congested=congested,
                                        compute=compute)) == \
                    TEAction.DO_NOTHING

    def test_upstream_congestion_means_work_with_peers(self):
        assert decide(situation(congested=False, compute=False)) == \
            TEAction.WORK_WITH_PEERS

    def test_compute_saturation_spreads_attack(self):
        assert decide(situation(congested=False, compute=True)) == \
            TEAction.WITHDRAW_FRACTION_OF_ATTACK_LINKS

    def test_congested_and_spreadable(self):
        assert decide(situation(congested=True, spread=True)) == \
            TEAction.WITHDRAW_ALL_ATTACK_LINKS

    def test_congested_not_spreadable(self):
        assert decide(situation(congested=True, spread=False)) == \
            TEAction.WITHDRAW_NON_ATTACK_LINKS


@pytest.fixture
def engineered_world():
    rng = random.Random(13)
    internet = build_internet(rng, InternetParams(n_tier1=4, n_tier2=10,
                                                  n_stub=30))
    pop = attach_pop(internet, rng, ixp_probability=1.0)
    loop = EventLoop()
    network = Network(loop, internet.topology, rng)
    network.build_speakers()
    prefix = "203.0.113.0"
    network.register_local_delivery(pop, prefix, lambda d: None)
    network.speaker(pop).originate(prefix)
    loop.run_until(30)
    return loop, network, pop, prefix


class TestPlans:
    def test_fraction_plan_takes_half(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        plan = engineer.plan(situation(congested=False, compute=True),
                             pop_router_id=pop, attack_peers=peers,
                             fraction=0.5)
        assert plan.action == TEAction.WITHDRAW_FRACTION_OF_ATTACK_LINKS
        assert len(plan.withdrawals) == max(1, len(peers) // 2)

    def test_non_attack_plan_complements(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        attack = peers[:1]
        plan = engineer.plan(situation(congested=True, spread=False),
                             pop_router_id=pop, attack_peers=attack)
        withdrawn_peers = {p for _, p in plan.withdrawals}
        assert attack[0] not in withdrawn_peers
        assert withdrawn_peers == set(peers) - set(attack)

    def test_do_nothing_plan_is_empty(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        plan = engineer.plan(situation(dosed=False), pop_router_id=pop,
                             attack_peers=[])
        assert plan.action == TEAction.DO_NOTHING
        assert not plan.withdrawals

    def test_apply_and_revert_roundtrip(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        plan = engineer.plan(situation(congested=True, spread=True),
                             pop_router_id=pop, attack_peers=peers)
        engineer.apply(plan)
        speaker = network.speaker(pop)
        for _, peer in plan.withdrawals:
            assert speaker.export_blocked(peer, prefix)
        engineer.revert(plan)
        for _, peer in plan.withdrawals:
            assert not speaker.export_blocked(peer, prefix)

    def test_withdrawal_propagates_to_peer_rib(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        target = peers[0]
        # Before: the peer heard the route directly from the PoP.
        loop.run_until(loop.now + 5)
        route_before = network.speaker(target).best_route(prefix)
        assert route_before is not None
        plan = engineer.plan(situation(congested=True, spread=True),
                             pop_router_id=pop, attack_peers=peers)
        engineer.apply(plan)
        loop.run_until(loop.now + 40)
        route_after = network.speaker(target).best_route(prefix)
        assert route_after is None or route_after.next_hop != pop


class TestOverlapSafety:
    """Reference-counted apply/revert: idempotent and overlap-safe."""

    def test_double_apply_is_idempotent(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        plan = engineer.plan(situation(congested=True, spread=True),
                             pop_router_id=pop, attack_peers=peers)
        engineer.apply(plan)
        engineer.apply(plan)      # no double-count
        assert engineer.applied.count(plan) == 1
        engineer.revert(plan)
        speaker = network.speaker(pop)
        # One revert fully restores: the second apply held no extra ref.
        for _, peer in plan.withdrawals:
            assert not speaker.export_blocked(peer, prefix)
        assert engineer.applied == []

    def test_overlapping_plans_hold_shared_withdrawal(self,
                                                      engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        wide = engineer.plan(situation(congested=True, spread=True),
                             pop_router_id=pop, attack_peers=peers)
        narrow = engineer.plan(situation(congested=True, spread=True),
                               pop_router_id=pop, attack_peers=peers[:1])
        shared = narrow.withdrawals[0]
        assert shared in wide.withdrawals
        engineer.apply(wide)
        engineer.apply(narrow)
        speaker = network.speaker(pop)
        # Reverting the superseded wide plan must not clobber the
        # narrow plan's hold on the shared peering link.
        engineer.revert(wide)
        assert speaker.export_blocked(shared[1], prefix)
        only_wide = set(wide.withdrawals) - set(narrow.withdrawals)
        for _, peer in only_wide:
            assert not speaker.export_blocked(peer, prefix)
        engineer.revert(narrow)
        assert not speaker.export_blocked(shared[1], prefix)

    def test_revert_of_never_applied_plan_is_noop(self, engineered_world):
        loop, network, pop, prefix = engineered_world
        engineer = TrafficEngineer(network, prefix)
        peers = network.topology.bgp_neighbors(pop)
        applied = engineer.plan(situation(congested=True, spread=True),
                                pop_router_id=pop, attack_peers=peers)
        ghost = engineer.plan(situation(congested=True, spread=True),
                              pop_router_id=pop, attack_peers=peers)
        engineer.apply(applied)
        # Same withdrawals, distinct plan object never applied: revert
        # is identity-keyed, so this must not release applied's holds.
        engineer.revert(ghost)
        speaker = network.speaker(pop)
        for _, peer in applied.withdrawals:
            assert speaker.export_blocked(peer, prefix)
        engineer.revert(applied)      # clean up
        engineer.revert(applied)      # double revert: also a no-op
        for _, peer in applied.withdrawals:
            assert not speaker.export_blocked(peer, prefix)
