"""Tests for canonical ordering, zone signing, and verification."""

from repro.dnscore import A, RType, SOA, TXT, make_rrset, make_zone, name
from repro.dnscore.name import Name
from repro.dnssec.keys import KeyRing
from repro.dnssec.sign import (
    SigningPolicy,
    ZoneSigner,
    canonical_rrset_bytes,
    covering_rrsigs,
    strip_dnssec,
    validate_dnskey_rrset,
    verify_rrsig,
    zone_is_signed,
)

ORIGIN = name("ex.com")


def soa(serial=1):
    return SOA(name("ns1.ex.com"), name("admin.ex.com"), serial,
               7200, 3600, 1209600, 300)


def build_zone():
    z = make_zone(ORIGIN, soa(), [name("a.ns.akam.net")])
    z.add_rrset(make_rrset(name("www.ex.com"), RType.A, 300,
                           [A("192.0.2.1"), A("192.0.2.2")]))
    z.add_rrset(make_rrset(name("txt.ex.com"), RType.TXT, 300,
                           [TXT((b"hello",))]))
    return z


def signed_zone(now=0.0, policy=None, seed=7):
    zone = build_zone()
    keys = KeyRing(seed, ORIGIN)
    signer = ZoneSigner(keys, policy)
    signer.sign(zone, now)
    return zone, keys, signer


def apex_dnskeys(zone):
    rrset = zone.get_rrset(ORIGIN, RType.DNSKEY)
    assert rrset is not None
    return [r.rdata for r in rrset.records]


class TestCanonicalOrder:
    def test_rfc4034_section_6_1_example(self):
        # The worked example from RFC 4034 section 6.1, case-folded
        # (Name lowercases on construction).
        expected = [
            Name((b"example",)),
            Name((b"a", b"example")),
            Name((b"yljkjljk", b"a", b"example")),
            Name((b"z", b"a", b"example")),
            Name((b"zabc", b"a", b"example")),
            Name((b"z", b"example")),
            Name((b"\x01", b"z", b"example")),
            Name((b"*", b"z", b"example")),
            Name((b"\xc8", b"z", b"example")),
        ]
        shuffled = list(reversed(expected))
        assert sorted(shuffled, key=Name.canonical_key) == expected

    def test_rrset_bytes_sort_rdata_and_track_content(self):
        a = make_rrset(name("www.ex.com"), RType.A, 300,
                       [A("192.0.2.2"), A("192.0.2.1")])
        b = make_rrset(name("www.ex.com"), RType.A, 300,
                       [A("192.0.2.1"), A("192.0.2.2")])
        assert canonical_rrset_bytes(a, 300) == canonical_rrset_bytes(b, 300)
        c = make_rrset(name("www.ex.com"), RType.A, 300, [A("192.0.2.3")])
        assert canonical_rrset_bytes(a, 300) != canonical_rrset_bytes(c, 300)


class TestSigning:
    def test_signed_zone_has_apex_dnskey(self):
        zone, keys, _ = signed_zone()
        assert zone_is_signed(zone)
        tags = {k.key_tag() for k in apex_dnskeys(zone)}
        assert tags == {k.key_tag for k in keys.published}

    def test_every_content_rrset_verifies(self):
        zone, _, _ = signed_zone()
        dnskeys = apex_dnskeys(zone)
        checked = 0
        for rrset in list(zone.iter_rrsets()):
            if rrset.rtype is RType.RRSIG:
                continue
            sigs = covering_rrsigs(zone, rrset.name, rrset.rtype)
            assert sigs is not None, f"no RRSIG for {rrset.name} {rrset.rtype}"
            reasons = [verify_rrsig(rrset, s.rdata, dnskeys, 10.0)
                       for s in sigs.records]
            assert None in reasons, reasons
            checked += 1
        assert checked >= 6  # SOA, NS, DNSKEY, A, TXT, NSECs

    def test_signing_bumps_zone_version(self):
        zone = build_zone()
        before = zone.version
        ZoneSigner(KeyRing(7, ORIGIN)).sign(zone, 0.0)
        assert zone.version > before

    def test_sign_is_deterministic(self):
        a, _, _ = signed_zone()
        b, _, _ = signed_zone()
        sig_a = covering_rrsigs(a, name("www.ex.com"), RType.A)
        sig_b = covering_rrsigs(b, name("www.ex.com"), RType.A)
        assert sig_a.rdatas() == sig_b.rdatas()

    def test_dnskey_rrset_is_ksk_signed(self):
        zone, keys, _ = signed_zone()
        rrset = zone.get_rrset(ORIGIN, RType.DNSKEY)
        sigs = covering_rrsigs(zone, ORIGIN, RType.DNSKEY)
        rrsigs = [r.rdata for r in sigs.records]
        assert {s.key_tag for s in rrsigs} == {keys.active_ksk.key_tag}
        assert validate_dnskey_rrset(rrset, rrsigs, 10.0) is None

    def test_dnskey_without_sep_signature_rejected(self):
        zone, keys, _ = signed_zone()
        rrset = zone.get_rrset(ORIGIN, RType.DNSKEY)
        # Signatures from the ZSK do not vouch for the key set.
        alien = covering_rrsigs(zone, name("www.ex.com"), RType.A)
        verdict = validate_dnskey_rrset(rrset,
                                        [r.rdata for r in alien.records],
                                        10.0)
        assert verdict is not None and "not signed" in verdict


class TestVerificationFailureModes:
    def test_wrong_keys_fail(self):
        zone, _, _ = signed_zone()
        rogue = [k.rdata for k in KeyRing(8, ORIGIN).published]
        rrset = zone.get_rrset(name("www.ex.com"), RType.A)
        sig = covering_rrsigs(zone, rrset.name, RType.A).records[0].rdata
        reason = verify_rrsig(rrset, sig, rogue, 10.0)
        assert reason is not None and "key tag" in reason

    def test_expired_signature_fails(self):
        policy = SigningPolicy(sig_validity=60.0, inception_skew=0.0)
        zone, _, _ = signed_zone(now=0.0, policy=policy)
        rrset = zone.get_rrset(name("www.ex.com"), RType.A)
        sig = covering_rrsigs(zone, rrset.name, RType.A).records[0].rdata
        assert verify_rrsig(rrset, sig, apex_dnskeys(zone), 30.0) is None
        reason = verify_rrsig(rrset, sig, apex_dnskeys(zone), 61.0)
        assert reason is not None and "expired" in reason

    def test_future_inception_fails(self):
        policy = SigningPolicy(inception_skew=0.0)
        zone, _, _ = signed_zone(now=100.0, policy=policy)
        rrset = zone.get_rrset(name("www.ex.com"), RType.A)
        sig = covering_rrsigs(zone, rrset.name, RType.A).records[0].rdata
        reason = verify_rrsig(rrset, sig, apex_dnskeys(zone), 50.0)
        assert reason is not None and "not yet valid" in reason

    def test_tampered_rrset_fails(self):
        zone, _, _ = signed_zone()
        sig = covering_rrsigs(zone, name("www.ex.com"),
                              RType.A).records[0].rdata
        forged = make_rrset(name("www.ex.com"), RType.A, 300,
                            [A("203.0.113.66")])
        reason = verify_rrsig(forged, sig, apex_dnskeys(zone), 10.0)
        assert reason is not None and "mismatch" in reason


class TestWildcardSignatures:
    def test_expansion_verifies_against_wildcard_owner(self):
        zone = build_zone()
        zone.add_rrset(make_rrset(name("*.w.ex.com"), RType.A, 300,
                                  [A("198.51.100.9")]))
        ZoneSigner(KeyRing(7, ORIGIN)).sign(zone, 0.0)
        sig = covering_rrsigs(zone, name("*.w.ex.com"),
                              RType.A).records[0].rdata
        # labels excludes the leftmost "*" (RFC 4034 section 3.1.3).
        assert sig.labels == 3
        expanded = make_rrset(name("q.w.ex.com"), RType.A, 300,
                              [A("198.51.100.9")])
        assert verify_rrsig(expanded, sig, apex_dnskeys(zone), 10.0) is None


class TestResign:
    def test_unchanged_zone_reuses_signatures(self):
        zone, _, signer = signed_zone()
        stats = signer.resign(zone, 10.0)
        assert stats.signatures_created == 0
        assert stats.signatures_reused > 0
        assert stats.nsec_written == 0

    def test_content_change_resigns_only_the_delta(self):
        zone, _, signer = signed_zone()
        zone.add_rrset(make_rrset(name("www.ex.com"), RType.A, 300,
                                  [A("192.0.2.9")]))
        stats = signer.resign(zone, 10.0)
        assert stats.signatures_created == 1  # just www/A
        assert stats.signatures_reused > 0
        sig = covering_rrsigs(zone, name("www.ex.com"),
                              RType.A).records[0].rdata
        fresh = zone.get_rrset(name("www.ex.com"), RType.A)
        assert verify_rrsig(fresh, sig, apex_dnskeys(zone), 10.0) is None

    def test_near_expiry_signatures_refresh(self):
        policy = SigningPolicy(sig_validity=100.0, resign_margin=50.0,
                               inception_skew=0.0)
        zone, _, signer = signed_zone(now=0.0, policy=policy)
        stats = signer.resign(zone, 80.0)  # 20s left < 50s margin
        assert stats.signatures_reused == 0
        assert stats.signatures_created > 0

    def test_removed_name_leaves_no_dnssec_residue(self):
        zone, _, signer = signed_zone()
        zone.remove_rrset(name("txt.ex.com"), RType.TXT)
        stats = signer.resign(zone, 10.0)
        assert stats.rrsets_removed >= 2  # its NSEC and RRSIG
        assert zone.get_rrset(name("txt.ex.com"), RType.NSEC) is None
        assert zone.get_rrset(name("txt.ex.com"), RType.RRSIG) is None


class TestStrip:
    def test_strip_removes_all_dnssec_state(self):
        zone, _, _ = signed_zone()
        removed = strip_dnssec(zone)
        assert removed > 0
        assert not zone_is_signed(zone)
        for rrset in zone.iter_rrsets():
            assert rrset.rtype not in (RType.DNSKEY, RType.RRSIG, RType.NSEC)
