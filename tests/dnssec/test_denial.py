"""Tests for the NSEC chain and both denial-of-existence modes."""

from repro.dnscore import A, NS, RType, SOA, make_rrset, make_zone, name
from repro.dnscore.name import Name
from repro.dnscore.rdata import NSEC
from repro.dnssec.denial import (
    NsecChainIndex,
    chain_denial,
    compact_denial,
)
from repro.dnssec.keys import KeyRing
from repro.dnssec.sign import SigningPolicy, ZoneSigner, verify_rrsig

ORIGIN = name("ex.com")


def soa(serial=1):
    return SOA(name("ns1.ex.com"), name("admin.ex.com"), serial,
               7200, 3600, 1209600, 300)


def build_signed(extra=()):
    """A signed zone with a delegation, occluded glue, an empty
    non-terminal, and a wildcard below it."""
    z = make_zone(ORIGIN, soa(), [name("a.ns.akam.net")])
    z.add_rrset(make_rrset(name("www.ex.com"), RType.A, 300,
                           [A("192.0.2.1")]))
    # Delegation: the cut is in the chain, the glue below it is not.
    z.add_rrset(make_rrset(name("child.ex.com"), RType.NS, 300,
                           [NS(name("ns.child.ex.com"))]))
    z.add_rrset(make_rrset(name("ns.child.ex.com"), RType.A, 300,
                           [A("192.0.2.53")]))
    # leaf.ent.ex.com makes ent.ex.com an empty non-terminal.
    z.add_rrset(make_rrset(name("leaf.ent.ex.com"), RType.A, 300,
                           [A("192.0.2.2")]))
    # Wildcard whose closest encloser (w.ex.com) is itself an ENT.
    z.add_rrset(make_rrset(name("*.w.ex.com"), RType.A, 300,
                           [A("192.0.2.3")]))
    for rrset in extra:
        z.add_rrset(rrset)
    keys = KeyRing(7, ORIGIN)
    ZoneSigner(keys).sign(z, 0.0)
    return z, keys


def nsec_owners(zone):
    return {rrset.name for rrset in zone.iter_rrsets()
            if rrset.rtype is RType.NSEC}


def nsec_next(zone, owner):
    rrset = zone.get_rrset(owner, RType.NSEC)
    assert rrset is not None
    return rrset.records[0].rdata.next_name


class TestChainShape:
    def test_ents_and_occluded_glue_excluded(self):
        zone, _ = build_signed()
        owners = nsec_owners(zone)
        assert name("ent.ex.com") not in owners     # empty non-terminal
        assert name("w.ex.com") not in owners       # ENT above wildcard
        assert name("ns.child.ex.com") not in owners  # occluded glue
        assert name("child.ex.com") in owners       # the cut itself
        assert name("*.w.ex.com") in owners         # the wildcard

    def test_chain_is_one_closed_cycle(self):
        zone, _ = build_signed()
        owners = nsec_owners(zone)
        current = ORIGIN
        seen = set()
        for _ in range(len(owners)):
            assert current in owners
            seen.add(current)
            current = nsec_next(zone, current)
        assert current == ORIGIN          # wraps back to the apex
        assert seen == owners             # single cycle, no islands

    def test_chain_follows_canonical_order(self):
        zone, _ = build_signed()
        owners = sorted(nsec_owners(zone), key=Name.canonical_key)
        for i, owner in enumerate(owners):
            assert nsec_next(zone, owner) == owners[(i + 1) % len(owners)]

    def test_apex_only_zone_points_at_itself(self):
        z = make_zone(ORIGIN, soa(), [name("a.ns.akam.net")])
        ZoneSigner(KeyRing(7, ORIGIN)).sign(z, 0.0)
        assert nsec_owners(z) == {ORIGIN}
        assert nsec_next(z, ORIGIN) == ORIGIN


class TestNsecChainIndex:
    def test_exact_member_returns_itself(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        assert index.covering(name("www.ex.com")) == name("www.ex.com")

    def test_absent_name_returns_predecessor(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        covering = index.covering(name("zzz.ex.com"))
        assert covering is not None
        assert covering.canonical_key() < name("zzz.ex.com").canonical_key()
        # And it is the *immediate* predecessor on the chain.
        owners = sorted(nsec_owners(zone), key=Name.canonical_key)
        below = [o for o in owners
                 if o.canonical_key() < name("zzz.ex.com").canonical_key()]
        assert covering == below[-1]

    def test_name_before_apex_wraps_to_last_owner(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        owners = sorted(nsec_owners(zone), key=Name.canonical_key)
        # "aa.com" sorts before "ex.com" in canonical order.
        assert index.covering(name("aa.com")) == owners[-1]

    def test_unsigned_zone_has_empty_index(self):
        z = make_zone(ORIGIN, soa(), [name("a.ns.akam.net")])
        index = NsecChainIndex(z)
        assert len(index) == 0
        assert index.covering(name("www.ex.com")) is None


class TestChainDenial:
    def test_nxdomain_proof_denies_name_and_wildcard(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        pairs = chain_denial(zone, index, name("zzz.ex.com"), nxdomain=True)
        assert 1 <= len(pairs) <= 2
        for nsec, sigs in pairs:
            assert nsec.rtype is RType.NSEC
            assert sigs is not None  # every NSEC travels with its RRSIG

    def test_wildcard_at_closest_encloser_is_the_denial(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        # q.w.ex.com would be *synthesized* from *.w.ex.com; the NSEC
        # covering the wildcard name is the wildcard's own NSEC, which
        # proves what the expansion is allowed to claim.
        pairs = chain_denial(zone, index, name("q.w.ex.com"), nxdomain=True)
        owners = {nsec.name for nsec, _ in pairs}
        assert name("*.w.ex.com") in owners

    def test_nodata_proof_is_single_interval(self):
        zone, _ = build_signed()
        index = NsecChainIndex(zone)
        pairs = chain_denial(zone, index, name("www.ex.com"), nxdomain=False)
        assert len(pairs) == 1
        nsec, _ = pairs[0]
        assert nsec.name == name("www.ex.com")
        # The type bitmap proves AAAA's absence: A is present, AAAA not.
        types = nsec.records[0].rdata.types
        assert int(RType.A) in types
        assert int(RType.AAAA) not in types


class TestCompactDenial:
    def test_minimally_covering_interval(self):
        zone, keys = build_signed()
        qname = name("random123.ex.com")
        pairs = compact_denial(zone, keys, SigningPolicy(), qname, 5.0)
        assert len(pairs) == 1
        nsec, sigs = pairs[0]
        assert nsec.name == qname
        rdata = nsec.records[0].rdata
        assert rdata.next_name == qname.prepend(b"\x00")
        assert set(rdata.types) == {int(RType.NSEC), int(RType.RRSIG)}
        assert sigs is not None

    def test_synthesized_rrsig_verifies(self):
        zone, keys = build_signed()
        pairs = compact_denial(zone, keys, SigningPolicy(),
                               name("random123.ex.com"), 5.0)
        nsec, sigs = pairs[0]
        dnskeys = [r.rdata for r in
                   zone.get_rrset(ORIGIN, RType.DNSKEY).records]
        assert verify_rrsig(nsec, sigs.records[0].rdata, dnskeys, 5.0) is None

    def test_nodata_bitmap_includes_existing_types(self):
        zone, keys = build_signed()
        pairs = compact_denial(zone, keys, SigningPolicy(),
                               name("www.ex.com"), 5.0,
                               types=(int(RType.A),))
        rdata = pairs[0][0].records[0].rdata
        assert int(RType.A) in rdata.types

    def test_qname_at_wire_limit_degenerates_gracefully(self):
        zone, keys = build_signed()
        # 63+63+63+60 labels + separators = 254 octets; prepending
        # "\x00" would exceed 255, so next_name falls back to the owner.
        long_name = Name((b"a" * 63, b"b" * 63, b"c" * 63, b"d" * 60))
        assert long_name.wire_length() == 254
        pairs = compact_denial(zone, keys, SigningPolicy(), long_name, 5.0)
        rdata = pairs[0][0].records[0].rdata
        assert rdata.next_name == long_name

    def test_independent_of_zone_topology(self):
        # The proof for a name depends only on the qname and clock --
        # not on what else the zone contains (no zone walking).
        zone_a, keys = build_signed()
        zone_b = make_zone(ORIGIN, soa(), [name("a.ns.akam.net")])
        ZoneSigner(keys).sign(zone_b, 0.0)
        qname = name("probe.ex.com")
        a = compact_denial(zone_a, keys, SigningPolicy(), qname, 5.0)
        b = compact_denial(zone_b, keys, SigningPolicy(), qname, 5.0)
        assert a[0][0].rdatas() == b[0][0].rdatas()
        assert a[0][1].rdatas() == b[0][1].rdatas()
