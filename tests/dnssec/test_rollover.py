"""Tests for RFC 6781 key rollovers run through the release train."""

import random

from repro.control.pubsub import CDN_CHANNEL, MetadataBus
from repro.control.rollout import RolloutCoordinator, RolloutParams
from repro.dnscore import A, RType, SOA, make_rrset, make_zone, name
from repro.dnssec.keys import FLAG_KSK, FLAG_ZSK, KeyRing
from repro.dnssec.rollover import (
    KeyRolloverController,
    RolloverKind,
    ROLLOVER_STEPS,
)
from repro.dnssec.sign import ZoneSigner, covering_rrsigs, verify_rrsig
from repro.filters import QueuePolicy, ScoringPipeline
from repro.netsim import EventLoop
from repro.server import (
    AuthoritativeEngine,
    MachineConfig,
    NameserverMachine,
    ZoneStore,
)

ORIGIN = name("r.example")
PARAMS = RolloutParams(soak_seconds=10.0, check_period=1.0)


def baseline_zone(serial=1):
    z = make_zone(ORIGIN,
                  SOA(name("ns1.r.example"), name("admin.r.example"),
                      serial, 7200, 3600, 1209600, 300),
                  [name("ns1.akam.net")])
    z.add_rrset(make_rrset(name("www.r.example"), RType.A, 300,
                           [A("10.0.0.1")]))
    return z


class SignedTrain:
    """Release train whose baseline zone is signed; see test_rollout."""

    def __init__(self, n_canaries=2, n_rest=3, seed=7):
        self.loop = EventLoop()
        self.bus = MetadataBus(self.loop, random.Random(7))
        self.machines = []
        for i in range(n_canaries + n_rest):
            machine = NameserverMachine(
                self.loop, f"m{i}", AuthoritativeEngine(ZoneStore()),
                ScoringPipeline([]), QueuePolicy(),
                MachineConfig(zone_guard_enabled=True,
                              staleness_threshold=float("inf")))
            machine.metadata_handlers["zone"] = machine.handle_zone_update
            self.bus.subscribe(CDN_CHANNEL, machine)
            self.machines.append(machine)
        self.canaries = self.machines[:n_canaries]
        self.coordinator = RolloutCoordinator(
            self.loop, self.bus, canaries=self.canaries,
            fleet=self.machines, params=PARAMS)
        self.keys = KeyRing(seed, ORIGIN)
        self.signer = ZoneSigner(self.keys)
        self.baseline = baseline_zone()
        self.signer.sign(self.baseline, self.loop.now)
        for machine in self.machines:
            machine.install_zone(self.baseline)
        self.coordinator.set_baseline(self.baseline)
        self.controller = KeyRolloverController(
            self.loop, self.coordinator, self.signer,
            step_hold_seconds=2.0)

    def fleet_dnskey_tags(self):
        """Per-machine sets of DNSKEY tags actually being served."""
        out = []
        for machine in self.machines:
            zone = machine.engine.store.get(ORIGIN)
            rrset = zone.get_rrset(ORIGIN, RType.DNSKEY)
            out.append({r.rdata.key_tag() for r in rrset.records})
        return out

    def served_zone(self, machine=0):
        return self.machines[machine].engine.store.get(ORIGIN)


class TestZskPrepublish:
    def test_three_steps_promote_and_switch_signer(self):
        train = SignedTrain()
        old_zsk = train.keys.zone_signer
        state = train.controller.start(RolloverKind.ZSK_PREPUBLISH)
        assert state.steps == ROLLOVER_STEPS[RolloverKind.ZSK_PREPUBLISH]
        train.loop.run_until(120.0)
        assert state.status == "complete"
        assert len(state.release_ids) == 3
        successor = state.successor
        assert train.keys.zone_signer is successor
        assert old_zsk not in train.keys.published
        # The whole fleet serves the successor's DNSKEY, not the old ZSK.
        for tags in train.fleet_dnskey_tags():
            assert successor.key_tag in tags
            assert old_zsk.key_tag not in tags

    def test_final_zone_verifies_under_new_zsk(self):
        train = SignedTrain()
        train.controller.start(RolloverKind.ZSK_PREPUBLISH)
        train.loop.run_until(120.0)
        zone = train.served_zone()
        dnskeys = [r.rdata for r in
                   zone.get_rrset(ORIGIN, RType.DNSKEY).records]
        rrset = zone.get_rrset(name("www.r.example"), RType.A)
        sig = covering_rrsigs(zone, rrset.name, RType.A).records[0].rdata
        assert sig.key_tag == train.keys.zone_signer.key_tag
        assert verify_rrsig(rrset, sig, dnskeys, train.loop.now) is None

    def test_prepublish_interval_serves_both_dnskeys(self):
        train = SignedTrain()
        old_zsk = train.keys.zone_signer
        state = train.controller.start(RolloverKind.ZSK_PREPUBLISH)
        # After step 1 promotes but before step 3: successor published,
        # old key still present (caches may hold either).
        train.loop.run_until(14.0)
        assert state.step_index >= 1
        canary_tags = train.fleet_dnskey_tags()[0]
        assert old_zsk.key_tag in canary_tags
        assert state.successor.key_tag in canary_tags


class TestKskDoubleSignature:
    def test_two_steps_hand_over_the_sep(self):
        train = SignedTrain()
        old_ksk = train.keys.active_ksk
        state = train.controller.start(RolloverKind.KSK_DOUBLE_SIGNATURE)
        train.loop.run_until(120.0)
        assert state.status == "complete"
        assert len(state.release_ids) == 2
        assert train.keys.active_ksk is state.successor
        assert train.keys.dnskey_signers == [state.successor]
        assert old_ksk not in train.keys.published

    def test_double_signature_window_covers_both_ksks(self):
        train = SignedTrain()
        old_ksk = train.keys.active_ksk
        state = train.controller.start(RolloverKind.KSK_DOUBLE_SIGNATURE)
        train.loop.run_until(14.0)   # step 1 promoted, step 2 not yet
        assert state.step_index == 1
        zone = train.served_zone()
        sigs = covering_rrsigs(zone, ORIGIN, RType.DNSKEY)
        tags = {r.rdata.key_tag for r in sigs.records}
        assert tags == {old_ksk.key_tag, state.successor.key_tag}

    def test_final_dnskey_signed_by_successor_only(self):
        train = SignedTrain()
        state = train.controller.start(RolloverKind.KSK_DOUBLE_SIGNATURE)
        train.loop.run_until(120.0)
        zone = train.served_zone()
        sigs = covering_rrsigs(zone, ORIGIN, RType.DNSKEY)
        tags = {r.rdata.key_tag for r in sigs.records}
        assert tags == {state.successor.key_tag}
        dnskeys = [r.rdata for r in
                   zone.get_rrset(ORIGIN, RType.DNSKEY).records]
        rrset = zone.get_rrset(ORIGIN, RType.DNSKEY)
        assert verify_rrsig(rrset, sigs.records[0].rdata, dnskeys,
                            train.loop.now) is None


class TestAbort:
    def test_no_baseline_aborts_and_restores_ring(self):
        train = SignedTrain()
        # A coordinator that never learned a last-known-good zone.
        fresh = RolloutCoordinator(train.loop, train.bus,
                                   canaries=train.canaries,
                                   fleet=train.machines, params=PARAMS)
        controller = KeyRolloverController(train.loop, fresh, train.signer)
        before = (train.keys.zone_signer, list(train.keys.published))
        state = controller.start(RolloverKind.ZSK_PREPUBLISH)
        assert state.status == "aborted"
        assert "no last-known-good" in state.events[-1][2]
        assert train.keys.zone_signer is before[0]
        assert train.keys.published == before[1]

    def test_timeline_is_human_readable(self):
        train = SignedTrain()
        state = train.controller.start(RolloverKind.ZSK_PREPUBLISH)
        train.loop.run_until(120.0)
        lines = state.timeline()
        assert len(lines) == len(state.events)
        assert any("promoted" in line for line in lines)
