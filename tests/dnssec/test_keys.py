"""Tests for seed-derived DNSSEC key material."""

from repro.dnscore import RType, name
from repro.dnssec.keys import (
    FLAG_KSK,
    FLAG_ZSK,
    KeyRing,
    derive_keypair,
    toy_signature,
)

ORIGIN = name("ex.com")


class TestDerivation:
    def test_same_inputs_same_key(self):
        a = derive_keypair(42, ORIGIN, FLAG_ZSK, 0)
        b = derive_keypair(42, ORIGIN, FLAG_ZSK, 0)
        assert a.secret == b.secret
        assert a.public_key == b.public_key
        assert a.key_tag == b.key_tag

    def test_distinct_inputs_distinct_keys(self):
        base = derive_keypair(42, ORIGIN, FLAG_ZSK, 0)
        variants = [
            derive_keypair(43, ORIGIN, FLAG_ZSK, 0),
            derive_keypair(42, name("other.com"), FLAG_ZSK, 0),
            derive_keypair(42, ORIGIN, FLAG_KSK, 0),
            derive_keypair(42, ORIGIN, FLAG_ZSK, 1),
        ]
        for other in variants:
            assert other.secret != base.secret
            assert other.key_tag != base.key_tag

    def test_ksk_flag_and_repr(self):
        ksk = derive_keypair(1, ORIGIN, FLAG_KSK, 0)
        zsk = derive_keypair(1, ORIGIN, FLAG_ZSK, 0)
        assert ksk.is_ksk and not zsk.is_ksk
        assert "KSK" in repr(ksk) and "ZSK" in repr(zsk)


class TestToySignature:
    def test_sensitive_to_data_and_key(self):
        key = derive_keypair(1, ORIGIN, FLAG_ZSK, 0)
        other = derive_keypair(2, ORIGIN, FLAG_ZSK, 0)
        sig = key.sign(b"payload")
        assert sig == toy_signature(key.public_key, b"payload")
        assert sig != key.sign(b"payloae")
        assert sig != other.sign(b"payload")


class TestKeyRing:
    def test_initial_inventory(self):
        ring = KeyRing(7, ORIGIN)
        assert ring.zone_signer.flags == FLAG_ZSK
        assert ring.active_ksk.flags == FLAG_KSK
        assert set(ring.published) == {ring.zone_signer, ring.active_ksk}
        assert ring.dnskey_signers == [ring.active_ksk]

    def test_mint_advances_index(self):
        ring = KeyRing(7, ORIGIN)
        first = ring.mint(FLAG_ZSK)
        second = ring.mint(FLAG_ZSK)
        assert first.index == 1
        assert second.index == 2
        assert first.key_tag != second.key_tag
        # Minting does not publish.
        assert first not in ring.published

    def test_publish_and_withdraw(self):
        ring = KeyRing(7, ORIGIN)
        successor = ring.mint(FLAG_ZSK)
        ring.publish(successor)
        ring.publish(successor)  # idempotent
        assert ring.published.count(successor) == 1
        ring.withdraw(ring.zone_signer)
        assert ring.zone_signer not in ring.published
        ring.withdraw(ring.zone_signer)  # idempotent

    def test_dnskey_rrset_is_deterministic(self):
        a = KeyRing(7, ORIGIN)
        b = KeyRing(7, ORIGIN)
        rrset_a = a.dnskey_rrset(3600)
        rrset_b = b.dnskey_rrset(3600)
        assert rrset_a.rtype is RType.DNSKEY
        assert rrset_a.name == ORIGIN
        assert rrset_a.rdatas() == rrset_b.rdatas()
        # ZSKs (flag 256) sort before KSKs (flag 257).
        flags = [r.rdata.flags for r in rrset_a.records]
        assert flags == sorted(flags)

    def test_signers_cover_zone_and_dnskey_roles(self):
        ring = KeyRing(7, ORIGIN)
        signers = ring.signers()
        assert ring.zone_signer in signers
        assert ring.active_ksk in signers
        successor = ring.mint(FLAG_KSK)
        ring.dnskey_signers = [ring.active_ksk, successor]
        assert successor in ring.signers()
