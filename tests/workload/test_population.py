"""Tests for workload populations, arrivals, attacks, geolocation."""

import random

import numpy as np
import pytest

from repro.workload import (
    DiurnalModel,
    GeolocationService,
    PopulationParams,
    ResolverPopulation,
    SECONDS_PER_WEEK,
    ZonePopularity,
    bursty_counts,
    expected_major_share,
    major_region_share,
    overlap_fraction,
    poisson_counts,
    regional_query_shares,
    share_of_top,
)


@pytest.fixture(scope="module")
def population():
    return ResolverPopulation(random.Random(7),
                              PopulationParams(n_resolvers=8_000))


class TestResolverPopulation:
    def test_total_rate_calibrated(self, population):
        # Mega-resolver boost inflates the configured total somewhat.
        total = population.total_qps()
        assert 4e6 < total < 9e6

    def test_heavy_skew(self, population):
        assert population.top_share(0.03) > 0.6
        assert population.top_share(0.50) > 0.97

    def test_asn_concentration(self, population):
        assert population.asn_share(0.01) > 0.6

    def test_top_resolvers_sorted(self, population):
        top = population.top_resolvers(0.01)
        rates = [r.base_rate for r in top]
        assert rates == sorted(rates, reverse=True)

    def test_addresses_unique(self, population):
        addresses = [r.address for r in population.resolvers]
        assert len(set(addresses)) == len(addresses)

    def test_weekly_evolution_preserves_size(self):
        pop = ResolverPopulation(random.Random(1),
                                 PopulationParams(n_resolvers=2_000))
        before = len(pop.resolvers)
        pop.advance_week()
        assert len(pop.resolvers) == before

    def test_weekly_overlap_high(self):
        pop = ResolverPopulation(random.Random(1),
                                 PopulationParams(n_resolvers=5_000))
        top_before = [r.address for r in pop.top_resolvers(0.03)]
        pop.advance_week()
        top_after = [r.address for r in pop.top_resolvers(0.03)]
        assert overlap_fraction(top_before, top_after) > 0.8


class TestZonePopularity:
    def test_weights_normalized(self):
        zones = ZonePopularity(random.Random(2))
        assert sum(zones.weights) == pytest.approx(1.0)

    def test_skew_targets(self):
        zones = ZonePopularity(random.Random(2))
        assert 0.8 < zones.top_share(0.01) < 0.95
        assert 0.03 < zones.top_zone_share < 0.09

    def test_sampling_respects_weights(self):
        zones = ZonePopularity(random.Random(2), n_zones=500)
        samples = [zones.sample() for _ in range(5_000)]
        # The head zones dominate samples.
        head_hits = sum(1 for s in samples if s < 5)
        assert head_hits > 2_000


class TestShareHelpers:
    def test_share_of_top(self):
        assert share_of_top([1, 1, 1, 97], 0.25) == pytest.approx(0.97)

    def test_share_empty(self):
        assert share_of_top([], 0.5) == 0.0

    def test_overlap(self):
        assert overlap_fraction(["a", "b"], ["b", "c"]) == 0.5
        assert overlap_fraction([], ["x"]) == 0.0


class TestDiurnal:
    def test_range(self):
        model = DiurnalModel()
        rates = [model.rate(t) for t in range(0, int(SECONDS_PER_WEEK),
                                              3600)]
        assert min(rates) >= model.trough_qps * model.weekend_dip * 0.99
        assert max(rates) <= model.peak_qps * 1.01

    def test_weekend_dip(self):
        model = DiurnalModel()
        saturday_noon = 6 * 86400 + 15 * 3600
        wednesday_noon = 3 * 86400 + 15 * 3600
        assert model.rate(saturday_noon) < model.rate(wednesday_noon)

    def test_series_shape(self):
        times, rates = DiurnalModel().series(step_seconds=3600.0)
        assert len(times) == len(rates) == 168


class TestArrivalProcesses:
    def test_poisson_mean(self):
        rng = np.random.default_rng(5)
        counts = poisson_counts(rng, 10.0, 2_000)
        assert counts.mean() == pytest.approx(10.0, rel=0.1)

    def test_bursty_preserves_mean(self):
        rng = np.random.default_rng(5)
        counts = bursty_counts(rng, 10.0, burstiness=8.0, seconds=50_000)
        assert counts.mean() == pytest.approx(10.0, rel=0.25)

    def test_bursty_peaks_exceed_poisson(self):
        rng = np.random.default_rng(5)
        calm = poisson_counts(rng, 10.0, 20_000)
        bursty = bursty_counts(rng, 10.0, burstiness=8.0, seconds=20_000)
        assert bursty.max() > calm.max() * 2

    def test_burstiness_below_one_rejected(self):
        with pytest.raises(ValueError):
            bursty_counts(np.random.default_rng(0), 1.0, 0.5, 100)


class TestGeolocation:
    def test_register_and_lookup(self):
        geo = GeolocationService(random.Random(6))
        record = geo.register("1.2.3.4")
        assert geo.lookup("1.2.3.4") == record
        assert geo.region_of("1.2.3.4") == record.region
        assert geo.lookup("none") is None

    def test_major_share_near_model(self):
        geo = GeolocationService(random.Random(6))
        rates = {}
        for i in range(5_000):
            addr = f"10.0.{i >> 8}.{i & 255}"
            geo.register(addr)
            rates[addr] = 1.0
        shares = regional_query_shares(geo, rates)
        assert major_region_share(shares) == pytest.approx(
            expected_major_share(), abs=0.05)

    def test_shares_sum_to_one(self):
        geo = GeolocationService(random.Random(6))
        rates = {}
        for i in range(100):
            addr = f"10.9.0.{i}"
            geo.register(addr)
            rates[addr] = float(i + 1)
        shares = regional_query_shares(geo, rates)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestQueryTrain:
    def test_respects_rate_and_duration(self):
        import random as _random
        from repro.netsim import EventLoop
        from repro.workload import QueryTrain
        loop = EventLoop()
        sent = []
        QueryTrain(loop, _random.Random(3), rate_qps=100.0,
                   send=lambda: sent.append(loop.now),
                   duration=10.0)
        loop.run_until(30.0)
        # ~100 qps for 10 s of eligibility.
        assert 700 <= len(sent) <= 1300
        assert max(sent) <= 10.5

    def test_stop_halts_immediately(self):
        import random as _random
        from repro.netsim import EventLoop
        from repro.workload import QueryTrain
        loop = EventLoop()
        sent = []
        train = QueryTrain(loop, _random.Random(3), rate_qps=50.0,
                           send=lambda: sent.append(loop.now))
        loop.run_until(2.0)
        train.stop()
        count = len(sent)
        loop.run_until(10.0)
        assert len(sent) == count

    def test_zero_rate_sends_nothing(self):
        import random as _random
        from repro.netsim import EventLoop
        from repro.workload import QueryTrain
        loop = EventLoop()
        sent = []
        QueryTrain(loop, _random.Random(3), rate_qps=0.0,
                   send=lambda: sent.append(1))
        loop.run_until(10.0)
        assert not sent
