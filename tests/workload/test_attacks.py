"""Tests for the attack-traffic generators and their filter coverage.

Beyond generator mechanics, this module verifies the section 4.3.4
taxonomy end to end: each attack class is caught by the filter designed
for it and missed by the weaker filters it is designed to evade.
"""

import random

import pytest

from repro.dnscore import RType, name
from repro.filters import (
    AllowlistConfig,
    AllowlistFilter,
    HopCountConfig,
    HopCountFilter,
    LoyaltyConfig,
    LoyaltyFilter,
    QueryContext,
    RateLimitConfig,
    RateLimitFilter,
)
from repro.netsim import EventLoop
from repro.server.machine import QueryEnvelope
from repro.workload import (
    DirectQueryAttack,
    JunkPayload,
    QoDInjector,
    RandomSubdomainAttack,
    SpoofedIdentity,
    SpoofedSourceAttack,
    VolumetricAttack,
    random_label,
)

VICTIM = name("victim.example")
VALID = [name(f"h{i}.victim.example") for i in range(5)]


def collect(attack_cls, duration=5.0, **kwargs):
    loop = EventLoop()
    packets = []
    rng = random.Random(8)
    attack = attack_cls(loop, rng, packets.append, rate_pps=200.0,
                        duration=duration, **kwargs)
    attack.start()
    loop.run_until(duration + 1.0)
    return attack, packets


class TestGenerators:
    def test_volumetric_is_not_dns(self):
        attack, packets = collect(VolumetricAttack, target="pop-x")
        assert packets
        assert all(isinstance(p.payload, JunkPayload) for p in packets)
        assert attack.stats.packets_sent == len(packets)

    def test_direct_query_uses_valid_names(self):
        _, packets = collect(DirectQueryAttack, target="ns",
                             qnames=VALID, source_count=4)
        for p in packets:
            envelope = p.payload
            assert isinstance(envelope, QueryEnvelope)
            assert envelope.is_attack
            assert envelope.message.question.qname in VALID
        sources = {p.src for p in packets}
        assert len(sources) <= 4

    def test_random_subdomain_names_are_random(self):
        _, packets = collect(RandomSubdomainAttack, target="ns",
                             victim_zone=VICTIM,
                             sources=["10.1.1.1", "10.1.1.2"])
        qnames = {str(p.payload.message.question.qname) for p in packets}
        assert len(qnames) > len(packets) * 0.9
        assert all(q.endswith("victim.example.") for q in qnames)

    def test_spoofed_without_ttl_uses_attacker_hopcount(self):
        identities = [SpoofedIdentity("8.8.8.8")]
        _, packets = collect(SpoofedSourceAttack, target="ns",
                             identities=identities, qnames=VALID,
                             attacker_ip_ttl=33)
        assert all(p.src == "8.8.8.8" for p in packets)
        assert all(p.ip_ttl == 33 for p in packets)

    def test_spoofed_with_ttl_forges_it(self):
        identities = [SpoofedIdentity("8.8.8.8", ip_ttl=57)]
        _, packets = collect(SpoofedSourceAttack, target="ns",
                             identities=identities, qnames=VALID)
        assert all(p.ip_ttl == 57 for p in packets)

    def test_rate_ramp(self):
        loop = EventLoop()
        packets = []
        attack = DirectQueryAttack(loop, random.Random(1), packets.append,
                                   rate_pps=10.0, duration=100.0,
                                   target="ns", qnames=VALID)
        attack.start()
        loop.run_until(5.0)
        early = len(packets)
        attack.set_rate(1000.0)
        loop.run_until(10.0)
        assert len(packets) - early > early * 5

    def test_stop(self):
        loop = EventLoop()
        packets = []
        attack = DirectQueryAttack(loop, random.Random(1), packets.append,
                                   rate_pps=100.0, duration=100.0,
                                   target="ns", qnames=VALID)
        attack.start()
        loop.run_until(1.0)
        attack.stop()
        count = len(packets)
        loop.run_until(10.0)
        assert len(packets) == count

    def test_qod_injector(self):
        loop = EventLoop()
        packets = []
        injector = QoDInjector(loop, packets.append, "ns")
        injector.fire(name("crash.victim.example"))
        assert packets[0].payload.poison
        assert injector.sent == 1

    def test_random_label_deterministic(self):
        assert random_label(random.Random(3)) == \
            random_label(random.Random(3))


class TestTaxonomyCoverage:
    """Each attack class vs the filter built for it (section 4.3.4)."""

    def test_direct_query_caught_by_rate_limit(self):
        f = RateLimitFilter(RateLimitConfig(min_limit_qps=5.0,
                                            headroom=1.0,
                                            burst_seconds=1.0,
                                            warmup_queries=0))
        f.prime("198.18.0.1", 5.0)
        penalties = [
            f.score(QueryContext("198.18.0.1", VALID[0], RType.A,
                                 now=i * 0.002))
            for i in range(2_000)]
        assert sum(1 for p in penalties if p) > 1_500

    def test_wide_botnet_evades_rate_limit_caught_by_allowlist(self):
        rate = RateLimitFilter(RateLimitConfig(min_limit_qps=10.0,
                                               warmup_queries=0))
        allow = AllowlistFilter(
            AllowlistConfig(window_seconds=1.0, activate_qps=100.0,
                            activate_unique_sources=50),
            allowlist={"known-1"})
        rate_hits = allow_hits = 0
        for i in range(3_000):
            source = f"bot-{i % 1000}"   # each bot stays under its limit
            ctx = QueryContext(source, VALID[0], RType.A, now=i * 0.001)
            if rate.score(ctx):
                rate_hits += 1
            if allow.score(ctx):
                allow_hits += 1
        assert rate_hits == 0
        assert allow_hits > 1_000

    def test_random_subdomain_evades_per_source_filters(self):
        # The attack arrives from known resolvers at plausible rates, so
        # allowlist and rate limit see nothing wrong; only the NXDOMAIN
        # filter (tested in tests/filters/test_nxdomain.py) catches it.
        allow = AllowlistFilter(AllowlistConfig(window_seconds=1.0,
                                                activate_qps=1e9),
                                allowlist={"resolver-1"})
        rng = random.Random(4)
        hits = 0
        for i in range(500):
            qname = VICTIM.prepend(random_label(rng))
            ctx = QueryContext("resolver-1", qname, RType.A, now=i * 0.1)
            if allow.score(ctx):
                hits += 1
        assert hits == 0

    def test_spoofed_source_caught_by_hopcount(self):
        f = HopCountFilter(HopCountConfig(min_observations=5))
        f.prime("8.8.8.8", 58)
        spoofed = QueryContext("8.8.8.8", VALID[0], RType.A, now=0.0,
                               ip_ttl=33)
        assert f.score(spoofed) > 0

    def test_spoofed_ttl_evades_hopcount_caught_by_loyalty(self):
        hopcount = HopCountFilter(HopCountConfig(min_observations=5))
        hopcount.prime("8.8.8.8", 58)
        # Attacker forged the TTL perfectly.
        forged = QueryContext("8.8.8.8", VALID[0], RType.A, now=0.0,
                              ip_ttl=58, nameserver_id="ns-far")
        assert hopcount.score(forged) == 0.0
        # But the far-away nameserver has never served this resolver.
        loyalty = LoyaltyFilter(LoyaltyConfig(min_history_sources=2))
        loyalty.prime("local-a", 0.0)
        loyalty.prime("local-b", 0.0)
        assert loyalty.score(forged) > 0
