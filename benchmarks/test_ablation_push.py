"""Ablation: Two-Tier answer push (paper section 5.2, "Improvements").

The paper observes that Two-Tier costs extra whenever a resolver must
query both tiers in one resolution; if the toplevel referral could also
*push* the answer (a DNS protocol change, now possible with
DNS-over-HTTPS server push), Two-Tier would be beneficial whenever
L < T — for 87-98% of resolvers. This benchmark computes the figure-11
speedup with and without push on the same measured (T, L, rT) dataset.
"""

import numpy as np
from conftest import report

from repro.analysis.report import ExperimentResult
from repro.experiments.fig11_speedup import (
    Fig11Params,
    build_dataset,
    speedups,
)


def push_speedups(dataset) -> dict[str, np.ndarray]:
    """Speedup when toplevel referrals also carry the answer.

    With push, a resolution that consults the toplevel finishes in T
    (the lowlevel query is avoided): average time becomes
    (1-rT)*L + rT*T, so S = T / ((1-rT)*L + rT*T).
    """
    out = {}
    for label, T in (("avg", dataset.avg_T), ("wgt", dataset.wgt_T)):
        denom = (1.0 - dataset.r_t) * dataset.L + dataset.r_t * T
        out[label] = T / denom
    return out


def test_answer_push_extension(benchmark):
    def job():
        dataset = build_dataset(Fig11Params())
        baseline = speedups(dataset)
        pushed = push_speedups(dataset)
        result = ExperimentResult(
            "ablation-push", "Two-Tier with toplevel answer push")
        for label in ("avg", "wgt"):
            frac_base = float(np.mean(baseline[label] > 1.0))
            frac_push = float(np.mean(pushed[label] > 1.0))
            result.metrics[f"speedup_gt1_{label}_baseline"] = frac_base
            result.metrics[f"speedup_gt1_{label}_push"] = frac_push
            result.compare(
                f"push never slower than baseline ({label} RTT)",
                "S_push >= S", "elementwise",
                bool(np.all(pushed[label] >= baseline[label] - 1e-12)))
        # "Two-Tier would always be beneficial when L < T" — S >= 1
        # wherever L < T, with equality only at the rT = 1 boundary
        # (a resolver that contacts the toplevels every time neither
        # gains nor loses under push).
        l_lt_t = dataset.L < dataset.wgt_T
        never_hurt = float(np.mean(pushed["wgt"][l_lt_t] >= 1.0 - 1e-12))
        strictly_better = float(np.mean(
            pushed["wgt"][l_lt_t & (dataset.r_t < 1.0)] > 1.0))
        result.metrics["push_never_hurts_where_L_lt_T"] = never_hurt
        result.metrics["push_strict_win_rT_lt_1"] = strictly_better
        result.compare("push: S >= 1 wherever L < T",
                       "always beneficial when L < T",
                       f"{never_hurt:.0%}", never_hurt >= 0.999)
        result.compare("push: strict win whenever rT < 1 and L < T",
                       "S > 1", f"{strictly_better:.0%}",
                       strictly_better >= 0.999)
        improvement = float(np.mean(pushed["wgt"] / baseline["wgt"]))
        result.metrics["mean_improvement_wgt"] = improvement
        result.compare("push improves the mean speedup",
                       "> 1x", f"{improvement:.2f}x", improvement > 1.0)
        return result

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    report(result)
