"""Benchmark: regenerate Figure 11 (Two-Tier speedup CDFs)."""

from conftest import report

from repro.experiments import fig11_speedup


def test_fig11_twotier(benchmark):
    result = benchmark.pedantic(fig11_speedup.run, rounds=1, iterations=1)
    report(result)
