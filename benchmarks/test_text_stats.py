"""Benchmark: regenerate the in-text statistics (sections 2/4.3.4/5.2)."""

from conftest import report

from repro.experiments import text_stats


def test_text_stats(benchmark):
    result = benchmark.pedantic(text_stats.run, rounds=1, iterations=1)
    report(result)
