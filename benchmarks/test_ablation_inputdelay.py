"""Ablation: input-delayed nameservers on vs off (paper section 4.2.3).

A poisoned metadata input crashes every regular nameserver at once. With
input-delayed machines deployed (one per cloud, advertising at higher
MED so they idle in normal operation), traffic fails over to them within
seconds and queries keep being answered from hour-old state; without
them, the platform is dark until the fleet restarts.
"""

from conftest import report

from repro.analysis.report import ExperimentResult
from repro.dnscore import RType, name
from repro.netsim.builder import InternetParams
from repro.platform.deployment import AkamaiDNSDeployment, DeploymentParams
from repro.server.machine import MachineConfig


def _scenario(input_delayed: bool) -> tuple[bool, bool]:
    deployment = AkamaiDNSDeployment(DeploymentParams(
        seed=11, n_pops=6, deployed_clouds=6, machines_per_pop=1,
        pops_per_cloud=1, n_edge_servers=4,
        input_delayed_enabled=input_delayed,
        internet=InternetParams(n_tier1=4, n_tier2=10, n_stub=30),
        filters_enabled=False,
        machine_config=MachineConfig(restart_delay=600.0)))
    deployment.provision_enterprise("ent", "victim.net",
                                    "www IN A 203.0.113.9\n")
    deployment.settle(30)

    resolver = deployment.add_resolver("idr", timeout=1.0)
    results: list = []
    resolver.resolve(name("www.victim.net"), RType.A, results.append)
    deployment.settle(15)
    healthy_before = not results[-1].failed

    # The poisoned input: every regular nameserver crashes on applying
    # it. Input-delayed machines have not received it yet.
    for dep in deployment.regular_deployments():
        dep.machine.crash()
    deployment.settle(30)

    resolver.cache.flush()
    resolver.resolve(name("www.victim.net"), RType.A, results.append)
    deployment.settle(20)
    available_during_outage = not results[-1].failed
    return healthy_before, available_during_outage


def test_input_delayed_nameservers(benchmark):
    def job():
        result = ExperimentResult(
            "ablation-inputdelay",
            "Input-delayed nameservers during an input-induced outage")
        before_on, during_on = _scenario(input_delayed=True)
        before_off, during_off = _scenario(input_delayed=False)
        result.metrics.update({
            "with_inputdelay_available": float(during_on),
            "without_inputdelay_available": float(during_off),
        })
        result.compare("platform healthy before the poisoned input",
                       "resolvable", f"{before_on}/{before_off}",
                       before_on and before_off)
        result.compare("with input-delayed: degraded service, not outage",
                       "answers from stale data", str(during_on),
                       during_on)
        result.compare("without input-delayed: total outage",
                       "unresolvable", str(during_off), not during_off)
        return result

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    report(result)
