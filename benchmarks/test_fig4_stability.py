"""Benchmark: regenerate Figure 4 (week-over-week rate change PDF)."""

from conftest import report

from repro.experiments import fig4_stability


def test_fig4_stability(benchmark):
    result = benchmark.pedantic(fig4_stability.run, rounds=1, iterations=1)
    report(result)
