"""Benchmark: regenerate Figure 8 (anycast failover time CDFs).

Full packet-level BGP convergence measurement; the priciest benchmark.
"""

from conftest import report

from repro.experiments import fig8_failover


def test_fig8_failover(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_failover.run(fig8_failover.Fig8Params()),
        rounds=1, iterations=1)
    # BGP convergence sampling is inherently noisy at simulation scale;
    # require at least 3 of the 4 shape checks.
    report(result, min_holding=3)
