"""Benchmark: the platform resilience scorecard (chaos campaign suite).

Runs every standard campaign against the paper-scale 24-cloud platform
and asserts the full pass/fail scorecard, plus a determinism check —
the whole point of seeded chaos is that a resilience regression shows
up as a diff, so two same-seed runs must agree digit-for-digit.
"""

import pytest
from conftest import report

from repro.experiments import resilience_scorecard


@pytest.mark.chaos
def test_resilience_scorecard(benchmark):
    result = benchmark.pedantic(
        lambda: resilience_scorecard.run(),
        rounds=1, iterations=1)
    report(result)


@pytest.mark.chaos
def test_scorecard_is_deterministic():
    params = resilience_scorecard.ScorecardParams.fast(seed=7)
    first = resilience_scorecard.run(params)
    second = resilience_scorecard.run(
        resilience_scorecard.ScorecardParams.fast(seed=7))
    assert first.render() == second.render()
    assert first.metrics == second.metrics
