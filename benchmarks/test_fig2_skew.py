"""Benchmark: regenerate Figure 2 (query skew by zones/ASNs/IPs)."""

from conftest import report

from repro.experiments import fig2_skew


def test_fig2_skew(benchmark):
    result = benchmark.pedantic(fig2_skew.run, rounds=1, iterations=1)
    report(result)
