"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper figure (or ablation) and prints
the paper-vs-measured table; run with ``pytest benchmarks/
--benchmark-only -s`` to see the rows. Timings come from
pytest-benchmark; correctness comes from each experiment's shape checks.
"""

from __future__ import annotations


def report(result, min_holding: int | None = None) -> None:
    """Print the experiment table and assert its shape checks.

    ``min_holding`` relaxes the assertion for statistically noisy
    experiments: at least that many comparisons must hold.
    """
    print()
    print(result.render())
    if min_holding is None:
        assert result.all_hold, (
            f"{result.experiment_id}: paper-shape checks failed:\n"
            + result.render())
    else:
        holding = sum(c.holds for c in result.comparisons)
        assert holding >= min_holding, (
            f"{result.experiment_id}: only {holding} checks hold:\n"
            + result.render())
