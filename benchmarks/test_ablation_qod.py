"""Ablation: query-of-death firewall on vs off (paper section 4.2.4).

An attacker (or an unlucky resolver) repeatedly sends a query that
crashes the nameserver. With the QoD firewall, the first crash installs
a rule dropping similar queries, bounding the crash rate to once per
T_QoD; without it, the machine crashloops and legitimate goodput
collapses.
"""

import random

from conftest import report

from repro.analysis.report import ExperimentResult
from repro.dnscore import RType, make_query, name, parse_zone_text
from repro.filters.base import ScoringPipeline
from repro.filters.scoring import QueuePolicy
from repro.netsim.clock import EventLoop
from repro.netsim.packet import Datagram
from repro.server.engine import AuthoritativeEngine, ZoneStore
from repro.server.machine import MachineConfig, NameserverMachine, QueryEnvelope

DURATION = 120.0
QOD_INTERVAL = 2.0
LEGIT_RATE = 50.0


def _run(firewall_enabled: bool) -> tuple[int, float]:
    rng = random.Random(3)
    loop = EventLoop()
    store = ZoneStore()
    store.add(parse_zone_text(
        "$ORIGIN qod.example.\n$TTL 300\n"
        "@ IN SOA ns1.qod.example. admin.qod.example. 1 2 3 4 300\n"
        "@ IN NS ns1.qod.example.\n"
        "www IN A 10.0.0.1\n"
        "crashme IN TXT \"corner case\"\n"))
    machine = NameserverMachine(
        loop, "qod-ns", AuthoritativeEngine(store), ScoringPipeline([]),
        QueuePolicy(),
        MachineConfig(compute_capacity_qps=5_000.0,
                      restart_delay=5.0,
                      qod_firewall_enabled=firewall_enabled,
                      t_qod=60.0,
                      staleness_threshold=float("inf")))
    sent = [0]
    msg_id = [0]

    def send(qname, poison):
        msg_id[0] = (msg_id[0] + 1) & 0xFFFF
        query = make_query(msg_id[0], qname, RType.TXT if poison
                           else RType.A)
        if not poison:
            sent[0] += 1
        machine.receive_query(Datagram(
            src="198.18.7.7" if poison else f"10.5.0.{rng.randint(1, 40)}",
            dst="qod-target",
            payload=QueryEnvelope(query, is_attack=poison, poison=poison),
            src_port=rng.randint(1024, 65535)))

    def legit():
        if loop.now >= DURATION:
            return
        send(name("www.qod.example"), poison=False)
        loop.call_later(rng.expovariate(LEGIT_RATE), legit)

    def qod():
        if loop.now >= DURATION:
            return
        send(name("crashme.qod.example"), poison=True)
        loop.call_later(QOD_INTERVAL, qod)

    loop.call_later(0.01, legit)
    loop.call_later(1.0, qod)
    loop.run_until(DURATION + 10)
    goodput = machine.metrics.legit_answered / max(1, sent[0])
    return machine.metrics.crashes, goodput


def test_qod_firewall(benchmark):
    def job():
        result = ExperimentResult(
            "ablation-qod", "QoD firewall: crash containment")
        crashes_on, goodput_on = _run(firewall_enabled=True)
        crashes_off, goodput_off = _run(firewall_enabled=False)
        result.metrics.update({
            "crashes_with_firewall": crashes_on,
            "crashes_without_firewall": crashes_off,
            "goodput_with_firewall": goodput_on,
            "goodput_without_firewall": goodput_off,
        })
        # 120 s, T_QoD 60 s: at most ~1 crash per expiry window + the
        # initial one.
        result.compare("firewall bounds crashes to ~1 per T_QoD",
                       "<= 3 in 120 s", f"{crashes_on}", crashes_on <= 3)
        result.compare("without firewall the machine crashloops",
                       "~1 per restart cycle", f"{crashes_off}",
                       crashes_off >= 3 * crashes_on)
        result.compare("firewall preserves legitimate goodput",
                       "higher with firewall",
                       f"{goodput_on:.0%} vs {goodput_off:.0%}",
                       goodput_on > goodput_off + 0.15)
        return result

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    report(result)
