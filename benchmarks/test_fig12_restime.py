"""Benchmark: regenerate Figure 12 (absolute resolution times)."""

from conftest import report

from repro.experiments import fig12_restime


def test_fig12_restime(benchmark):
    result = benchmark.pedantic(fig12_restime.run, rounds=1, iterations=1)
    report(result)
