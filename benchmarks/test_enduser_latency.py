"""Benchmark: end-user resolution latency through the full stack."""

from conftest import report

from repro.experiments import enduser_latency


def test_enduser_latency(benchmark):
    result = benchmark.pedantic(enduser_latency.run, rounds=1,
                                iterations=1)
    report(result)
