"""Benchmark: regenerate Figure 3 (per-resolver avg/max qps CDFs)."""

from conftest import report

from repro.experiments import fig3_per_resolver


def test_fig3_per_resolver(benchmark):
    result = benchmark.pedantic(fig3_per_resolver.run, rounds=1,
                                iterations=1)
    report(result)
