"""Benchmark: the section 4.3.4 attack taxonomy vs its mitigations."""

from conftest import report

from repro.experiments import taxonomy


def test_attack_taxonomy(benchmark):
    result = benchmark.pedantic(lambda: taxonomy.run(phase_seconds=6.0),
                                rounds=1, iterations=1)
    report(result)
