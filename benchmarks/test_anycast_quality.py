"""Benchmark: section 5.1 anycast proximity quality."""

from conftest import report

from repro.experiments import anycast_quality


def test_anycast_quality(benchmark):
    result = benchmark.pedantic(anycast_quality.run, rounds=1,
                                iterations=1)
    report(result)
