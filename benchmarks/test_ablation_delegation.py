"""Ablation: unique 6-of-24 delegation sets vs a shared delegation set.

Paper section 4.3.1: because every enterprise gets a *unique* set of 6
clouds, saturating every PoP serving enterprise A's clouds still leaves
any other enterprise B at least one live delegation — resolvers retry
against the other clouds and succeed. With a shared set (every
enterprise on the same 6 clouds), the same attack takes everyone down.
This benchmark runs both configurations end-to-end: it saturates A's
clouds by suspending their machines and measures whether B's zone still
resolves.
"""

from conftest import report

from repro.analysis.report import ExperimentResult
from repro.dnscore import RCode, RType, name
from repro.netsim.builder import InternetParams
from repro.platform.clouds import DELEGATION_SET_SIZE, DelegationAssigner
from repro.platform.deployment import AkamaiDNSDeployment, DeploymentParams


def _build(shared_sets: bool) -> tuple[AkamaiDNSDeployment, tuple, tuple]:
    deployment = AkamaiDNSDeployment(DeploymentParams(
        seed=7, n_pops=12, deployed_clouds=12, machines_per_pop=1,
        pops_per_cloud=1, n_edge_servers=6, input_delayed_enabled=False,
        internet=InternetParams(n_tier1=4, n_tier2=12, n_stub=40),
        filters_enabled=False))
    combo_a = tuple(range(DELEGATION_SET_SIZE))
    if shared_sets:
        combo_b = combo_a
    else:
        # Worst-case unique assignment: B differs from A in exactly one
        # cloud (the paper's minimum guarantee).
        combo_b = tuple(range(1, DELEGATION_SET_SIZE + 1))
    deployment.assigner._assigned["ent-a"] = combo_a
    deployment.assigner._assigned["ent-b"] = combo_b
    deployment.assigner._used.update({combo_a, combo_b})
    set_a = deployment.provision_enterprise(
        "ent-a", "aaa.net", "www IN A 203.0.113.1\n")
    set_b = deployment.provision_enterprise(
        "ent-b", "bbb.net", "www IN A 203.0.113.2\n")
    deployment.settle(30)
    return deployment, set_a, set_b


def _attack_and_resolve(shared_sets: bool) -> tuple[int, bool, RCode]:
    deployment, set_a, set_b = _build(shared_sets)
    # Saturate every PoP advertising one of A's clouds: machines suspend
    # and withdraw, modelling complete loss of those PoPs.
    attacked_prefixes = {c.prefix for c in set_a}
    for dep in deployment.deployments:
        if set(dep.speaker.clouds) & attacked_prefixes:
            dep.agent.stop()
            dep.machine.suspend()
            dep.speaker.withdraw_all()
    deployment.settle(40)

    overlap = len({c.index for c in set_a} & {c.index for c in set_b})
    resolver = deployment.add_resolver("abl-resolver", timeout=1.0)
    outcome: list = []
    resolver.resolve(name("www.bbb.net"), RType.A, outcome.append)
    deployment.settle(30)
    result = outcome[0]
    return overlap, not result.failed, result.rcode


def test_unique_delegation_sets_bound_collateral_damage(benchmark):
    def job():
        result = ExperimentResult(
            "ablation-delegation",
            "Unique delegation sets vs shared set under attack")
        overlap_u, b_alive_u, _ = _attack_and_resolve(shared_sets=False)
        overlap_s, b_alive_s, rcode_s = _attack_and_resolve(
            shared_sets=True)
        result.metrics.update({
            "unique_overlap_clouds": overlap_u,
            "unique_b_resolvable": float(b_alive_u),
            "shared_overlap_clouds": overlap_s,
            "shared_b_resolvable": float(b_alive_s),
        })
        result.compare("unique sets: B differs from A in >= 1 cloud",
                       "< 6 shared", f"{overlap_u}/6 shared",
                       overlap_u < DELEGATION_SET_SIZE)
        result.compare("unique sets: B still resolves under attack on A",
                       "resolvable", str(b_alive_u), b_alive_u)
        result.compare("shared set: B fully collateral-damaged",
                       "unresolvable", f"alive={b_alive_s} ({rcode_s})",
                       not b_alive_s)
        return result

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    report(result)


def test_assignment_uniqueness_at_scale(benchmark):
    def job():
        assigner = DelegationAssigner()
        sets = [tuple(c.index for c in assigner.assign(f"e{i}"))
                for i in range(3_000)]
        return len(set(sets)), max(
            len(set(sets[0]) & set(s)) for s in sets[1:])

    unique_count, worst_overlap = benchmark(job)
    assert unique_count == 3_000
    assert worst_overlap < DELEGATION_SET_SIZE
