"""Benchmark: validate Figure 9 (traffic-engineering decision tree)."""

from conftest import report

from repro.experiments import fig9_decision_tree


def test_fig9_decision_tree(benchmark):
    result = benchmark.pedantic(fig9_decision_tree.run, rounds=1,
                                iterations=1)
    report(result)
