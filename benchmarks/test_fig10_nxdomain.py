"""Benchmark: regenerate Figure 10 (NXDOMAIN filter under attack)."""

from conftest import report

from repro.experiments import fig10_nxdomain


def test_fig10_nxdomain(benchmark):
    params = fig10_nxdomain.Fig10Params(
        attack_rates=(0.0, 300.0, 550.0, 1_200.0, 2_400.0, 3_600.0,
                      5_000.0, 8_000.0),
        measure_seconds=10.0, warmup_seconds=4.0)
    result = benchmark.pedantic(lambda: fig10_nxdomain.run(params),
                                rounds=1, iterations=1)
    report(result)
