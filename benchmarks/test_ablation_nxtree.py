"""Ablation: per-hot-zone NXDOMAIN trees vs one global tree.

Paper section 4.3.4(3): building trees only for zones whose NXDOMAIN
count crosses the threshold keeps the structure small and its update
contention low; a global tree over every hosted zone is much larger for
identical filtering efficacy on the attacked zone.
"""

import random

from conftest import report

from repro.analysis.report import ExperimentResult
from repro.dnscore import RType, make_query, name, parse_zone_text
from repro.filters.nxdomain import NXDomainConfig, NXDomainFilter
from repro.filters.base import QueryContext
from repro.server.engine import AuthoritativeEngine, ZoneStore
from repro.workload.attacks import random_label

N_ZONES = 120
HOSTS_PER_ZONE = 60


def _store() -> ZoneStore:
    store = ZoneStore()
    for z in range(N_ZONES):
        lines = [f"$ORIGIN z{z}.example.", "$TTL 300",
                 f"@ IN SOA ns1.z{z}.example. admin.z{z}.example. "
                 "1 7200 3600 1209600 300",
                 f"@ IN NS ns1.z{z}.example."]
        for i in range(HOSTS_PER_ZONE):
            lines.append(f"h{i} IN A 10.7.{i // 250}.{i % 250 + 1}")
        store.add(parse_zone_text("\n".join(lines) + "\n"))
    return store


def _drive_attack(global_tree: bool) -> tuple[NXDomainFilter, float]:
    rng = random.Random(5)
    store = _store()
    engine = AuthoritativeEngine(store)
    nxd = NXDomainFilter(store, NXDomainConfig(
        trigger_count=50, window_seconds=30.0, global_tree=global_tree))
    victim = name("z0.example")
    # Random-subdomain attack against one zone.
    for i in range(300):
        qname = victim.prepend(random_label(rng))
        query = make_query(i & 0xFFFF, qname, RType.A)
        response = engine.respond(query)
        nxd.observe_response(query, response, now=i * 0.01)
    # Efficacy: attack queries on the victim zone are penalized.
    penalized = 0
    for i in range(200):
        ctx = QueryContext(source="198.18.0.1",
                           qname=victim.prepend(random_label(rng)),
                           qtype=RType.A, now=10.0)
        if nxd.score(ctx) > 0:
            penalized += 1
    return nxd, penalized / 200


def test_per_zone_tree_vs_global_tree(benchmark):
    def job():
        result = ExperimentResult(
            "ablation-nxtree", "Per-hot-zone NXDOMAIN tree vs global tree")
        per_zone, efficacy_pz = _drive_attack(global_tree=False)
        global_, efficacy_gl = _drive_attack(global_tree=True)
        size_pz = sum(t.size for t in per_zone._trees.values())
        size_gl = sum(t.size for t in global_._trees.values())
        result.metrics.update({
            "per_zone_trees": per_zone.trees_built,
            "global_trees": global_.trees_built,
            "per_zone_total_size": size_pz,
            "global_total_size": size_gl,
            "efficacy_per_zone": efficacy_pz,
            "efficacy_global": efficacy_gl,
        })
        result.compare("per-zone builds exactly the attacked zone's tree",
                       "1 tree", f"{per_zone.trees_built}",
                       per_zone.trees_built == 1)
        result.compare("global tree is much larger",
                       "all zones", f"{size_gl} vs {size_pz} names",
                       size_gl >= size_pz * (N_ZONES // 2))
        result.compare("filtering efficacy identical on the victim",
                       "equal", f"{efficacy_pz:.0%} vs {efficacy_gl:.0%}",
                       efficacy_pz == efficacy_gl and efficacy_pz >= 0.95)
        return result

    result = benchmark.pedantic(job, rounds=1, iterations=1)
    report(result)


def test_tree_build_cost(benchmark):
    """Time to build the victim zone's tree (the hot-path cost)."""
    store = _store()
    zone = store.get(name("z0.example"))

    from repro.filters.nxdomain import ZoneNameTree
    tree = benchmark(lambda: ZoneNameTree(zone))
    assert tree.size >= HOSTS_PER_ZONE
