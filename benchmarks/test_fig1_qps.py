"""Benchmark: regenerate Figure 1 (weekly queries-per-second series)."""

from conftest import report

from repro.experiments import fig1_qps


def test_fig1_qps(benchmark):
    result = benchmark(fig1_qps.run)
    report(result)
