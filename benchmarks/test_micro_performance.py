"""Microbenchmarks of the hot paths.

These are honest throughput numbers for the simulator's building blocks
— useful for sizing experiments and for catching performance
regressions, not for comparison with production hardware.
"""

import random

from repro.dnscore import (
    A,
    Message,
    RType,
    make_query,
    make_response,
    name,
    parse_zone_text,
)
from repro.filters import (
    HopCountFilter,
    LoyaltyFilter,
    QueryContext,
    RateLimitFilter,
    ScoringPipeline,
)
from repro.netsim import EventLoop
from repro.server.engine import AuthoritativeEngine, ZoneStore

ZONE = parse_zone_text(
    "$ORIGIN perf.example.\n$TTL 300\n"
    "@ IN SOA ns1.perf.example. admin.perf.example. 1 2 3 4 300\n"
    "@ IN NS ns1.perf.example.\n"
    + "".join(f"h{i} IN A 10.6.{i // 250}.{i % 250 + 1}\n"
              for i in range(500)))


def test_wire_encode_decode(benchmark):
    query = make_query(1, name("h250.perf.example"), RType.A)
    response = make_response(query)
    rrset = ZONE.get_rrset(name("h250.perf.example"), RType.A)
    response.add_rrset("answers", rrset)
    wire = response.to_wire()

    def roundtrip():
        return Message.from_wire(response.to_wire())

    parsed = benchmark(roundtrip)
    assert parsed.answers
    assert len(wire) < 100


def test_zone_lookup_throughput(benchmark):
    qnames = [name(f"h{i}.perf.example") for i in range(500)]
    counter = [0]

    def lookup():
        counter[0] = (counter[0] + 1) % 500
        return ZONE.lookup(qnames[counter[0]], RType.A)

    result = benchmark(lookup)
    assert result.rrset is not None


def test_engine_respond_throughput(benchmark):
    store = ZoneStore()
    store.add(ZONE)
    engine = AuthoritativeEngine(store)
    query = make_query(7, name("h99.perf.example"), RType.A)
    response = benchmark(lambda: engine.respond(query))
    assert response.answers


def test_scoring_pipeline_throughput(benchmark):
    pipeline = ScoringPipeline([RateLimitFilter(), HopCountFilter(),
                                LoyaltyFilter()])
    clock = [0.0]
    ctx_name = name("h1.perf.example")

    def score():
        clock[0] += 0.001
        return pipeline.score(QueryContext("10.9.9.9", ctx_name, RType.A,
                                           clock[0], ip_ttl=58))

    breakdown = benchmark(score)
    assert breakdown.total >= 0.0


def test_event_loop_throughput(benchmark):
    def run_10k():
        loop = EventLoop()
        for i in range(10_000):
            loop.call_at(i * 0.001, lambda: None)
        loop.run()
        return loop.events_processed

    assert benchmark(run_10k) == 10_000


def test_bgp_convergence_cost(benchmark):
    """Full origination + convergence on a mid-size topology."""
    from repro.netsim import Network, build_internet, InternetParams

    def converge():
        rng = random.Random(4)
        internet = build_internet(rng, InternetParams(n_tier1=4,
                                                      n_tier2=16,
                                                      n_stub=60))
        loop = EventLoop()
        network = Network(loop, internet.topology, rng)
        network.build_speakers()
        network.speaker(internet.stubs[0]).originate("bench-prefix")
        loop.run_until(60)
        return sum(1 for node in internet.topology.routers()
                   if network.speaker(node.node_id)
                   .best_route("bench-prefix"))

    reached = benchmark.pedantic(converge, rounds=3, iterations=1)
    assert reached > 50


def test_flow_analysis_walltime():
    """Whole-program lint stays fast enough for every CI run.

    The flow analyses parse and model the entire ``src`` tree; this
    guards against a superlinear regression in the call-graph builder
    or the taint/reachability passes. The budget is deliberately
    generous (the full analysis takes ~1-2 s on a laptop); tripping it
    means something is quadratic, not that CI is slow today.
    """
    import time
    from pathlib import Path

    from repro.lint import lint_paths

    repo_root = Path(__file__).resolve().parents[1]
    start = time.perf_counter()
    result = lint_paths([repo_root / "src"], root=repo_root, flow=True)
    elapsed = time.perf_counter() - start
    assert result.files_checked > 100
    assert elapsed < 30.0, (
        f"flow analysis took {elapsed:.1f}s over "
        f"{result.files_checked} files — investigate a complexity "
        f"regression in repro.lint.flow")
